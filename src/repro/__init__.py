"""repro — reproduction of the SIGMOD 2015 mCK query paper.

Public API highlights:

* :class:`repro.Dataset` — the geo-textual database.
* :class:`repro.MCKEngine` — build once, answer mCK queries with GKG,
  SKEC, SKECa, SKECa+ or EXACT.
* :mod:`repro.baselines` — VirbR, ASGK/ASGKa and brute force comparators.
* :mod:`repro.datasets` — synthetic NY/LA/TW-like generators and the
  paper's query generator.
* :mod:`repro.experiments` — the harness that regenerates every table and
  figure of the paper's evaluation.
"""

from .core import (
    ALGORITHMS,
    DEFAULT_EPSILON,
    SQRT3_FACTOR,
    Dataset,
    Deadline,
    GeoObject,
    Group,
    Instrumentation,
    MCKEngine,
    MCKQuery,
    QueryContext,
    canonical_algorithm,
    compile_query,
    exact,
    gkg,
    skec,
    skeca,
    skeca_plus,
)
from .exceptions import (
    AlgorithmTimeout,
    DatasetError,
    GeometryError,
    InfeasibleQueryError,
    QueryError,
    ReproError,
    WorkerCrashed,
)

__version__ = "1.0.0"

__all__ = [
    "ALGORITHMS",
    "DEFAULT_EPSILON",
    "SQRT3_FACTOR",
    "Dataset",
    "Deadline",
    "GeoObject",
    "Group",
    "Instrumentation",
    "MCKEngine",
    "MCKQuery",
    "QueryContext",
    "canonical_algorithm",
    "compile_query",
    "exact",
    "gkg",
    "skec",
    "skeca",
    "skeca_plus",
    "AlgorithmTimeout",
    "DatasetError",
    "GeometryError",
    "InfeasibleQueryError",
    "QueryError",
    "ReproError",
    "WorkerCrashed",
    "__version__",
]
