"""Extensions beyond the paper's core contribution."""

from .network import NetworkGroup, RoadNetwork, network_exact, network_gkg
from .topk import top_k_mck

__all__ = [
    "NetworkGroup",
    "RoadNetwork",
    "network_exact",
    "network_gkg",
    "top_k_mck",
]
