"""mCK queries under road-network distances.

The paper's related work (§7) points at spatial keyword querying on road
networks; walking distance in a city is network distance, not Euclidean.
This module answers mCK queries where the diameter of a group is the
maximum *shortest-path* distance between its members' network positions.

The circle-based machinery of the SKEC family does not transfer (network
balls are not discs), but the metric-only algorithms do:

* :func:`network_gkg` — the greedy 2-approximation.  Theorem 2's proof
  uses only the triangle inequality and symmetry, both of which hold for
  shortest-path distances, so the factor-2 guarantee carries over.
* :func:`network_exact` — branch and bound over relevant objects with the
  same pruning as the Euclidean EXACT's inner search.

Objects snap to their nearest road vertex; distances are vertex-to-vertex
shortest paths (Dijkstra, cached per query keywords' holders).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import networkx as nx

from ..core.common import Deadline
from ..core.objects import Dataset
from ..exceptions import DatasetError, InfeasibleQueryError, QueryError

__all__ = ["RoadNetwork", "NetworkGroup", "network_gkg", "network_exact"]


@dataclass
class NetworkGroup:
    """An answer under network distances."""

    object_ids: Tuple[int, ...]
    diameter: float
    algorithm: str = ""

    def __len__(self) -> int:
        return len(self.object_ids)


class RoadNetwork:
    """A weighted road graph with a dataset's objects snapped onto it.

    Parameters
    ----------
    graph:
        ``networkx.Graph`` whose nodes carry ``pos=(x, y)`` attributes and
        whose edges carry a ``weight`` (defaults to the Euclidean length
        of the edge when missing).
    dataset:
        Geo-textual objects; each snaps to its nearest graph vertex.
    """

    def __init__(self, graph: nx.Graph, dataset: Dataset):
        if graph.number_of_nodes() == 0:
            raise DatasetError("road network has no vertices")
        for node, data in graph.nodes(data=True):
            if "pos" not in data:
                raise DatasetError(f"vertex {node!r} lacks a 'pos' attribute")
        self.graph = graph
        self.dataset = dataset
        self._ensure_weights()
        self._vertex_of: List = [
            self._nearest_vertex(o.x, o.y) for o in dataset
        ]
        self._sp_cache: Dict[object, Dict[object, float]] = {}

    def _ensure_weights(self) -> None:
        import math

        for u, v, data in self.graph.edges(data=True):
            if "weight" not in data:
                pu = self.graph.nodes[u]["pos"]
                pv = self.graph.nodes[v]["pos"]
                data["weight"] = math.hypot(pu[0] - pv[0], pu[1] - pv[1])

    def _nearest_vertex(self, x: float, y: float):
        import math

        return min(
            self.graph.nodes,
            key=lambda n: math.hypot(
                self.graph.nodes[n]["pos"][0] - x,
                self.graph.nodes[n]["pos"][1] - y,
            ),
        )

    def vertex_of(self, oid: int):
        """The road vertex an object snapped to."""
        return self._vertex_of[oid]

    def distance(self, oid_a: int, oid_b: int) -> float:
        """Network distance between two objects (inf when disconnected)."""
        va, vb = self._vertex_of[oid_a], self._vertex_of[oid_b]
        if va == vb:
            return 0.0
        lengths = self._lengths_from(va)
        return lengths.get(vb, float("inf"))

    def _lengths_from(self, vertex) -> Dict[object, float]:
        cached = self._sp_cache.get(vertex)
        if cached is None:
            cached = nx.single_source_dijkstra_path_length(
                self.graph, vertex, weight="weight"
            )
            self._sp_cache[vertex] = cached
        return cached

    def group_diameter(self, oids: Sequence[int]) -> float:
        """Maximum pairwise network distance within a group."""
        best = 0.0
        for i, a in enumerate(oids):
            for b in oids[i + 1 :]:
                d = self.distance(a, b)
                if d > best:
                    best = d
        return best


def _holders(dataset: Dataset, keywords: Sequence[str]) -> Dict[str, List[int]]:
    holders: Dict[str, List[int]] = {t: [] for t in keywords}
    wanted = set(keywords)
    for obj in dataset:
        for t in obj.keywords & wanted:
            holders[t].append(obj.oid)
    missing = [t for t, lst in holders.items() if not lst]
    if missing:
        raise InfeasibleQueryError(missing)
    return holders


def network_gkg(
    network: RoadNetwork,
    keywords: Sequence[str],
    deadline: Optional[Deadline] = None,
) -> NetworkGroup:
    """Greedy mCK under network distances; ratio 2 (Theorem 2's argument
    needs only the triangle inequality)."""
    deadline = deadline or Deadline.unlimited("netGKG")
    keywords = list(dict.fromkeys(keywords))
    if not keywords:
        raise QueryError("query must contain at least one keyword")
    dataset = network.dataset
    holders = _holders(dataset, keywords)
    t_inf = min(holders, key=lambda t: len(holders[t]))

    best_ids: Optional[List[int]] = None
    best_diameter = float("inf")
    for anchor in holders[t_inf]:
        deadline.check()
        group = [anchor]
        covered = set(dataset[anchor].keywords) & set(keywords)
        feasible = True
        for t in keywords:
            if t in covered:
                continue
            nearest = min(
                holders[t], key=lambda oid: network.distance(anchor, oid)
            )
            if network.distance(anchor, nearest) == float("inf"):
                feasible = False
                break
            group.append(nearest)
            covered |= set(dataset[nearest].keywords) & set(keywords)
        if not feasible:
            continue
        diameter = network.group_diameter(group)
        if diameter < best_diameter:
            best_diameter = diameter
            best_ids = group
    if best_ids is None:
        raise InfeasibleQueryError(keywords)
    return NetworkGroup(tuple(sorted(set(best_ids))), best_diameter, "netGKG")


def network_exact(
    network: RoadNetwork,
    keywords: Sequence[str],
    deadline: Optional[Deadline] = None,
) -> NetworkGroup:
    """Optimal mCK under network distances (branch and bound)."""
    deadline = deadline or Deadline.unlimited("netEXACT")
    keywords = list(dict.fromkeys(keywords))
    if not keywords:
        raise QueryError("query must contain at least one keyword")
    dataset = network.dataset
    holders = _holders(dataset, keywords)

    bit_of = {t: 1 << i for i, t in enumerate(keywords)}
    full = (1 << len(keywords)) - 1
    relevant = sorted({oid for lst in holders.values() for oid in lst})
    masks = {
        oid: sum(bit_of[t] for t in dataset[oid].keywords if t in bit_of)
        for oid in relevant
    }

    # Seed the bound with the greedy answer.
    greedy = network_gkg(network, keywords, deadline)
    best = {"ids": list(greedy.object_ids), "diameter": greedy.diameter}

    n = len(relevant)
    suffix = [0] * (n + 1)
    for i in range(n - 1, -1, -1):
        suffix[i] = suffix[i + 1] | masks[relevant[i]]

    chosen: List[int] = []

    def recurse(covered: int, diameter: float, start: int) -> None:
        deadline.check()
        if covered == full:
            if diameter < best["diameter"]:
                best["diameter"] = diameter
                best["ids"] = [relevant[i] for i in chosen]
            return
        if (covered | suffix[start]) != full:
            return
        for idx in range(start, n):
            oid = relevant[idx]
            mask = masks[oid]
            if mask & ~covered == 0:
                continue
            new_diameter = diameter
            too_far = False
            for c in chosen:
                d = network.distance(relevant[c], oid)
                if d >= best["diameter"]:
                    too_far = True
                    break
                if d > new_diameter:
                    new_diameter = d
            if too_far:
                continue
            chosen.append(idx)
            recurse(covered | mask, new_diameter, idx + 1)
            chosen.pop()

    recurse(0, 0.0, 0)
    return NetworkGroup(tuple(sorted(set(best["ids"]))), best["diameter"], "netEXACT")
