"""Top-k mCK: the k best answers instead of one.

A natural extension of the paper's query (single best group): applications
like photo geolocation and trip planning benefit from *alternative* areas,
not just the winner.  Two disjointness policies are offered:

* ``"disjoint"`` (default) — successive groups share no objects; after
  each answer, its members are excluded from O' and the query re-solved.
  This is the classic diversified top-k and guarantees k genuinely
  different areas.
* ``"distinct"`` — successive groups merely have to differ as sets; only
  the previous *anchor* objects (holders of the least frequent keyword)
  are excluded, which yields overlapping but non-identical groups.

Each answer is optimal for the residual database under the chosen policy
(greedy diversification; globally optimal diversified top-k is NP-hard
already for k = 1 by Theorem 1).
"""

from __future__ import annotations

from typing import List, Optional

from ..core.common import Deadline
from ..core.exact import exact
from ..core.objects import Dataset
from ..core.query import MCKQuery, compile_query
from ..core.result import Group
from ..core.skeca import DEFAULT_EPSILON
from ..core.skecaplus import skeca_plus
from ..exceptions import InfeasibleQueryError, QueryError

__all__ = ["top_k_mck"]


def top_k_mck(
    dataset: Dataset,
    keywords,
    k: int,
    policy: str = "disjoint",
    algorithm: str = "EXACT",
    epsilon: float = DEFAULT_EPSILON,
    deadline: Optional[Deadline] = None,
) -> List[Group]:
    """Return up to ``k`` mCK answers under a disjointness policy.

    Stops early (returning fewer groups) once the residual database can no
    longer cover the query.
    """
    if k < 1:
        raise QueryError("k must be at least 1")
    if policy not in ("disjoint", "distinct"):
        raise QueryError(f"unknown policy {policy!r}; use 'disjoint' or 'distinct'")
    solver = _solver_for(algorithm, epsilon)
    query = keywords if isinstance(keywords, MCKQuery) else MCKQuery(keywords)

    groups: List[Group] = []
    excluded: set = set()
    while len(groups) < k:
        try:
            ctx = compile_query(dataset, query, exclude=frozenset(excluded))
        except InfeasibleQueryError:
            break
        try:
            group = solver(ctx, deadline)
        except InfeasibleQueryError:
            break
        groups.append(group)
        if policy == "disjoint":
            excluded.update(group.object_ids)
        else:
            # Exclude only the group's t_inf anchors so the next answer is
            # forced to differ while still allowed to reuse the area.
            anchors = [
                oid
                for oid in group.object_ids
                if ctx.t_inf in dataset[oid].keywords
            ]
            excluded.update(anchors or group.object_ids[:1])
    return groups


def _solver_for(algorithm: str, epsilon: float):
    key = algorithm.strip().upper().replace("-", "").replace("_", "")
    if key == "EXACT":
        return lambda ctx, dl: exact(ctx, epsilon, dl)
    if key in ("SKECA+", "SKECAPLUS"):
        return lambda ctx, dl: skeca_plus(ctx, epsilon, dl)
    raise QueryError(
        f"top-k supports EXACT and SKECa+ solvers, not {algorithm!r}"
    )
