"""One shard's replication group: a fenced primary plus N read replicas.

Layout of a group directory (everything a follower needs is on disk, so
the protocol works across processes as well as threads)::

    EPOCH               fencing history (see repro.replication.fencing)
    wal-e0001.log       epoch 1's WAL  (the shipped mutation stream)
    wal-e0002.log       epoch 2's WAL  (after the first failover)
    bootstrap/          a PR 9 CheckpointManager dir: MANIFEST +
                        segments/seg-*.seg — cold replicas load the
                        newest verifiable segment instead of replaying
                        the log from seq 1

**Write path**: all mutations go through a :class:`PrimaryHandle` bound
to a fencing epoch.  The group checks the handle's epoch (and,
periodically, the on-disk ``EPOCH`` file, which covers multi-process
deployments), applies on the primary engine, and **flushes the WAL
before acknowledging** — an acked mutation survives any kill.  A handle
from a superseded epoch raises
:class:`~repro.exceptions.FencedWriteError`; records a zombie still
manages to append beyond its epoch's branch point are excluded durably
by every replayer (the fencing file caps each epoch's seq interval).

**Failover**: :meth:`promote` picks the most caught-up replica, drains
the remaining shipped log into it, branches a new fencing epoch at that
watermark, and attaches a fresh epoch WAL to the promoted engine.  A
replacement replica is respawned with the capped exponential backoff the
distributed coordinator uses for crashed workers.  :meth:`apply_batch`
performs this automatically when it finds the primary dead, so a
mid-workload kill costs the writer one retry, not an error.
"""

from __future__ import annotations

import logging
import os
import threading
import time
from typing import Iterable, List, Optional, Sequence, Tuple

from ..core.skeca import DEFAULT_EPSILON
from ..exceptions import (
    DatasetError,
    FencedWriteError,
    ReplicationError,
    ReplicationGap,
    WALError,
)
from ..live.base import SealedBase
from ..live.checkpoint import CheckpointManager
from ..live.engine import LiveMCKEngine, MutationListener
from ..live.wal import WalRecord, read_wal
from .fencing import (
    EpochEntry,
    read_epoch_entries,
    wal_name,
    write_epoch_entries,
)
from .replica import BOOTSTRAP_DIR, ReadReplica

__all__ = ["PrimaryHandle", "ReplicationGroup"]

logger = logging.getLogger("repro.replication.group")


class PrimaryHandle:
    """A write capability bound to one fencing epoch.

    Holding a handle does not make its owner the primary — the *group*
    decides that.  A zombie that kept an old handle across a failover
    gets :class:`~repro.exceptions.FencedWriteError` on every write.
    """

    __slots__ = ("_group", "engine", "epoch")

    def __init__(self, group: "ReplicationGroup", engine: LiveMCKEngine,
                 epoch: int):
        self._group = group
        self.engine = engine
        self.epoch = int(epoch)

    def apply_batch(
        self,
        inserts: Sequence[Tuple[float, float, Iterable[str]]] = (),
        deletes: Sequence[int] = (),
    ) -> List[int]:
        return self._group._apply(self, inserts=inserts, deletes=deletes)

    def insert(self, x: float, y: float, keywords: Iterable[str]) -> int:
        return self.apply_batch(inserts=[(x, y, keywords)])[0]

    def delete(self, oid: int) -> None:
        self.apply_batch(deletes=[oid])


class ReplicationGroup:
    """WAL-shipped primary/replica set for one shard of the store."""

    def __init__(
        self,
        records: Sequence[Tuple[int, float, float, Iterable[str]]],
        dir: str,
        n_replicas: int = 1,
        name: str = "group",
        shard_label: str = "0",
        metrics=None,
        oid_start: int = 0,
        wal_sync_every: int = 1,
        fence_check_every: int = 16,
        respawn_backoff: float = 0.01,
        backoff_cap: float = 0.5,
        max_respawn_retries: int = 3,
        engine_kwargs: Optional[dict] = None,
    ):
        self.dir = os.path.abspath(dir)
        os.makedirs(self.dir, exist_ok=True)
        self.name = name
        self.shard_label = str(shard_label)
        self.metrics = metrics
        self.oid_start = int(oid_start)
        self._wal_sync_every = int(wal_sync_every)
        self._fence_check_every = max(0, int(fence_check_every))
        self._fence_checks = 0
        self._respawn_backoff = float(respawn_backoff)
        self._backoff_cap = float(backoff_cap)
        self._max_respawn_retries = int(max_respawn_retries)
        self._engine_kwargs = dict(engine_kwargs or {})
        self._listeners: List[MutationListener] = []
        self._lock = threading.RLock()
        self._closed = False
        self._bootstrap = CheckpointManager(
            os.path.join(self.dir, BOOTSTRAP_DIR)
        )

        self._entries = read_epoch_entries(self.dir)
        fresh = not self._entries
        if fresh:
            self._entries = [EpochEntry(1, wal_name(1), 0)]
            write_epoch_entries(self.dir, self._entries)
            base = SealedBase.build(list(records), name=f"{name}-p")
            engine = self._make_engine(base, self._bootstrap.recovered_next_oid)
            engine.attach_wal(
                os.path.join(self.dir, self._entries[-1].wal),
                sync_every=self._wal_sync_every,
                start_seq=0,
            )
            if len(base):
                # The seed records never hit the WAL; persist them as the
                # first bootstrap segment (covering seq 0) or replicas
                # could only ever see the post-seed mutation stream.
                self._bootstrap.checkpoint(
                    base, 0, wal=None, next_oid=engine._next_oid
                )
        else:
            # Reopen: newest verifiable bootstrap segment + every epoch
            # file's fenced interval reconstructs the primary exactly.
            loaded, covered, _tail, _report = self._bootstrap.recover()
            base = (
                loaded
                if loaded is not None
                else SealedBase.build((), name=f"{name}-p")
            )
            engine = self._make_engine(
                base if loaded is not None else base,
                self._bootstrap.recovered_next_oid,
            )
            tail = self._records_between(covered, None)
            if tail:
                engine.apply_replicated(tail)
            last_seq = tail[-1].seq if tail else covered
            engine.attach_wal(
                os.path.join(self.dir, self._entries[-1].wal),
                sync_every=self._wal_sync_every,
                start_seq=max(last_seq, self._entries[-1].start_after),
            )
        self._epoch = self._entries[-1].epoch
        self._handle = PrimaryHandle(self, engine, self._epoch)
        self._acked_seq = engine.wal.last_seq if engine.wal else 0
        self.failovers = 0
        self.fenced_writes = 0
        self.replicas: List[ReadReplica] = []
        for i in range(max(0, int(n_replicas))):
            self.replicas.append(self._spawn_replica(i))

    def _make_engine(self, base: SealedBase, floor_oid: int) -> LiveMCKEngine:
        return LiveMCKEngine(
            base,
            metrics=self.metrics,
            shard_label=self.shard_label,
            oid_start=max(self.oid_start, floor_oid),
            **self._engine_kwargs,
        )

    def _spawn_replica(self, replica_id: int) -> ReadReplica:
        last_err: Optional[Exception] = None
        for attempt in range(self._max_respawn_retries + 1):
            if attempt:
                time.sleep(
                    min(
                        self._backoff_cap,
                        self._respawn_backoff * (2 ** (attempt - 1)),
                    )
                )
            try:
                replica = ReadReplica(
                    self.dir,
                    replica_id,
                    name=f"{self.name}-r{replica_id}",
                    shard_label=self.shard_label,
                    engine_kwargs=self._engine_kwargs,
                )
                self._sync_one(replica)
                return replica
            except (OSError, ReplicationError) as err:
                last_err = err
                logger.warning(
                    "shard %s: replica %d spawn attempt %d failed: %s",
                    self.shard_label, replica_id, attempt, err,
                )
        raise ReplicationError(
            f"shard {self.shard_label}: could not spawn replica "
            f"{replica_id}: {last_err}"
        )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def epoch(self) -> int:
        """The current fencing epoch (not the engine's snapshot epoch)."""
        return self._epoch

    @property
    def acked_seq(self) -> int:
        """Highest WAL seq the group has durably acknowledged."""
        return self._acked_seq

    @property
    def primary_engine(self) -> LiveMCKEngine:
        return self._handle.engine

    def primary_handle(self) -> PrimaryHandle:
        """The current epoch's write capability (kept by zombies at their
        peril — see :class:`PrimaryHandle`)."""
        return self._handle

    def primary_dead(self) -> bool:
        return self._handle.engine._closed

    def __len__(self) -> int:
        return len(self._handle.engine)

    # ------------------------------------------------------------------ #
    # Write path (fenced, flush-before-ack, auto-failover)
    # ------------------------------------------------------------------ #

    def apply_batch(
        self,
        inserts: Sequence[Tuple[float, float, Iterable[str]]] = (),
        deletes: Sequence[int] = (),
    ) -> List[int]:
        return self._apply(self._handle, inserts=inserts, deletes=deletes)

    def insert(self, x: float, y: float, keywords: Iterable[str]) -> int:
        return self.apply_batch(inserts=[(x, y, keywords)])[0]

    def delete(self, oid: int) -> None:
        self.apply_batch(deletes=[oid])

    def apply_records(self, records: Sequence[WalRecord]) -> int:
        """Apply shipped records (oids preserved) through the fenced
        primary, re-logged into this group's own stream — the shard-split
        catch-up primitive."""
        return self._apply(self._handle, records=list(records))

    def _apply(
        self,
        handle: PrimaryHandle,
        inserts: Sequence = (),
        deletes: Sequence = (),
        records: Optional[List[WalRecord]] = None,
    ):
        with self._lock:
            for attempt in range(2):
                self._fence(handle)
                engine = handle.engine
                try:
                    if records is not None:
                        result = engine.apply_replicated(records, log=True)
                    else:
                        result = engine.apply_batch(
                            inserts=inserts, deletes=deletes
                        )
                    # Flush-before-ack: a mutation this method returns
                    # for survives any subsequent kill of the primary.
                    engine.flush()
                    if engine.wal is not None:
                        self._acked_seq = engine.wal.last_seq
                    return result
                except (DatasetError, WALError):
                    if (
                        attempt == 0
                        and handle is self._handle
                        and engine._closed
                        and self.replicas
                    ):
                        # Dead primary mid-workload: promote a caught-up
                        # replica and retry once on the new epoch.
                        self.promote()
                        handle = self._handle
                        continue
                    raise
            raise ReplicationError(
                f"shard {self.shard_label}: apply failed after failover"
            )

    def _fence(self, handle: PrimaryHandle) -> None:
        if handle.epoch != self._epoch:
            self._reject_fenced(handle)
        if self._fence_check_every:
            self._fence_checks += 1
            if self._fence_checks % self._fence_check_every == 0:
                entries = read_epoch_entries(self.dir)
                if entries and entries[-1].epoch != handle.epoch:
                    # Someone else (another process) promoted past us.
                    self._reject_fenced(handle)

    def _reject_fenced(self, handle: PrimaryHandle) -> None:
        self.fenced_writes += 1
        if self.metrics is not None:
            self.metrics.fenced_writes_counter.inc(shard=self.shard_label)
        raise FencedWriteError(self.shard_label, handle.epoch, self._epoch)

    # ------------------------------------------------------------------ #
    # Read path
    # ------------------------------------------------------------------ #

    def read_engine(
        self, prefer: str = "auto", lag_bound: int = 64
    ) -> LiveMCKEngine:
        """The engine a read should hit.

        ``primary`` always reads the primary; ``replica`` always reads
        the least-lagged replica; ``auto`` (default) offloads to a
        replica only when its lag is within ``lag_bound`` records of the
        acked watermark, otherwise falls back to the primary.
        """
        if prefer == "primary" or not self.replicas:
            return self._handle.engine
        lagged = sorted(
            (r.lag(self._acked_seq)[0], r.replica_id, r)
            for r in self.replicas
        )
        records, _rid, best = lagged[0]
        if prefer == "replica" or records <= lag_bound:
            return best.engine
        return self._handle.engine

    def query(
        self,
        keywords: Sequence[str],
        algorithm: str = "SKECa+",
        epsilon: float = DEFAULT_EPSILON,
        timeout: Optional[float] = None,
        prefer: str = "auto",
        **kwargs,
    ):
        return self.read_engine(prefer=prefer).query(
            keywords, algorithm, epsilon, timeout, **kwargs
        )

    # ------------------------------------------------------------------ #
    # Shipping
    # ------------------------------------------------------------------ #

    def sync_replicas(self) -> int:
        """Drain the shipped log into every replica; returns records applied.

        A replica that hits a :class:`~repro.exceptions.ReplicationGap`
        (the primary truncated past it) re-bootstraps from the newest
        checkpoint segment and retries — counted, never fatal.
        """
        total = 0
        for replica in self.replicas:
            total += self._sync_one(replica)
        self.publish_lag_metrics()
        return total

    def _sync_one(self, replica: ReadReplica) -> int:
        try:
            return replica.poll()
        except ReplicationGap as err:
            logger.info(
                "shard %s: replica %d re-bootstrapping: %s",
                self.shard_label, replica.replica_id, err,
            )
            if self.metrics is not None:
                self.metrics.replica_rebootstraps_counter.inc(
                    shard=self.shard_label
                )
            replica.rebootstrap()
            return replica.poll()

    def publish_lag_metrics(self) -> None:
        metrics = self.metrics
        if metrics is None:
            return
        for replica in self.replicas:
            records, seconds = replica.lag(self._acked_seq)
            labels = {
                "shard": self.shard_label,
                "replica": str(replica.replica_id),
            }
            metrics.replication_lag_records_gauge.set(float(records), **labels)
            metrics.replication_lag_seconds_gauge.set(seconds, **labels)
        metrics.shard_objects_gauge.set(
            float(len(self)), shard=self.shard_label
        )

    def lag_watermarks(self) -> List[Tuple[int, int, float]]:
        """Per-replica ``(replica_id, lag_records, lag_seconds)``."""
        return [
            (r.replica_id, *r.lag(self._acked_seq)) for r in self.replicas
        ]

    def checkpoint_bootstrap(self, truncate: bool = True) -> int:
        """Persist the primary's state as a fresh bootstrap segment.

        Returns the covered seq.  With ``truncate=True`` the shipped log
        is trimmed through the *older* retained segment's watermark (the
        PR 9 corruption budget), which is exactly what forces a replica
        that lagged past the trim point to re-bootstrap.
        """
        engine = self._handle.engine
        engine.flush()
        with engine.pin() as snap:
            covered = snap.wal_seq
            retained = self._bootstrap._retained()
            if retained and int(retained[-1]["wal_seq"]) >= covered:
                return covered  # newest segment already covers this state
            base = SealedBase.build(
                snap.view().records(), name=f"{self.name}-boot"
            )
        self._bootstrap.checkpoint(
            base, covered, wal=None, next_oid=engine._next_oid
        )
        if truncate:
            retained = self._bootstrap._retained()
            if len(retained) >= 2:
                self._truncate_shipped_log(int(retained[0]["wal_seq"]))
        return covered

    def _truncate_shipped_log(self, safe_seq: int) -> None:
        engine = self._handle.engine
        if engine.wal is not None and safe_seq > self._entries[-1].start_after:
            with engine._write_lock:
                engine.wal.truncate_through(safe_seq)
        # Old-epoch files wholly covered by the checkpoint are dead weight.
        for i, entry in enumerate(self._entries[:-1]):
            cap = self._entries[i + 1].start_after
            if cap <= safe_seq:
                try:
                    os.unlink(os.path.join(self.dir, entry.wal))
                except OSError:
                    pass

    def read_records_since(
        self, seq: int, upto: Optional[int] = None
    ) -> List[WalRecord]:
        """Shipped records with ``seq < record.seq <= upto``, fenced.

        Reads the epoch files directly (used by shard splitting and by
        promotion to drain a dead primary's log); each epoch contributes
        only its fenced interval, so zombie appends never leak out.
        """
        return self._records_between(int(seq), upto)

    def _records_between(
        self, after: int, upto: Optional[int]
    ) -> List[WalRecord]:
        out: List[WalRecord] = []
        for i, entry in enumerate(self._entries):
            cap = (
                self._entries[i + 1].start_after
                if i + 1 < len(self._entries)
                else None
            )
            if cap is not None and cap <= after:
                continue
            records, _bytes, _torn = read_wal(
                os.path.join(self.dir, entry.wal)
            )
            for record in records:
                if record.seq <= after:
                    continue
                if cap is not None and record.seq > cap:
                    break
                if upto is not None and record.seq > upto:
                    return out
                out.append(record)
        return out

    # ------------------------------------------------------------------ #
    # Failure injection / failover
    # ------------------------------------------------------------------ #

    def crash_primary(self) -> None:
        """Kill the primary like a SIGKILL (no final WAL group-commit)."""
        self._handle.engine.abandon()

    def promote(self) -> int:
        """Fail over to the most caught-up replica; returns the new epoch.

        Safe against a *live* old primary too (proactive failover): the
        old engine is crash-stopped first, so its handle is fenced both
        in memory (epoch bump) and durably (the new epoch entry caps the
        old WAL's authoritative interval at the branch point).
        """
        with self._lock:
            if not self.replicas:
                raise ReplicationError(
                    f"shard {self.shard_label}: no replica to promote"
                )
            old = self._handle
            if not old.engine._closed:
                old.engine.abandon()
            # Elect the most advanced replica and drain the remainder of
            # the dead primary's shipped log into it.
            best = max(self.replicas, key=lambda r: r.applied_seq)
            self._sync_one(best)
            branch = best.applied_seq
            new_epoch = self._epoch + 1
            entry = EpochEntry(new_epoch, wal_name(new_epoch), branch)
            self._entries = self._entries + [entry]
            write_epoch_entries(self.dir, self._entries)

            engine = best.engine
            assert engine is not None
            engine.metrics = self.metrics
            engine.shard_label = self.shard_label
            engine.attach_wal(
                os.path.join(self.dir, entry.wal),
                sync_every=self._wal_sync_every,
                start_seq=branch,
            )
            for listener in self._listeners:
                engine.add_mutation_listener(listener)
            self.replicas.remove(best)
            self._epoch = new_epoch
            self._handle = PrimaryHandle(self, engine, new_epoch)
            self._acked_seq = branch
            self.failovers += 1
            if self.metrics is not None:
                self.metrics.failovers_counter.inc(shard=self.shard_label)
                engine._publish_metrics()
            logger.info(
                "shard %s: promoted replica %d at seq %d (epoch %d)",
                self.shard_label, best.replica_id, branch, new_epoch,
            )
            # Backfill the lost redundancy with a fresh follower.
            next_id = (
                max((r.replica_id for r in self.replicas), default=-1) + 1
            )
            try:
                self.replicas.append(self._spawn_replica(next_id))
            except ReplicationError as err:
                # Degraded but serving: the group runs without the spare
                # until the next successful spawn.
                logger.warning(
                    "shard %s: running without replacement replica: %s",
                    self.shard_label, err,
                )
            return new_epoch

    # ------------------------------------------------------------------ #
    # Listeners / lifecycle
    # ------------------------------------------------------------------ #

    def add_mutation_listener(self, listener: MutationListener) -> None:
        self._listeners.append(listener)
        self._handle.engine.add_mutation_listener(listener)

    def remove_mutation_listener(self, listener: MutationListener) -> None:
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass
        self._handle.engine.remove_mutation_listener(listener)

    def flush(self) -> None:
        if not self._handle.engine._closed:
            self._handle.engine.flush()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if not self._handle.engine._closed:
            self._handle.engine.close()
        for replica in self.replicas:
            replica.close()

    def __enter__(self) -> "ReplicationGroup":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
