"""Incremental tailing of a CRC-framed WAL file.

The shipping side of replication is deliberately dumb: the primary just
appends to its WAL (as it always did) and a :class:`WalTailer` reads the
file *incrementally* — it remembers the byte offset of the last complete
record it returned and each :meth:`~WalTailer.poll` parses only what was
appended since.  Three situations need care:

* **torn tail** — the writer may be mid-``write`` when we read; an
  incomplete or CRC-failing last line is *not* an error, the offset
  simply stays put and the next poll retries;
* **rotation** — :meth:`~repro.live.wal.WriteAheadLog.truncate_through`
  atomically replaces the file (new inode, usually smaller).  The tailer
  detects it via inode/size and restarts from offset 0; consumers filter
  already-applied sequence numbers, and a restart that *skips* needed
  sequences is the consumer's cue to re-bootstrap
  (:class:`~repro.exceptions.ReplicationGap`);
* **disappearance** — a garbage-collected old-epoch file reads as empty.

The tailer never interprets sequence numbers; it returns records in file
order and leaves gap/fence semantics to
:class:`~repro.replication.replica.ReadReplica`.
"""

from __future__ import annotations

import json
import os
import zlib
from typing import List, Optional, Tuple

from ..exceptions import WALError
from ..live.wal import WalRecord

__all__ = ["WalTailer"]


class WalTailer:
    """Offset-remembering reader over one append-only WAL file."""

    def __init__(self, path: str):
        self.path = path
        self._offset = 0
        self._sig: Optional[Tuple[int, int]] = None

    @property
    def offset(self) -> int:
        """Byte offset of the first not-yet-returned record."""
        return self._offset

    def poll(self) -> List[WalRecord]:
        """Parse and return records appended since the last poll.

        Returns an empty list when nothing new (or nothing valid yet) is
        readable.  After a rotation the *whole* rewritten file is
        returned again — callers deduplicate by sequence number.
        """
        try:
            st = os.stat(self.path)
        except FileNotFoundError:
            self._offset = 0
            self._sig = None
            return []
        sig = (st.st_ino, st.st_dev)
        if self._sig != sig or st.st_size < self._offset:
            # Replaced (rotation) or shrunk: restart from the top.
            self._offset = 0
        self._sig = sig
        if st.st_size <= self._offset:
            return []
        records: List[WalRecord] = []
        with open(self.path, "rb") as fh:
            fh.seek(self._offset)
            for raw in fh:
                record = _decode(raw)
                if record is None:
                    # Torn or in-flight tail: leave the offset before it
                    # and let a later poll see the completed record.
                    break
                records.append(record)
                self._offset += len(raw)
        return records


def _decode(raw: bytes) -> Optional[WalRecord]:
    """One framed line -> record, or None when incomplete/corrupt."""
    if not raw.endswith(b"\n"):
        return None
    line = raw[:-1]
    if len(line) < 10 or line[8:9] != b" ":
        return None
    try:
        want = int(line[:8], 16)
    except ValueError:
        return None
    body = line[9:]
    if zlib.crc32(body) & 0xFFFFFFFF != want:
        return None
    try:
        return WalRecord.from_payload(json.loads(body))
    except (ValueError, KeyError, WALError):
        return None
