"""A read replica: bootstrap from a checkpoint segment, then tail the log.

:class:`ReadReplica` maintains its own :class:`~repro.live.engine
.LiveMCKEngine` (no WAL — it applies a *shipped* stream) and a cursor
``applied_seq`` into the group's global sequence space:

* :meth:`bootstrap` loads the newest verifiable checkpoint segment from
  the group's ``bootstrap/`` directory (the PR 9
  :class:`~repro.live.checkpoint.CheckpointManager` layout, reused
  verbatim) and adopts its covered seq — a cold replica never replays
  the full history when a segment exists;
* :meth:`poll` walks the fencing history
  (:mod:`repro.replication.fencing`), tails the epoch file owning
  ``applied_seq + 1``, applies fresh records via
  :meth:`~repro.live.engine.LiveMCKEngine.apply_replicated`, and crosses
  epoch boundaries at their branch caps — records a zombie primary
  appended beyond its epoch's cap are never applied;
* a needed sequence number missing from the shipped log (primary
  truncated past us) raises :class:`~repro.exceptions.ReplicationGap`;
  the owner re-bootstraps the replica from the newest segment instead of
  failing the group.

Lag is a two-part watermark: ``lag_records`` against the primary's acked
seq, and ``lag_seconds`` — how long the replica has *continuously* been
behind (0 whenever it draws level).
"""

from __future__ import annotations

import os
import time
from typing import List, Optional

from ..exceptions import ReplicationGap
from ..live.base import SealedBase
from ..live.checkpoint import CheckpointManager
from ..live.engine import LiveMCKEngine
from .fencing import EpochEntry, read_epoch_entries
from .tailer import WalTailer

__all__ = ["ReadReplica"]

BOOTSTRAP_DIR = "bootstrap"


class ReadReplica:
    """One tailing follower of a replication group's shipped WAL."""

    def __init__(
        self,
        group_dir: str,
        replica_id: int,
        name: str = "replica",
        shard_label: str = "0",
        engine_kwargs: Optional[dict] = None,
    ):
        self.group_dir = group_dir
        self.replica_id = int(replica_id)
        self.name = name
        self.shard_label = str(shard_label)
        self._engine_kwargs = dict(engine_kwargs or {})
        self.engine: Optional[LiveMCKEngine] = None
        self.applied_seq = 0
        self.records_applied = 0
        self.rebootstraps = 0
        self._tailer: Optional[WalTailer] = None
        self._behind_since: Optional[float] = None
        self._closed = False
        self.bootstrap()

    # ------------------------------------------------------------------ #
    # Bootstrap / re-bootstrap
    # ------------------------------------------------------------------ #

    def bootstrap(self) -> None:
        """(Re)build the local engine from the newest bootstrap segment.

        Falls back to an empty base when no segment is loadable (a fresh
        group, or every retained segment corrupt) — the subsequent tail
        then replays the whole shipped log, which is slower but correct.
        """
        manager = CheckpointManager(os.path.join(self.group_dir, BOOTSTRAP_DIR))
        base, covered_seq, _tail, _report = manager.recover()
        if base is None:
            base = SealedBase.build((), name=f"{self.name}-empty")
            covered_seq = 0
        old = self.engine
        self.engine = LiveMCKEngine(
            base,
            oid_start=manager.recovered_next_oid,
            shard_label=self.shard_label,
            **self._engine_kwargs,
        )
        self.applied_seq = covered_seq
        self._tailer = None
        self._behind_since = None
        if old is not None:
            old.close()

    def rebootstrap(self) -> None:
        """Gap recovery: count it and rebuild from the newest segment."""
        self.rebootstraps += 1
        self.bootstrap()

    # ------------------------------------------------------------------ #
    # Tailing
    # ------------------------------------------------------------------ #

    def poll(self) -> int:
        """Apply every currently shipped record past ``applied_seq``.

        Returns the number of records applied.  Raises
        :class:`~repro.exceptions.ReplicationGap` when the shipped log no
        longer contains ``applied_seq + 1`` — the caller decides whether
        to :meth:`rebootstrap`.
        """
        if self._closed or self.engine is None:
            return 0
        applied_total = 0
        while True:
            entries = read_epoch_entries(self.group_dir)
            if not entries:
                return applied_total
            entry, cap = self._locate(entries)
            path = os.path.join(self.group_dir, entry.wal)
            if self._tailer is None or self._tailer.path != path:
                self._tailer = WalTailer(path)
            progressed = False
            while True:
                records = self._tailer.poll()
                if not records:
                    break
                fresh = [
                    r
                    for r in records
                    if r.seq > self.applied_seq
                    and (cap is None or r.seq <= cap)
                ]
                if not fresh:
                    continue
                if fresh[0].seq != self.applied_seq + 1:
                    raise ReplicationGap(
                        self.applied_seq + 1,
                        detail=f"{entry.wal} resumes at seq {fresh[0].seq}",
                    )
                self.engine.apply_replicated(fresh)
                self.applied_seq = fresh[-1].seq
                self.records_applied += len(fresh)
                applied_total += len(fresh)
                progressed = True
            if cap is not None and self.applied_seq >= cap:
                # This epoch is exhausted; continue into the next file.
                self._tailer = None
                continue
            if not progressed or cap is None:
                return applied_total

    def _locate(self, entries: List[EpochEntry]):
        """The epoch entry owning ``applied_seq + 1`` and its seq cap."""
        need = self.applied_seq + 1
        for i, entry in enumerate(entries):
            cap = (
                entries[i + 1].start_after if i + 1 < len(entries) else None
            )
            if entry.start_after < need and (cap is None or need <= cap):
                return entry, cap
        # ``need`` predates the oldest retained epoch: the prefix we
        # would have to replay no longer exists as a shipped log.
        raise ReplicationGap(
            need,
            detail=f"oldest retained epoch starts after "
            f"{entries[0].start_after}",
        )

    # ------------------------------------------------------------------ #
    # Lag watermark
    # ------------------------------------------------------------------ #

    def lag(self, primary_seq: int) -> "tuple[int, float]":
        """``(records, seconds)`` behind the primary's acked watermark."""
        records = max(0, int(primary_seq) - self.applied_seq)
        now = time.monotonic()
        if records == 0:
            self._behind_since = None
            return 0, 0.0
        if self._behind_since is None:
            self._behind_since = now
        return records, now - self._behind_since

    # ------------------------------------------------------------------ #

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self.engine is not None:
            self.engine.close()
