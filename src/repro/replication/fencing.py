"""Fencing epochs: the durable promotion history of one shard group.

Every :class:`~repro.replication.group.ReplicationGroup` directory holds
an ``EPOCH`` file — a single CRC-framed JSON line listing one entry per
fencing epoch::

    {"version": 1, "epochs": [
        {"epoch": 1, "wal": "wal-e0001.log", "start_after": 0},
        {"epoch": 2, "wal": "wal-e0002.log", "start_after": 731},
        ...
    ]}

Each epoch owns its own WAL file; entry ``i`` is authoritative exactly
for sequence numbers in ``(start_after_i, start_after_{i+1}]`` (the last
entry is unbounded).  That interval *is* the fence: when epoch ``N+1``
branches at seq ``B``, any record a zombie epoch-``N`` primary manages
to append beyond ``B`` to its old file falls outside every interval and
is ignored by every replayer — late writes are rejected durably, not
just at the API layer.

The file is written atomically (tmp + fsync + rename + fsync dir), same
protocol as the checkpoint manifest, and corruption raises
:class:`~repro.exceptions.ReplicationError` rather than silently
electing a wrong primary.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass
from typing import Dict, List

from ..exceptions import ReplicationError
from ..index.segments import fsync_dir

__all__ = [
    "EpochEntry",
    "EPOCH_NAME",
    "wal_name",
    "read_epoch_entries",
    "write_epoch_entries",
]

EPOCH_NAME = "EPOCH"


def wal_name(epoch: int) -> str:
    """Canonical WAL filename for a fencing epoch."""
    return f"wal-e{int(epoch):04d}.log"


@dataclass(frozen=True)
class EpochEntry:
    """One fencing epoch: its WAL file and the seq it branched after."""

    epoch: int
    wal: str
    #: Highest sequence number belonging to the *previous* epoch; this
    #: epoch's records are exactly those with ``seq > start_after`` (and
    #: ``<=`` the next entry's ``start_after``, when one exists).
    start_after: int

    def payload(self) -> Dict:
        return {
            "epoch": self.epoch,
            "wal": self.wal,
            "start_after": self.start_after,
        }

    @classmethod
    def from_payload(cls, doc: Dict) -> "EpochEntry":
        return cls(
            epoch=int(doc["epoch"]),
            wal=str(doc["wal"]),
            start_after=int(doc["start_after"]),
        )


def _frame(body: bytes) -> bytes:
    return b"%08x %s\n" % (zlib.crc32(body) & 0xFFFFFFFF, body)


def read_epoch_entries(group_dir: str) -> List[EpochEntry]:
    """Read the group's fencing history (missing file = empty history).

    Raises :class:`~repro.exceptions.ReplicationError` on corruption or
    a non-monotonic history: a group that cannot tell which epoch is
    current must not guess.
    """
    path = os.path.join(group_dir, EPOCH_NAME)
    try:
        with open(path, "rb") as fh:
            line = fh.read()
    except FileNotFoundError:
        return []
    if not line.endswith(b"\n"):
        raise ReplicationError(f"{path}: torn epoch file (no newline)")
    line = line[:-1]
    if len(line) < 10 or line[8:9] != b" ":
        raise ReplicationError(f"{path}: malformed epoch file framing")
    try:
        want = int(line[:8], 16)
    except ValueError:
        raise ReplicationError(f"{path}: malformed epoch CRC field") from None
    body = line[9:]
    if zlib.crc32(body) & 0xFFFFFFFF != want:
        raise ReplicationError(f"{path}: epoch file CRC mismatch")
    try:
        doc = json.loads(body)
    except ValueError as err:
        raise ReplicationError(f"{path}: undecodable epoch file: {err}") from None
    if doc.get("version") != 1:
        raise ReplicationError(
            f"{path}: unsupported epoch file version {doc.get('version')!r}"
        )
    entries = [EpochEntry.from_payload(e) for e in doc.get("epochs", ())]
    for prev, cur in zip(entries, entries[1:]):
        if cur.epoch <= prev.epoch or cur.start_after < prev.start_after:
            raise ReplicationError(
                f"{path}: non-monotonic epoch history "
                f"({prev.epoch}@{prev.start_after} -> "
                f"{cur.epoch}@{cur.start_after})"
            )
    return entries


def write_epoch_entries(group_dir: str, entries: List[EpochEntry]) -> None:
    """Atomically replace the group's fencing history."""
    path = os.path.join(group_dir, EPOCH_NAME)
    body = json.dumps(
        {"version": 1, "epochs": [e.payload() for e in entries]},
        sort_keys=True,
    ).encode("utf-8")
    tmp = path + ".tmp"
    with open(tmp, "wb") as fh:
        fh.write(_frame(body))
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    fsync_dir(os.path.abspath(group_dir))
