"""Scatter-gather fan-out and live rebalancing over replication groups.

:class:`ReplicatedShardRouter` is the scale-out face of the live stack:
it tiles the bootstrap extent into a grid (the same ``floor(sqrt(n))``
tiling the distributed layer uses), runs one
:class:`~repro.replication.group.ReplicationGroup` per region, and
duck-types a :class:`~repro.live.engine.LiveMCKEngine` closely enough
that :class:`~repro.serving.service.QueryService` and the HTTP tier
serve it unchanged.

**Queries** fan out to every shard concurrently (each shard picks its
read engine by replica lag) and merge under the caller's deadline with a
deterministic total order — ``(diameter, sorted oids)``.  A shard that
misses the budget does not fail the query: the merged answer is tagged
``partial`` (the weakest rung of the PR 3 quality ladder) with
``stats["shards_missed"]`` saying what was left out.  Cross-shard
answers were already a lower bound for the plain sharded store; the
``partial`` tag makes the straggler case honest too.

**Rebalancing**: :meth:`split_shard` migrates half of a hot region into
a brand-new group without blocking readers — bootstrap the new group
from a pinned snapshot of the moving half, catch up via fenced WAL tail
reads, then take the (writer-only) routing lock for the final tail and
the routing swap.  Readers racing the cutover may briefly see a moved
object in both groups; the deterministic merge makes that harmless.

Mutation routing after splits: an oid's birth group is ``oid //
oid_stride``; migrated oids carry an explicit override entry.  Regions
are half-open rectangles sharing exact float boundaries, so routing
stays total and disjoint through any number of splits.
"""

from __future__ import annotations

import math
import os
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor, wait
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.common import (
    Instrumentation,
    QUALITY_PARTIAL,
    QUALITY_RANK,
)
from ..core.engine import canonical_algorithm
from ..core.result import Group
from ..core.skeca import DEFAULT_EPSILON
from ..exceptions import (
    AlgorithmTimeout,
    DatasetError,
    InfeasibleQueryError,
)
from ..live.engine import MutationListener
from ..live.sharded import DEFAULT_OID_STRIDE
from ..observability.explain import build_explain
from .group import ReplicationGroup

__all__ = ["ReplicatedShardRouter", "RouterView", "SplitReport"]


def _merge_key(group: Group) -> Tuple[float, Tuple[int, ...]]:
    """Deterministic cross-shard total order: diameter, then oids."""
    return (group.diameter, tuple(sorted(group.object_ids)))


@dataclass(frozen=True)
class _Region:
    """Half-open ownership rectangle ``[x1, x2) x [y1, y2)``.

    Points on the global east/north extent edge belong to the region
    whose rectangle ends there (the grid's outermost cells), mirroring
    the clamping the grid partitioner applies.
    """

    x1: float
    y1: float
    x2: float
    y2: float

    def contains(self, x: float, y: float, gx2: float, gy2: float) -> bool:
        in_x = self.x1 <= x < self.x2 or (x == gx2 and self.x2 == gx2)
        in_y = self.y1 <= y < self.y2 or (y == gy2 and self.y2 == gy2)
        return in_x and in_y

    @property
    def width(self) -> float:
        return self.x2 - self.x1

    @property
    def height(self) -> float:
        return self.y2 - self.y1


@dataclass
class SplitReport:
    """What one live shard split did."""

    source: int
    new_shard: int
    moved_objects: int
    catch_up_records: int
    cutover_records: int
    seconds: float
    keep_region: _Region
    move_region: _Region

    def as_dict(self) -> Dict:
        return {
            "source": self.source,
            "new_shard": self.new_shard,
            "moved_objects": self.moved_objects,
            "catch_up_records": self.catch_up_records,
            "cutover_records": self.cutover_records,
            "seconds": self.seconds,
        }


class _RouterVocabulary:
    """Aggregated vocabulary surface for admission cost estimation."""

    def __init__(self, views):
        self._views = views

    def __contains__(self, term: str) -> bool:
        return any(term in view.vocabulary for view in self._views)

    def frequency(self, term: str) -> int:
        total = 0
        for view in self._views:
            if term in view.vocabulary:
                total += int(view.vocabulary.frequency(term))
        return total


class RouterView:
    """Dataset-shaped read surface spanning every shard's current view.

    Enough for the serving layer's feasibility probes, cost estimation
    and object-detail lookups; it deliberately does *not* offer the
    columnar compile surface (a cross-shard query context would defeat
    the point of sharding — fan out instead).
    """

    def __init__(self, router: "ReplicatedShardRouter"):
        self.name = router.name
        self._views = [
            group.primary_engine.dataset for group in router.live_groups()
        ]

    def __len__(self) -> int:
        return sum(len(view) for view in self._views)

    def get(self, oid: int):
        for view in self._views:
            obj = view.get(oid)
            if obj is not None:
                return obj
        return None

    def __getitem__(self, oid: int):
        obj = self.get(oid)
        if obj is None:
            raise KeyError(oid)
        return obj

    def __contains__(self, oid: int) -> bool:
        return self.get(oid) is not None

    def __iter__(self):
        for view in self._views:
            yield from view

    def live_oids(self) -> List[int]:
        out: List[int] = []
        for view in self._views:
            out.extend(view.live_oids())
        return out

    @property
    def vocabulary(self) -> _RouterVocabulary:
        return _RouterVocabulary(self._views)


class ReplicatedShardRouter:
    """Fan queries across replicated shards; split the ones that run hot."""

    def __init__(
        self,
        records: Sequence[Tuple[float, float, Iterable[str]]],
        n_shards: int = 4,
        replicas_per_shard: int = 1,
        dir: Optional[str] = None,
        name: str = "router",
        metrics=None,
        oid_stride: int = DEFAULT_OID_STRIDE,
        read_preference: str = "auto",
        replica_lag_bound: int = 64,
        split_threshold: Optional[int] = None,
        replication_interval: Optional[float] = None,
        wal_sync_every: int = 1,
        fanout_workers: Optional[int] = None,
        engine_kwargs: Optional[dict] = None,
    ):
        records = list(records)
        if not records:
            raise DatasetError(
                "the shard router needs bootstrap records to fix the "
                "partitioning extent"
            )
        self.name = name
        self.oid_stride = int(oid_stride)
        self.replicas_per_shard = max(0, int(replicas_per_shard))
        self.read_preference = read_preference
        self.replica_lag_bound = int(replica_lag_bound)
        self.split_threshold = split_threshold
        self._wal_sync_every = int(wal_sync_every)
        self._engine_kwargs = dict(engine_kwargs or {})
        self._metrics = metrics
        self._listeners: List[MutationListener] = []
        self._mutate_lock = threading.RLock()
        self._closed = False

        self._tmpdir: Optional[tempfile.TemporaryDirectory] = None
        if dir is None:
            self._tmpdir = tempfile.TemporaryDirectory(prefix="mck-router-")
            dir = self._tmpdir.name
        self.dir = os.path.abspath(dir)

        # Grid geometry: the same floor(sqrt(n)) tiling GridPartitioner
        # applies, derived straight from the bootstrap extent.
        xs = [float(x) for x, _y, _kw in records]
        ys = [float(y) for _x, y, _kw in records]
        self._gx1, self._gx2 = min(xs), max(xs)
        self._gy1, self._gy2 = min(ys), max(ys)
        cells = max(1, int(math.floor(math.sqrt(int(n_shards)))))
        span_x = max(self._gx2 - self._gx1, 1e-9)
        span_y = max(self._gy2 - self._gy1, 1e-9)
        cell_w = span_x / cells
        cell_h = span_y / cells
        self._regions: List[Optional[_Region]] = []
        for cy in range(cells):
            for cx in range(cells):
                self._regions.append(
                    _Region(
                        self._gx1 + cx * cell_w,
                        self._gy1 + cy * cell_h,
                        self._gx1 + (cx + 1) * cell_w,
                        self._gy1 + (cy + 1) * cell_h,
                    )
                )
        n_groups = len(self._regions)

        grouped: Dict[int, List[Tuple[int, float, float, Iterable[str]]]] = {
            gid: [] for gid in range(n_groups)
        }
        for x, y, kw in records:
            gid = self.route(x, y)
            oid = gid * self.oid_stride + len(grouped[gid])
            grouped[gid].append((oid, float(x), float(y), kw))

        self.groups: List[Optional[ReplicationGroup]] = []
        for gid in range(n_groups):
            self.groups.append(self._make_group(gid, grouped[gid]))
        #: Migrated oids (split survivors) -> owning group id; everything
        #: else is owned by its birth group ``oid // oid_stride``.
        self._moved_owner: Dict[int, int] = {}

        width = fanout_workers or min(32, 4 + 4 * n_groups)
        self._executor = ThreadPoolExecutor(
            max_workers=width, thread_name_prefix="mck-scatter"
        )
        self._sync_stop = threading.Event()
        self._sync_thread: Optional[threading.Thread] = None
        if replication_interval is not None:
            self.start_replication(replication_interval)

    def _make_group(
        self, gid: int, records: Sequence[Tuple[int, float, float, Iterable[str]]]
    ) -> ReplicationGroup:
        return ReplicationGroup(
            records,
            dir=os.path.join(self.dir, f"shard-{gid:03d}"),
            n_replicas=self.replicas_per_shard,
            name=f"{self.name}-s{gid}",
            shard_label=str(gid),
            metrics=self._metrics,
            oid_start=gid * self.oid_stride,
            wal_sync_every=self._wal_sync_every,
            engine_kwargs=self._engine_kwargs,
        )

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #

    def live_groups(self) -> List[ReplicationGroup]:
        return [g for g in self.groups if g is not None]

    def live_shard_ids(self) -> List[int]:
        return [gid for gid, g in enumerate(self.groups) if g is not None]

    def route(self, x: float, y: float) -> int:
        """The shard id owning a point (clamped into the extent)."""
        x = min(max(float(x), self._gx1), self._gx2)
        y = min(max(float(y), self._gy1), self._gy2)
        for gid, region in enumerate(self._regions):
            if region is not None and region.contains(
                x, y, self._gx2, self._gy2
            ):
                return gid
        raise DatasetError(  # pragma: no cover - regions tile the extent
            f"no region owns point ({x}, {y})"
        )

    def shard_of(self, oid: int) -> int:
        """The shard owning a live oid (birth stride or split override)."""
        gid = self._moved_owner.get(oid)
        if gid is None:
            gid = int(oid) // self.oid_stride
        if (
            gid < len(self.groups)
            and self.groups[gid] is not None
            and oid in self.groups[gid].primary_engine.dataset
        ):
            return gid
        raise DatasetError(f"oid {oid} is not live in any shard")

    # ------------------------------------------------------------------ #
    # Mutations
    # ------------------------------------------------------------------ #

    def insert(self, x: float, y: float, keywords: Iterable[str]) -> int:
        return self.apply_batch(inserts=[(x, y, keywords)])[0]

    def delete(self, oid: int) -> None:
        self.apply_batch(deletes=[oid])

    def apply_batch(
        self,
        inserts: Sequence[Tuple[float, float, Iterable[str]]] = (),
        deletes: Sequence[int] = (),
    ) -> List[int]:
        """Route a mixed batch; per-shard atomic, like the sharded store."""
        with self._mutate_lock:
            by_shard_ins: Dict[int, List] = {}
            order: List[int] = []
            for x, y, kw in inserts:
                gid = self.route(x, y)
                by_shard_ins.setdefault(gid, []).append((x, y, kw))
                order.append(gid)
            by_shard_del: Dict[int, List[int]] = {}
            for oid in deletes:
                by_shard_del.setdefault(self.shard_of(oid), []).append(oid)

            produced: Dict[int, List[int]] = {}
            for gid in sorted(set(by_shard_ins) | set(by_shard_del)):
                group = self.groups[gid]
                assert group is not None
                produced[gid] = group.apply_batch(
                    inserts=by_shard_ins.get(gid, ()),
                    deletes=by_shard_del.get(gid, ()),
                )
                for oid in by_shard_del.get(gid, ()):
                    self._moved_owner.pop(oid, None)
            cursors = {gid: 0 for gid in produced}
            out: List[int] = []
            for gid in order:
                out.append(produced[gid][cursors[gid]])
                cursors[gid] += 1
            return out

    # ------------------------------------------------------------------ #
    # Scatter-gather query
    # ------------------------------------------------------------------ #

    def query(
        self,
        keywords: Sequence[str],
        algorithm: str = "SKECa+",
        epsilon: float = DEFAULT_EPSILON,
        timeout: Optional[float] = None,
        instrumentation: Optional[Instrumentation] = None,
        degrade_on_timeout: bool = False,
        explain: bool = False,
    ) -> Group:
        """Fan out, merge deterministically, degrade to ``partial``.

        Same signature as the live engine's ``query`` so the serving
        layer cannot tell the difference.  A shard that cannot answer
        within the budget is *left out* of the merge and the answer is
        tagged ``partial`` instead of erroring — as long as at least one
        shard answered.
        """
        canonical = canonical_algorithm(algorithm)
        started = time.perf_counter()
        groups = [
            (gid, g)
            for gid, g in enumerate(self.groups)
            if g is not None
        ]
        futures = {
            self._executor.submit(
                self._query_shard,
                group,
                keywords,
                canonical,
                epsilon,
                timeout,
                degrade_on_timeout,
            ): gid
            for gid, group in groups
        }
        done, not_done = wait(futures, timeout=timeout)

        answered: List[Group] = []
        infeasible: List[InfeasibleQueryError] = []
        timed_out = 0
        failed: List[Exception] = []
        for future in done:
            kind, payload = future.result()
            if kind == "ok":
                answered.append(payload)
            elif kind == "infeasible":
                infeasible.append(payload)
            elif kind == "timeout":
                timed_out += 1
            else:
                failed.append(payload)
        missed = len(not_done)
        for future in not_done:
            future.cancel()

        metrics = self._metrics
        if metrics is not None:
            for outcome, n in (
                ("answered", len(answered)),
                ("missed", missed + timed_out),
                ("infeasible", len(infeasible)),
                ("failed", len(failed)),
            ):
                if n:
                    metrics.fanout_counter.inc(float(n), outcome=outcome)
        if instrumentation is not None:
            instrumentation.count("fanout_shards", len(groups))
            instrumentation.count("fanout_answered", len(answered))
            if missed + timed_out:
                instrumentation.count("fanout_missed", missed + timed_out)

        left_out = missed + timed_out + len(failed)
        if not answered:
            if infeasible and not left_out:
                missing: List[str] = []
                for err in infeasible:
                    for kw in err.missing_keywords:
                        if kw not in missing:
                            missing.append(kw)
                raise InfeasibleQueryError(missing_keywords=missing)
            if failed and not (missed + timed_out):
                raise failed[0]
            raise AlgorithmTimeout(canonical, timeout or 0.0)

        best = min(answered, key=_merge_key)
        weakest = min(
            answered,
            key=lambda g: QUALITY_RANK.get(g.quality or "", 0),
        )
        # The merged certificate can only be as strong as the weakest
        # shard that contributed: a greedy shard might be hiding the
        # true optimum even when the winner's own run was exact.
        best.quality = weakest.quality
        best.algorithm = canonical
        best.stats["fanout_shards"] = float(len(groups))
        best.stats["shards_answered"] = float(len(answered))
        best.stats["shards_infeasible"] = float(len(infeasible))
        best.stats["shards_missed"] = float(left_out)
        if left_out:
            best.quality = QUALITY_PARTIAL
            best.stats["degraded"] = 1.0
            if metrics is not None:
                metrics.partial_merge_counter.inc()
            if instrumentation is not None:
                instrumentation.count("degraded")
        elapsed = time.perf_counter() - started
        best.elapsed_seconds = elapsed
        if instrumentation is not None:
            instrumentation.merge_group_stats(best.stats)
        if explain:
            counters = dict(
                instrumentation.counters if instrumentation else {}
            )
            timings = dict(
                instrumentation.timings if instrumentation else {}
            )
            timings.setdefault("total_seconds", elapsed)
            best.explain_report = build_explain(
                keywords=[str(k) for k in keywords],
                algorithm=canonical,
                epsilon=epsilon,
                timeout=timeout,
                counters=counters,
                timings=timings,
                engine_kind="scatter",
                status="degraded" if best.stats.get("degraded") else "ok",
                quality=best.quality or "",
                diameter=best.diameter,
                group_size=len(best.object_ids),
                object_ids=best.object_ids,
            )
        return best

    def _query_shard(
        self, group, keywords, algorithm, epsilon, timeout, degrade
    ):
        try:
            result = group.query(
                keywords,
                algorithm=algorithm,
                epsilon=epsilon,
                timeout=timeout,
                prefer=self.read_preference,
                degrade_on_timeout=degrade,
            )
            return ("ok", result)
        except InfeasibleQueryError as err:
            return ("infeasible", err)
        except AlgorithmTimeout as err:
            return ("timeout", err)
        except Exception as err:  # noqa: BLE001 - isolate shard failures
            return ("failed", err)

    # ------------------------------------------------------------------ #
    # Replication pump
    # ------------------------------------------------------------------ #

    def sync_replicas(self) -> int:
        """One shipping round across every group; returns records applied."""
        total = 0
        for group in self.live_groups():
            total += group.sync_replicas()
        return total

    def start_replication(self, interval: float = 0.05) -> None:
        """Tail all replicas on a background thread every ``interval`` s."""
        if self._sync_thread is not None:
            return
        self._sync_stop.clear()

        def _pump() -> None:
            while not self._sync_stop.wait(interval):
                try:
                    self.sync_replicas()
                except Exception:  # noqa: BLE001 - pump must survive
                    pass

        self._sync_thread = threading.Thread(
            target=_pump, name="mck-replication", daemon=True
        )
        self._sync_thread.start()

    def stop_replication(self) -> None:
        thread = self._sync_thread
        if thread is None:
            return
        self._sync_stop.set()
        thread.join(5.0)
        self._sync_thread = None

    # ------------------------------------------------------------------ #
    # Rebalancing
    # ------------------------------------------------------------------ #

    def shard_sizes(self) -> Dict[int, int]:
        return {
            gid: len(group)
            for gid, group in enumerate(self.groups)
            if group is not None
        }

    def hot_shard(self) -> Optional[int]:
        """The largest shard past ``split_threshold``, or None."""
        if self.split_threshold is None:
            return None
        sizes = self.shard_sizes()
        gid = max(sizes, key=lambda g: (sizes[g], -g))
        return gid if sizes[gid] > self.split_threshold else None

    def maybe_split(self) -> Optional[SplitReport]:
        """Split the hot shard when the per-shard gauges say there is one."""
        gid = self.hot_shard()
        if gid is None:
            return None
        return self.split_shard(gid)

    def split_shard(
        self, gid: int, catch_up_batch: int = 64
    ) -> SplitReport:
        """Migrate half of shard ``gid`` into a new group, live.

        Phases (readers are never blocked; writers only for phase 4):

        1. *pin* — snapshot the source primary at WAL watermark W; the
           moving half is every snapshot object in the half-region.
        2. *bootstrap* — build the new group from the moving records
           (oids preserved via
           :meth:`~repro.live.engine.LiveMCKEngine.apply_replicated`).
        3. *catch up* — repeatedly drain source WAL records past W that
           concern the moving half into the new group until the tail is
           short.
        4. *cutover* — under the router's mutation lock: final tail,
           routing swap (shrink source region, add the new one), owner
           overrides for migrated oids, and deletion of the moved
           objects from the source (a logged mutation its replicas
           follow like any other).
        """
        started = time.perf_counter()
        source = self.groups[gid]
        region = self._regions[gid]
        if source is None or region is None:
            raise DatasetError(f"shard {gid} is not live")
        if region.width >= region.height:
            mid = region.x1 + region.width / 2.0
            keep = _Region(region.x1, region.y1, mid, region.y2)
            move = _Region(mid, region.y1, region.x2, region.y2)

            def moving(x: float, y: float) -> bool:
                return x >= mid
        else:
            mid = region.y1 + region.height / 2.0
            keep = _Region(region.x1, region.y1, region.x2, mid)
            move = _Region(region.x1, mid, region.x2, region.y2)

            def moving(x: float, y: float) -> bool:
                return y >= mid

        metrics = self._metrics
        try:
            engine = source.primary_engine
            engine.flush()
            with engine.pin() as snap:
                watermark = snap.wal_seq
                seed = [
                    (oid, x, y, kw)
                    for oid, x, y, kw in snap.view().records()
                    if moving(x, y)
                ]
            new_gid = len(self.groups)
            new_group = self._make_group(new_gid, seed)
            for listener in self._listeners:
                new_group.add_mutation_listener(listener)
            moved = {oid for oid, _x, _y, _kw in seed}

            def relevant(records):
                picked = []
                for record in records:
                    if record.op == "insert" and moving(record.x, record.y):
                        picked.append(record)
                        moved.add(record.oid)
                    elif record.op == "delete" and record.oid in moved:
                        picked.append(record)
                        moved.discard(record.oid)
                return picked

            caught_up = 0
            seq = watermark
            while True:
                tail = source.read_records_since(seq)
                if tail:
                    picked = relevant(tail)
                    if picked:
                        new_group.apply_records(picked)
                        caught_up += len(picked)
                    seq = tail[-1].seq
                if len(tail) < catch_up_batch:
                    break

            with self._mutate_lock:
                source.flush()
                tail = source.read_records_since(seq)
                picked = relevant(tail)
                if picked:
                    new_group.apply_records(picked)
                cutover = len(picked)
                # Routing swap first: new mutations for the moving half
                # go to the new group from this point on.
                self._regions[gid] = keep
                self._regions.append(move)
                self.groups.append(new_group)
                for oid in moved:
                    self._moved_owner[oid] = new_gid
                # Finally evict the migrated objects from the source —
                # an ordinary logged mutation its replicas replay.
                source_view = source.primary_engine.dataset
                evict = [oid for oid in sorted(moved) if oid in source_view]
                if evict:
                    source.apply_batch(deletes=evict)
        except Exception:
            if metrics is not None:
                metrics.shard_splits_counter.inc(outcome="failed")
            raise
        seconds = time.perf_counter() - started
        if metrics is not None:
            metrics.shard_splits_counter.inc(outcome="ok")
            new_group.publish_lag_metrics()
            source.publish_lag_metrics()
        return SplitReport(
            source=gid,
            new_shard=new_gid,
            moved_objects=len(moved),
            catch_up_records=caught_up,
            cutover_records=cutover,
            seconds=seconds,
            keep_region=keep,
            move_region=move,
        )

    # ------------------------------------------------------------------ #
    # Live-engine duck-typing for the serving layer
    # ------------------------------------------------------------------ #

    @property
    def metrics(self):
        return self._metrics

    @metrics.setter
    def metrics(self, registry) -> None:
        self._metrics = registry
        for group in self.live_groups():
            group.metrics = registry
            group.primary_engine.metrics = registry

    def _publish_metrics(self) -> None:
        for group in self.live_groups():
            if not group.primary_dead():
                group.primary_engine._publish_metrics()
            group.publish_lag_metrics()

    @property
    def dataset(self) -> RouterView:
        return RouterView(self)

    @property
    def epoch(self) -> int:
        """Max engine epoch across shards (monotonic per mutation)."""
        return max(
            (g.primary_engine.epoch for g in self.live_groups()), default=0
        )

    def add_mutation_listener(self, listener: MutationListener) -> None:
        self._listeners.append(listener)
        for group in self.live_groups():
            group.add_mutation_listener(listener)

    def remove_mutation_listener(self, listener: MutationListener) -> None:
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass
        for group in self.live_groups():
            group.remove_mutation_listener(listener)

    def __len__(self) -> int:
        return sum(len(group) for group in self.live_groups())

    def flush(self) -> None:
        for group in self.live_groups():
            group.flush()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.stop_replication()
        self._executor.shutdown(wait=False)
        for group in self.live_groups():
            group.close()
        if self._tmpdir is not None:
            self._tmpdir.cleanup()
            self._tmpdir = None

    def __enter__(self) -> "ReplicatedShardRouter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
