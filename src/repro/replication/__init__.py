"""Scale-out over the live stack: WAL shipping, failover, scatter-gather.

The subsystem composes four pieces, bottom up:

* :mod:`repro.replication.fencing` — the durable promotion history of a
  shard group (per-epoch WAL files, interval-capped against zombies);
* :mod:`repro.replication.tailer` /
  :mod:`repro.replication.replica` — read replicas that bootstrap from
  PR 9 checkpoint segments and tail the shipped log incrementally,
  exposing a two-part replication-lag watermark;
* :mod:`repro.replication.group` — one shard's fenced primary plus N
  replicas: flush-before-ack writes, automatic promotion of the most
  caught-up replica when the primary dies, respawn with capped backoff;
* :mod:`repro.replication.router` — scatter-gather fan-out across
  groups with deterministic merge and ``partial`` degradation, plus
  live hot-shard splitting.

See ``docs/scale_out.md`` for the protocol walk-through.
"""

from .fencing import EpochEntry, read_epoch_entries, wal_name, write_epoch_entries
from .group import PrimaryHandle, ReplicationGroup
from .replica import ReadReplica
from .router import ReplicatedShardRouter, RouterView, SplitReport
from .tailer import WalTailer

__all__ = [
    "EpochEntry",
    "PrimaryHandle",
    "ReadReplica",
    "ReplicatedShardRouter",
    "ReplicationGroup",
    "RouterView",
    "SplitReport",
    "WalTailer",
    "read_epoch_entries",
    "wal_name",
    "write_epoch_entries",
]
