"""The ``mck shard-bench`` workload engine.

Drives a mixed read/write workload against a
:class:`~repro.replication.router.ReplicatedShardRouter` and reports
what the scale-out tier actually did: per-shard object counts before and
after rebalancing, hot-shard splits, failovers survived mid-workload,
replication-lag watermarks, scatter-gather latency percentiles and how
many answers degraded to ``partial``.

The workload is deliberately *skewed*: inserts cluster around a hot spot
inside one region so the split machinery has something to do, and every
query's keywords come from a small shared vocabulary so cross-shard
fan-out stays feasible.
"""

from __future__ import annotations

import random
import time
from typing import Dict, List, Optional

from ..exceptions import QueryError, ReproError
from .router import ReplicatedShardRouter

__all__ = ["run_shard_bench"]

_VOCAB = [
    "cafe", "museum", "hotel", "library", "cinema", "park", "bakery",
    "pharmacy", "school", "garage", "tower", "harbor", "market", "studio",
]


def _percentile(values: List[float], q: float) -> Optional[float]:
    if not values:
        return None
    ordered = sorted(values)
    idx = min(len(ordered) - 1, int(q * (len(ordered) - 1) + 0.5))
    return ordered[idx]


def run_shard_bench(
    n_shards: int = 4,
    replicas: int = 1,
    objects: int = 400,
    operations: int = 300,
    write_ratio: float = 0.5,
    hot_fraction: float = 0.7,
    split_threshold: Optional[int] = None,
    kill_primary_at: Optional[int] = None,
    algorithm: str = "SKECa+",
    m: int = 3,
    timeout: Optional[float] = None,
    dir: Optional[str] = None,
    metrics=None,
    seed: int = 0,
) -> Dict:
    """Run the scale-out workload; returns the JSON-ready report dict.

    ``kill_primary_at`` crashes the hottest shard's primary after that
    many operations (SIGKILL-style — no final WAL group-commit); the
    router's auto-failover must absorb it.  ``split_threshold`` arms
    live rebalancing: after every write burst the router splits any
    shard that grew past the threshold.
    """
    rng = random.Random(seed)
    extent = 1000.0
    hot_x, hot_y = extent * 0.8, extent * 0.8

    def random_record(hot: bool):
        if hot:
            x = min(extent, max(0.0, rng.gauss(hot_x, extent * 0.04)))
            y = min(extent, max(0.0, rng.gauss(hot_y, extent * 0.04)))
        else:
            x, y = rng.uniform(0, extent), rng.uniform(0, extent)
        kws = rng.sample(_VOCAB, rng.randint(2, 4))
        return (x, y, kws)

    seed_records = [
        random_record(rng.random() < hot_fraction) for _ in range(objects)
    ]
    # Pin the extent corners so the router's grid covers the full square
    # regardless of where the sampled records landed.
    seed_records.append((0.0, 0.0, [_VOCAB[0]]))
    seed_records.append((extent, extent, [_VOCAB[1]]))

    latencies: List[float] = []
    reads = writes = failures = partials = 0
    splits: List[Dict] = []
    inserted: List[int] = []

    started = time.perf_counter()
    with ReplicatedShardRouter(
        seed_records,
        n_shards=n_shards,
        replicas_per_shard=replicas,
        dir=dir,
        name="shard-bench",
        metrics=metrics,
        split_threshold=split_threshold,
        read_preference="auto",
    ) as router:
        sizes_before = router.shard_sizes()
        killed_at: Optional[int] = None
        failovers_before = sum(
            g.failovers for g in router.live_groups()
        )
        for op in range(max(0, int(operations))):
            if kill_primary_at is not None and op == kill_primary_at:
                sizes = router.shard_sizes()
                hottest = max(sizes, key=lambda g: (sizes[g], -g))
                router.groups[hottest].crash_primary()
                killed_at = op
            if rng.random() < write_ratio:
                writes += 1
                try:
                    if inserted and rng.random() < 0.3:
                        router.delete(
                            inserted.pop(rng.randrange(len(inserted)))
                        )
                    else:
                        inserted.append(
                            router.insert(*random_record(rng.random() < hot_fraction))
                        )
                except ReproError:
                    failures += 1
                if split_threshold is not None:
                    report = router.maybe_split()
                    if report is not None:
                        splits.append(report.as_dict())
            else:
                reads += 1
                keywords = rng.sample(_VOCAB, m)
                t0 = time.perf_counter()
                try:
                    group = router.query(
                        keywords, algorithm=algorithm, timeout=timeout
                    )
                    latencies.append(time.perf_counter() - t0)
                    if group.stats.get("shards_missed"):
                        partials += 1
                except QueryError:
                    failures += 1
            router.sync_replicas()
        router.sync_replicas()
        wall = time.perf_counter() - started
        lag = {
            str(gid): [
                {"replica": rid, "records": recs, "seconds": secs}
                for rid, recs, secs in router.groups[gid].lag_watermarks()
            ]
            for gid in router.live_shard_ids()
        }
        failovers = (
            sum(g.failovers for g in router.live_groups()) - failovers_before
        )
        report = {
            "workload": {
                "objects_initial": len(seed_records),
                "objects_final": len(router),
                "operations": operations,
                "reads": reads,
                "writes": writes,
                "failures": failures,
                "partial_answers": partials,
                "write_ratio": write_ratio,
                "hot_fraction": hot_fraction,
                "wall_seconds": wall,
            },
            "topology": {
                "shards_initial": n_shards,
                "shards_final": len(router.live_shard_ids()),
                "replicas_per_shard": replicas,
                "sizes_before": {str(k): v for k, v in sizes_before.items()},
                "sizes_after": {
                    str(k): v for k, v in router.shard_sizes().items()
                },
            },
            "splits": splits,
            "failover": {
                "killed_at_op": killed_at,
                "failovers": failovers,
            },
            "replication_lag": lag,
            "latency": {
                "queries": len(latencies),
                "p50_seconds": _percentile(latencies, 0.5),
                "p95_seconds": _percentile(latencies, 0.95),
            },
        }
    return report
