"""Exception hierarchy for the mCK reproduction library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all exceptions raised by the ``repro`` package."""


class GeometryError(ReproError):
    """Raised on invalid geometric input (e.g. collinear circumcircle)."""


class IndexError_(ReproError):
    """Raised on invalid index operations (name avoids builtin clash)."""


class QueryError(ReproError):
    """Raised when a query is malformed or cannot be satisfied."""


class InfeasibleQueryError(QueryError):
    """Raised when no group of objects can cover all query keywords."""

    def __init__(self, missing_keywords=()):
        self.missing_keywords = tuple(missing_keywords)
        detail = ""
        if self.missing_keywords:
            detail = ": no object contains " + ", ".join(
                repr(t) for t in self.missing_keywords
            )
        super().__init__("query keywords cannot all be covered" + detail)


class DatasetError(ReproError):
    """Raised on malformed dataset input or serialization problems."""


class ExperimentError(ReproError):
    """Raised by the experiment harness on inconsistent configuration."""


class AlgorithmTimeout(ReproError):
    """Raised internally when an algorithm exceeds its time budget.

    The experiment runner converts this into a "failed within threshold"
    data point, mirroring the paper's success-rate methodology (§6.2.3).
    """

    def __init__(self, algorithm: str, budget_seconds: float):
        self.algorithm = algorithm
        self.budget_seconds = budget_seconds
        super().__init__(
            f"{algorithm} exceeded time budget of {budget_seconds:.3f}s"
        )
