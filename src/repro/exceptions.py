"""Exception hierarchy for the mCK reproduction library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all exceptions raised by the ``repro`` package."""


class GeometryError(ReproError):
    """Raised on invalid geometric input (e.g. collinear circumcircle)."""


class IndexError_(ReproError):
    """Raised on invalid index operations (name avoids builtin clash)."""


class QueryError(ReproError):
    """Raised when a query is malformed or cannot be satisfied."""


class InvalidRequestError(QueryError):
    """A serving request was constructed with invalid parameters.

    Raised at :class:`~repro.serving.service.QueryRequest` construction
    time — empty keyword tuples, non-positive ``epsilon``, non-positive
    ``timeout`` — so malformed requests fail fast and typed instead of
    surfacing as confusing errors deep inside the engine.
    """


class QueryRejected(ReproError):
    """The service refused a request under overload (HTTP-429-style).

    Raised by the admission-control layer (see
    :mod:`repro.serving.admission`) instead of queueing work it cannot
    finish: the queue is at capacity, a shedding policy evicted the
    request, its deadline is already unmeetable, or the service is
    shutting down.  ``reason`` is machine-readable and mirrors the
    ``reason`` label of the ``mck_admission_rejected_total`` metric:

    ``capacity``
        The bounded admission queue was full (``reject-newest``).
    ``shed_oldest``
        Evicted from the queue to admit a newer request
        (``reject-oldest``).
    ``deadline_unmeetable``
        The request's remaining deadline cannot be met given observed
        service times and the current backlog (``deadline-aware``).
    ``worker_backpressure``
        A distributed worker's bounded task queue was full.
    ``shutdown``
        The service is closing; queued work is rejected, not dropped.
    """

    def __init__(self, reason: str = "capacity", detail: str = ""):
        self.reason = reason
        self.detail = detail
        message = f"query rejected ({reason})"
        if detail:
            message += f": {detail}"
        super().__init__(message)


class InfeasibleQueryError(QueryError):
    """Raised when no group of objects can cover all query keywords."""

    def __init__(self, missing_keywords=()):
        self.missing_keywords = tuple(missing_keywords)
        detail = ""
        if self.missing_keywords:
            detail = ": no object contains " + ", ".join(
                repr(t) for t in self.missing_keywords
            )
        super().__init__("query keywords cannot all be covered" + detail)


class DatasetError(ReproError):
    """Raised on malformed dataset input or serialization problems."""


class WALError(ReproError):
    """Raised on invalid write-ahead-log operations (see :mod:`repro.live.wal`).

    Note that a *corrupt* WAL never raises during replay — torn tails are
    expected after a crash and replay stops cleanly at the last valid
    record; this exception covers programming errors such as appending to
    a closed log or constructing a record with an unknown op.
    """


class SegmentError(ReproError):
    """An on-disk checkpoint segment or manifest failed verification.

    Raised by :mod:`repro.index.segments` when a segment's magic, header,
    or section CRCs do not check out, and by the checkpoint manifest
    reader on a torn or corrupt manifest.  Recovery code treats this as a
    *degradation signal*, not a fatal error: a store that cannot load its
    newest checkpoint falls back to an older one (or to full WAL replay)
    and keeps serving — see :mod:`repro.live.checkpoint`.
    """


class ExperimentError(ReproError):
    """Raised by the experiment harness on inconsistent configuration."""


class AlgorithmTimeout(ReproError):
    """Raised internally when an algorithm exceeds its time budget.

    The experiment runner converts this into a "failed within threshold"
    data point, mirroring the paper's success-rate methodology (§6.2.3).

    When the algorithm had already published a feasible answer through its
    deadline's incumbent channel (see
    :meth:`repro.core.common.Deadline.offer`), the exception carries that
    group as ``incumbent`` plus its certified ``quality`` tag
    (``exact`` / ``approx_2sqrt3`` / ``greedy_2x`` / ``partial``); callers
    in degraded mode return it instead of failing, strict callers ignore
    it and keep the paper's fail-hard semantics.
    """

    def __init__(
        self,
        algorithm: str,
        budget_seconds: float,
        incumbent=None,
        quality: str = "",
    ):
        self.algorithm = algorithm
        self.budget_seconds = budget_seconds
        #: Best feasible :class:`~repro.core.result.Group` found before
        #: expiry, or ``None`` when the run had produced nothing usable.
        self.incumbent = incumbent
        #: Quality tag certifying the incumbent's approximation bound.
        self.quality = quality
        message = f"{algorithm} exceeded time budget of {budget_seconds:.3f}s"
        if incumbent is not None:
            message += f" (feasible {quality or 'unrated'} incumbent available)"
        super().__init__(message)


class ReplicationError(ReproError):
    """A replication-group operation failed (see :mod:`repro.replication`).

    Covers structural problems — promoting with no replicas, applying
    through a group whose primary cannot be revived, a corrupt epoch
    file — as opposed to the *expected* stream discontinuities modelled
    by :class:`ReplicationGap`.
    """


class ReplicationGap(ReplicationError):
    """A replica's WAL tail no longer continues from its applied prefix.

    Raised while tailing when the next needed sequence number is not
    present in the shipped log — typically because the primary truncated
    the covered prefix after a bootstrap checkpoint while this replica
    lagged behind.  The standard response is to re-bootstrap from the
    newest checkpoint segment, not to fail.
    """

    def __init__(self, needed_seq: int, detail: str = ""):
        self.needed_seq = int(needed_seq)
        message = f"replication stream gap: need seq {needed_seq}"
        if detail:
            message += f" ({detail})"
        super().__init__(message)


class FencedWriteError(ReplicationError):
    """A write arrived through a primary handle from a superseded epoch.

    After a failover the promoted primary bumps the group's fencing
    epoch; a zombie of the old primary that wakes up and tries to write
    is rejected with this error instead of silently diverging the
    replicated history.
    """

    def __init__(self, shard: str, stale_epoch: int, current_epoch: int):
        self.shard = shard
        self.stale_epoch = int(stale_epoch)
        self.current_epoch = int(current_epoch)
        super().__init__(
            f"shard {shard}: write fenced (handle epoch {stale_epoch}, "
            f"group epoch {current_epoch})"
        )


class WorkerCrashed(ReproError):
    """A distributed worker died mid-task (dead process / broken pipe).

    The coordinator treats this as a transient infrastructure failure:
    the worker is respawned from its partition and the task resubmitted
    with capped exponential backoff.
    """

    def __init__(self, worker_id: int = -1, detail: str = ""):
        self.worker_id = worker_id
        message = f"worker {worker_id} crashed"
        if detail:
            message += f": {detail}"
        super().__init__(message)
