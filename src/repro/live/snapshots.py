"""Epoch-based snapshot management for the live store.

A :class:`Snapshot` is an immutable ``(epoch, base, delta)`` triple with
its lazily built merged :class:`~repro.live.delta.LiveView`.  The
:class:`EpochManager` swaps the current snapshot atomically (writers
publish a *new* snapshot; nothing already published is ever mutated) and
tracks per-epoch reader pins:

* readers :meth:`~EpochManager.pin` the current epoch for the duration of
  one query — they keep seeing exactly the version they started on, no
  matter how many mutations or compactions land meanwhile;
* writers never wait for readers — publish is a pointer swap under a
  short lock;
* a superseded epoch is *retired* once its reader count drains to zero,
  at which point ``on_retire`` callbacks fire (metrics, and the hook that
  lets tests assert old versions do not linger).
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional

from .base import SealedBase
from .delta import DeltaOverlay, LiveView

__all__ = ["Snapshot", "EpochManager"]


class Snapshot:
    """One immutable published version of the store."""

    __slots__ = ("epoch", "base", "delta", "wal_seq", "_view", "_view_lock")

    def __init__(
        self,
        epoch: int,
        base: SealedBase,
        delta: DeltaOverlay,
        wal_seq: int = 0,
    ):
        self.epoch = epoch
        self.base = base
        self.delta = delta
        #: Highest WAL sequence reflected in this snapshot's merged view
        #: (0 when the engine has no WAL).  Checkpointing uses it as the
        #: durable watermark: a segment sealed from this snapshot covers
        #: exactly the log prefix through ``wal_seq``.
        self.wal_seq = wal_seq
        self._view: Optional[LiveView] = None
        self._view_lock = threading.Lock()

    def view(self) -> LiveView:
        """The merged dataset-shaped view (built once, cached)."""
        with self._view_lock:
            if self._view is None:
                self._view = LiveView(
                    self.base, self.delta, name=f"{self.base.name}@e{self.epoch}"
                )
            return self._view

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Snapshot(epoch={self.epoch}, base={len(self.base)}, "
            f"delta={self.delta.size})"
        )


class _PinGuard:
    """Context manager handed to readers; unpins exactly once."""

    __slots__ = ("_manager", "_snapshot", "_done")

    def __init__(self, manager: "EpochManager", snapshot: Snapshot):
        self._manager = manager
        self._snapshot = snapshot
        self._done = False

    @property
    def snapshot(self) -> Snapshot:
        return self._snapshot

    def __enter__(self) -> Snapshot:
        return self._snapshot

    def __exit__(self, *exc) -> None:
        self.release()

    def release(self) -> None:
        if not self._done:
            self._done = True
            self._manager._unpin(self._snapshot.epoch)


class EpochManager:
    """Atomic snapshot swap + reader pinning + epoch retirement."""

    def __init__(
        self,
        initial: Snapshot,
        on_retire: Optional[Callable[[Snapshot], None]] = None,
    ):
        self._lock = threading.Lock()
        self._current = initial
        self._pins: Dict[int, int] = {}
        self._superseded: Dict[int, Snapshot] = {}
        self._on_retire = on_retire
        self._retired_epochs: List[int] = []

    # ------------------------------------------------------------------ #

    def current(self) -> Snapshot:
        """The latest published snapshot (unpinned peek)."""
        return self._current

    @property
    def epoch(self) -> int:
        return self._current.epoch

    def pin(self) -> _PinGuard:
        """Pin the current epoch; use as a context manager around a read."""
        with self._lock:
            snapshot = self._current
            self._pins[snapshot.epoch] = self._pins.get(snapshot.epoch, 0) + 1
        return _PinGuard(self, snapshot)

    def publish(
        self,
        base: SealedBase,
        delta: DeltaOverlay,
        wal_seq: Optional[int] = None,
    ) -> Snapshot:
        """Swap in a new version; returns the published snapshot.

        ``wal_seq`` defaults to the superseded snapshot's watermark — the
        right value for publishes that reorganise existing data without
        adding mutations (compaction).
        """
        to_retire: List[Snapshot] = []
        with self._lock:
            old = self._current
            new = Snapshot(
                old.epoch + 1,
                base,
                delta,
                wal_seq=old.wal_seq if wal_seq is None else int(wal_seq),
            )
            self._current = new
            if self._pins.get(old.epoch, 0) > 0:
                self._superseded[old.epoch] = old
            else:
                to_retire.append(old)
        for snapshot in to_retire:
            self._retire(snapshot)
        return new

    def pinned_epochs(self) -> List[int]:
        with self._lock:
            return sorted(e for e, n in self._pins.items() if n > 0)

    def retired_epochs(self) -> List[int]:
        """Epochs fully drained and retired (oldest first)."""
        with self._lock:
            return list(self._retired_epochs)

    # ------------------------------------------------------------------ #

    def _unpin(self, epoch: int) -> None:
        to_retire: Optional[Snapshot] = None
        with self._lock:
            remaining = self._pins.get(epoch, 0) - 1
            if remaining > 0:
                self._pins[epoch] = remaining
            else:
                self._pins.pop(epoch, None)
                # Retire only once superseded: the current epoch stays
                # resident however often its reader count hits zero.
                to_retire = self._superseded.pop(epoch, None)
        if to_retire is not None:
            self._retire(to_retire)

    def _retire(self, snapshot: Snapshot) -> None:
        with self._lock:
            self._retired_epochs.append(snapshot.epoch)
        if self._on_retire is not None:
            self._on_retire(snapshot)
