"""Shard-routed mutations over a grid of live engines.

:class:`ShardedLiveStore` tiles space with the same
:class:`~repro.distributed.partition.GridPartitioner` the distributed
query layer uses (paper §8) and runs one independent
:class:`~repro.live.engine.LiveMCKEngine` per grid cell.  Mutations are
*routed*: an insert goes to the engine owning the point's core cell, a
delete to the shard that owns the oid.  Each shard keeps its own WAL,
delta, epochs and compactor, so write throughput scales with the grid
and a compaction stalls at most one shard's delta.

Oids stay globally unique: shard ``i`` allocates from the disjoint range
``[i * oid_stride, (i + 1) * oid_stride)``.

Queries are answered per-shard and the best feasible group wins.  That
is exact whenever the optimal group lies inside one shard's view — the
same locality property the distributed protocol gets from halos
(:mod:`repro.distributed.partition`); halo replication for live shards
is future work, so treat cross-shard answers as a lower bound here.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.objects import Dataset
from ..core.result import Group
from ..core.skeca import DEFAULT_EPSILON
from ..distributed.partition import GridPartitioner
from ..exceptions import DatasetError, InfeasibleQueryError
from .base import SealedBase
from .engine import LiveMCKEngine

__all__ = ["ShardedLiveStore"]

#: Default per-shard oid range width (~10^12 objects per shard).
DEFAULT_OID_STRIDE = 1 << 40


def _merge_key(group: Group) -> Tuple[float, Tuple[int, ...]]:
    """Total order for cross-shard best-group merging."""
    return (group.diameter, tuple(sorted(group.object_ids)))


class ShardedLiveStore:
    """Route live mutations to per-cell engines with disjoint oid ranges."""

    def __init__(
        self,
        records: Sequence[Tuple[float, float, Iterable[str]]],
        n_shards: int = 4,
        name: str = "sharded-live",
        wal_dir: Optional[str] = None,
        oid_stride: int = DEFAULT_OID_STRIDE,
        metrics=None,
        **engine_kwargs,
    ):
        records = list(records)
        if not records:
            raise DatasetError("sharded live store needs bootstrap records "
                               "to fix the partitioning extent")
        self.name = name
        self.oid_stride = int(oid_stride)
        # The bootstrap dataset only fixes the grid extent; the per-shard
        # engines are the source of truth from here on.
        bootstrap = Dataset.from_records(
            [(x, y, kw) for x, y, kw in records], name=f"{name}-bootstrap"
        )
        self.partitioner = GridPartitioner(bootstrap, n_shards)
        self.n_shards = self.partitioner.n_workers

        grouped: Dict[int, List[Tuple[int, float, float, Iterable[str]]]] = {
            s: [] for s in range(self.n_shards)
        }
        self._owner: Dict[int, int] = {}
        for x, y, kw in records:
            shard = self.partitioner.worker_for(x, y)
            oid = shard * self.oid_stride + len(grouped[shard])
            grouped[shard].append((oid, x, y, kw))
            self._owner[oid] = shard

        self.shards: List[LiveMCKEngine] = []
        for shard in range(self.n_shards):
            wal_path = None
            if wal_dir is not None:
                wal_path = f"{wal_dir}/shard-{shard:03d}.wal"
            self.shards.append(
                LiveMCKEngine(
                    SealedBase.build(grouped[shard], name=f"{name}-s{shard}"),
                    wal_path=wal_path,
                    # Every shard shares the registry; the shard= label
                    # keeps their series apart so a hot shard is visible
                    # before rebalancing has to act on it.
                    metrics=metrics,
                    shard_label=str(shard),
                    oid_start=shard * self.oid_stride,
                    **engine_kwargs,
                )
            )
            # A WAL replay may have grown the shard beyond its bootstrap
            # set; adopt those recovered objects into the routing map.
            for oid in self.shards[shard].dataset.live_oids():
                self._owner.setdefault(oid, shard)

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #

    def route(self, x: float, y: float) -> int:
        """The shard id owning a point."""
        return self.partitioner.worker_for(x, y)

    def shard_of(self, oid: int) -> int:
        """The shard owning a live oid (raises when unknown)."""
        try:
            return self._owner[oid]
        except KeyError:
            raise DatasetError(f"oid {oid} is not live in any shard") from None

    def insert(self, x: float, y: float, keywords: Iterable[str]) -> int:
        shard = self.route(x, y)
        oid = self.shards[shard].insert(x, y, keywords)
        self._owner[oid] = shard
        return oid

    def delete(self, oid: int) -> None:
        shard = self.shard_of(oid)
        self.shards[shard].delete(oid)
        del self._owner[oid]

    def apply_batch(
        self,
        inserts: Sequence[Tuple[float, float, Iterable[str]]] = (),
        deletes: Sequence[int] = (),
    ) -> List[int]:
        """Group a mixed batch by shard; each shard applies atomically.

        Atomicity is per shard — a cross-shard batch is not a distributed
        transaction.
        """
        by_shard_ins: Dict[int, List[Tuple[float, float, Iterable[str]]]] = {}
        order: List[int] = []
        for x, y, kw in inserts:
            shard = self.route(x, y)
            by_shard_ins.setdefault(shard, []).append((x, y, kw))
            order.append(shard)
        by_shard_del: Dict[int, List[int]] = {}
        for oid in deletes:
            by_shard_del.setdefault(self.shard_of(oid), []).append(oid)

        produced: Dict[int, List[int]] = {}
        for shard in sorted(set(by_shard_ins) | set(by_shard_del)):
            oids = self.shards[shard].apply_batch(
                inserts=by_shard_ins.get(shard, ()),
                deletes=by_shard_del.get(shard, ()),
            )
            produced[shard] = oids
            for oid in oids:
                self._owner[oid] = shard
            for oid in by_shard_del.get(shard, ()):
                del self._owner[oid]
        # Reassemble new oids in the caller's insert order.
        cursors = {shard: 0 for shard in produced}
        out: List[int] = []
        for shard in order:
            out.append(produced[shard][cursors[shard]])
            cursors[shard] += 1
        return out

    # ------------------------------------------------------------------ #
    # Query / introspection
    # ------------------------------------------------------------------ #

    def query(
        self,
        keywords: Sequence[str],
        algorithm: str = "SKECa+",
        epsilon: float = DEFAULT_EPSILON,
        timeout: Optional[float] = None,
    ) -> Group:
        """Best per-shard answer (see module docstring for exactness)."""
        best: Optional[Group] = None
        feasible = False
        for shard in self.shards:
            try:
                group = shard.query(
                    keywords, algorithm=algorithm, epsilon=epsilon,
                    timeout=timeout,
                )
            except InfeasibleQueryError:
                continue
            feasible = True
            # Deterministic merge: diameter first, then lexicographic
            # oids — two shards producing equal-diameter groups must not
            # leave the winner to shard iteration order, or the same
            # store answers differently across n_shards.
            if best is None or _merge_key(group) < _merge_key(best):
                best = group
        if not feasible or best is None:
            raise InfeasibleQueryError(missing_keywords=tuple(keywords))
        return best

    def __len__(self) -> int:
        return sum(len(shard) for shard in self.shards)

    def epochs(self) -> List[int]:
        return [shard.epoch for shard in self.shards]

    def shard_sizes(self) -> List[int]:
        return [len(shard) for shard in self.shards]

    def flush(self) -> None:
        for shard in self.shards:
            shard.flush()

    def close(self) -> None:
        for shard in self.shards:
            shard.close()

    def __enter__(self) -> "ShardedLiveStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
