"""Append-only write-ahead log for live mutations.

Format: one record per line, ``<crc32 as 8 hex digits> <json>\\n``.  The
CRC covers the JSON bytes exactly, so a torn tail (process killed mid
``write``) is detected as either a short line, a CRC mismatch, or broken
JSON — replay stops cleanly at the last valid record and the torn bytes
are truncated away before the log is reopened for append.

Records carry a strictly increasing ``seq``; replay stops at the first
sequence discontinuity (a seq that is not ``previous + 1``), which
catches interleaved writers and manual edits.  A fresh log starts at
``seq=1``; a log *rotated* by checkpointing (see
:meth:`WriteAheadLog.truncate_through`) starts at the first seq after
the checkpoint's covered prefix, so the first record of a file anchors
the contiguity check rather than being required to be 1.

Durability is batched: ``fsync`` runs every ``sync_every`` appends, and
*unconditionally* on :meth:`~WriteAheadLog.flush` /
:meth:`~WriteAheadLog.close` — ``sync_every`` only governs the automatic
per-append group-commit cadence, never whether an explicit flush is
durable.  The trade is a bounded window of recent mutations against not
paying a disk round-trip per insert — the standard WAL group-commit knob.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..exceptions import WALError
from ..index.segments import fsync_dir
from ..testing import faults

__all__ = ["WalRecord", "WriteAheadLog", "read_wal"]

#: Mutation kinds a live store logs.
OPS = ("insert", "delete")


@dataclass(frozen=True)
class WalRecord:
    """One durable mutation: ``insert`` (oid, x, y, keywords) or ``delete`` (oid)."""

    seq: int
    op: str
    oid: int
    x: float = 0.0
    y: float = 0.0
    keywords: Tuple[str, ...] = ()

    def payload(self) -> Dict:
        doc: Dict = {"seq": self.seq, "op": self.op, "oid": self.oid}
        if self.op == "insert":
            doc["x"] = self.x
            doc["y"] = self.y
            doc["keywords"] = list(self.keywords)
        return doc

    @classmethod
    def from_payload(cls, doc: Dict) -> "WalRecord":
        op = doc.get("op")
        if op not in OPS:
            raise WALError(f"unknown WAL op {op!r}")
        return cls(
            seq=int(doc["seq"]),
            op=op,
            oid=int(doc["oid"]),
            x=float(doc.get("x", 0.0)),
            y=float(doc.get("y", 0.0)),
            keywords=tuple(str(k) for k in doc.get("keywords", ())),
        )


def _encode(record: WalRecord) -> bytes:
    body = json.dumps(record.payload(), sort_keys=True).encode("utf-8")
    crc = zlib.crc32(body) & 0xFFFFFFFF
    return b"%08x %s\n" % (crc, body)


def read_wal(path: str) -> Tuple[List[WalRecord], int, Optional[str]]:
    """Replay a WAL file.

    Returns ``(records, valid_bytes, torn_reason)``: every record up to
    the last valid one, the byte offset where the valid prefix ends, and
    ``None`` when the whole file parsed (otherwise a short human-readable
    reason the replay stopped — truncated line, CRC mismatch, bad JSON,
    sequence gap).  A missing file is an empty, untorn log.
    """
    records: List[WalRecord] = []
    valid_bytes = 0
    if not os.path.exists(path):
        return records, valid_bytes, None
    last_seq: Optional[int] = None
    with open(path, "rb") as fh:
        for raw in fh:
            if not raw.endswith(b"\n"):
                return records, valid_bytes, "truncated record (no newline)"
            line = raw[:-1]
            if len(line) < 10 or line[8:9] != b" ":
                return records, valid_bytes, "malformed record framing"
            try:
                want_crc = int(line[:8], 16)
            except ValueError:
                return records, valid_bytes, "malformed CRC field"
            body = line[9:]
            if zlib.crc32(body) & 0xFFFFFFFF != want_crc:
                return records, valid_bytes, "CRC mismatch"
            try:
                record = WalRecord.from_payload(json.loads(body))
            except (ValueError, KeyError, WALError):
                return records, valid_bytes, "undecodable record body"
            if last_seq is not None and record.seq != last_seq + 1:
                return records, valid_bytes, (
                    f"sequence gap ({last_seq} -> {record.seq})"
                )
            last_seq = record.seq
            records.append(record)
            valid_bytes += len(raw)
    return records, valid_bytes, None


class WriteAheadLog:
    """Append-only durable mutation log with batched fsync.

    Opening an existing path replays it first (the valid records are
    exposed as :attr:`recovered`) and truncates any torn tail so new
    appends start on a clean prefix.  ``sync_every=1`` fsyncs every
    record; larger values batch; ``0``/``None`` disables the *automatic*
    per-append fsync only (tests, tmpfs) — an explicit :meth:`flush` or
    :meth:`close` always fsyncs, in every mode.
    """

    def __init__(self, path: str, sync_every: int = 64, start_seq: int = 0):
        self.path = path
        self.sync_every = max(0, int(sync_every or 0))
        self.recovered, valid_bytes, self.torn_reason = read_wal(path)
        if os.path.exists(path) and os.path.getsize(path) > valid_bytes:
            # Drop the torn tail in place; appending after garbage would
            # poison every later replay.  The truncate is itself fsynced
            # (file, then directory) so a second crash right here cannot
            # resurrect the torn bytes and poison the *next* recovery.
            with open(path, "r+b") as fh:
                fh.truncate(valid_bytes)
                fh.flush()
                os.fsync(fh.fileno())
            fsync_dir(os.path.dirname(os.path.abspath(path)))
        # ``start_seq`` seeds the sequence when the covered prefix lives
        # in a checkpoint segment instead of this file (a rotated log may
        # be empty while the store is not); appends must not restart at 1.
        self._last_seq = max(
            self.recovered[-1].seq if self.recovered else 0, int(start_seq)
        )
        self._records_written = 0
        self._unsynced = 0
        self._fh = open(path, "ab")
        self._closed = False

    # ------------------------------------------------------------------ #

    @property
    def last_seq(self) -> int:
        return self._last_seq

    @property
    def records_written(self) -> int:
        """Records appended through this handle (excludes recovered ones)."""
        return self._records_written

    def append_insert(
        self, oid: int, x: float, y: float, keywords: Iterable[str]
    ) -> WalRecord:
        return self._append(
            WalRecord(
                seq=self._last_seq + 1,
                op="insert",
                oid=int(oid),
                x=float(x),
                y=float(y),
                keywords=tuple(str(k) for k in keywords),
            )
        )

    def append_delete(self, oid: int) -> WalRecord:
        return self._append(
            WalRecord(seq=self._last_seq + 1, op="delete", oid=int(oid))
        )

    def _append(self, record: WalRecord) -> WalRecord:
        if self._closed:
            raise WALError("write-ahead log is closed")
        self._fh.write(_encode(record))
        self._last_seq = record.seq
        self._records_written += 1
        self._unsynced += 1
        if self.sync_every and self._unsynced >= self.sync_every:
            self.flush()
        return record

    def truncate_through(self, seq: int) -> int:
        """Drop every record with ``record.seq <= seq``; returns kept count.

        The checkpointing primitive: once a checkpoint segment durably
        covers the log prefix through ``seq``, the prefix is dead weight
        that only slows the next recovery.  Rotation is atomic — the kept
        tail is written to a temp file, fsynced, renamed over the log,
        and the directory fsynced — so a crash at *any* point leaves
        either the old complete log or the new complete tail, both
        replayable (the ``live.wal.rotate`` fault site fires before each
        step with ``stage=`` ``write_tmp`` / ``rename`` / ``fsync_dir``).

        The open handle survives rotation and appends continue at the
        same sequence; ``seq`` values beyond :attr:`last_seq` only empty
        the file, they never invent records.
        """
        if self._closed:
            raise WALError("write-ahead log is closed")
        seq = int(seq)
        self.flush()
        current, _bytes, _torn = read_wal(self.path)
        kept = [r for r in current if r.seq > seq]
        tmp = self.path + ".rotate"
        faults.fire("live.wal.rotate", stage="write_tmp", seq=seq)
        with open(tmp, "wb") as fh:
            for record in kept:
                fh.write(_encode(record))
            fh.flush()
            os.fsync(fh.fileno())
        faults.fire("live.wal.rotate", stage="rename", seq=seq)
        self._fh.close()
        os.replace(tmp, self.path)
        faults.fire("live.wal.rotate", stage="fsync_dir", seq=seq)
        fsync_dir(os.path.dirname(os.path.abspath(self.path)))
        self._fh = open(self.path, "ab")
        self._unsynced = 0
        return len(kept)

    def flush(self) -> None:
        """Flush buffered records and fsync (group commit boundary).

        Always fsyncs — including under ``sync_every=0``/``None``, which
        only disables the automatic per-append group commit.  ``close()``
        flushes, so a closed log is durable in every mode.
        """
        if self._closed:
            return
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._unsynced = 0

    def abandon(self) -> None:
        """Stop writing *without* the final fsync (crash simulation).

        Models a SIGKILL on a machine that stays up: bytes already handed
        to the OS survive in the page cache, but no group-commit boundary
        is forced on the way out — exactly what the replication tests
        need to kill a primary "at an arbitrary point".  The handle is
        closed; further appends raise :class:`~repro.exceptions.WALError`.
        """
        if self._closed:
            return
        self._closed = True
        try:
            self._fh.close()
        except OSError:  # pragma: no cover - flush of a dying handle
            pass

    def close(self) -> None:
        if self._closed:
            return
        self.flush()
        self._fh.close()
        self._closed = True

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
