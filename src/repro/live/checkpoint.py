"""Crash-safe checkpoints: segment persistence + verified instant restart.

The WAL alone makes mutations durable, but recovery cost grows with the
log: a restart replays every record ever written and rebuilds every
index from scratch.  A *checkpoint* bounds that cost.  Sealing a base is
already an index rebuild — checkpointing rides it: the freshly sealed
base is serialized to a CRC-checksummed segment
(:mod:`repro.index.segments`), an atomic manifest records which segment
covers which WAL prefix, and the covered prefix is truncated away.
Recovery then becomes *segment load + short WAL tail replay*.

Atomicity protocol (every arrow is a crash point, all are survivable)::

    seal base -> write segment.tmp -> fsync -> rename -> fsync dir
              -> write MANIFEST.tmp -> fsync -> rename -> fsync dir
              -> WAL truncate_through(prev covered seq)

* A crash before the manifest rename leaves the previous manifest
  authoritative; the orphan segment is garbage-collected later.
* A crash after the rename but before the truncate recovers from the new
  checkpoint and simply skips the already-covered WAL records.
* The WAL truncation is itself an atomic rotation (see
  :meth:`~repro.live.wal.WriteAheadLog.truncate_through`).

The manifest retains the **last two** checkpoints and the WAL is only
truncated through the *older* retained one.  That one-checkpoint lag is
the corruption budget: if the newest segment fails its CRC at recovery
(bit rot, torn write that survived rename), the previous checkpoint plus
the still-present WAL tail reconstructs the identical store.  Only when
*every* retained segment is unreadable does recovery degrade to replaying
whatever WAL exists over the initial base — counted, logged, and
reported, never a refusal to start.

Fault sites: ``live.checkpoint.segment_write``,
``live.checkpoint.manifest_rename``, ``live.checkpoint.wal_truncate``
fire before the corresponding protocol step; ``live.checkpoint.recover``
fires at recovery start (see :mod:`repro.testing.faults`).
"""

from __future__ import annotations

import json
import logging
import os
import time
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..exceptions import SegmentError
from ..index.segments import fsync_dir, load_segment, write_segment
from ..observability.tracer import span
from ..testing import faults
from .base import SealedBase
from .wal import WalRecord, read_wal

__all__ = ["CheckpointManager", "RecoveryReport", "read_manifest"]

logger = logging.getLogger("repro.live.checkpoint")

MANIFEST_NAME = "MANIFEST"
WAL_NAME = "wal.log"
SEGMENT_DIR = "segments"

#: Checkpoints retained in the manifest.  Two, not one: the WAL is only
#: truncated through the older retained checkpoint, so the newest segment
#: failing verification still leaves a complete (older segment + WAL
#: tail) recovery path.
RETAIN = 2


def _frame(body: bytes) -> bytes:
    return b"%08x %s\n" % (zlib.crc32(body) & 0xFFFFFFFF, body)


def read_manifest(path: str) -> Dict:
    """Read and CRC-verify a checkpoint manifest.

    Raises :class:`~repro.exceptions.SegmentError` on any corruption —
    missing newline (torn write), CRC mismatch, undecodable JSON, or an
    unsupported version.  A missing file is a plain ``FileNotFoundError``
    (first boot, not corruption).
    """
    with open(path, "rb") as fh:
        line = fh.read()
    if not line.endswith(b"\n"):
        raise SegmentError(f"{path}: torn manifest (no trailing newline)")
    line = line[:-1]
    if len(line) < 10 or line[8:9] != b" ":
        raise SegmentError(f"{path}: malformed manifest framing")
    try:
        want = int(line[:8], 16)
    except ValueError:
        raise SegmentError(f"{path}: malformed manifest CRC field") from None
    body = line[9:]
    if zlib.crc32(body) & 0xFFFFFFFF != want:
        raise SegmentError(f"{path}: manifest CRC mismatch")
    try:
        doc = json.loads(body)
    except ValueError as err:
        raise SegmentError(f"{path}: undecodable manifest: {err}") from None
    if doc.get("version") != 1:
        raise SegmentError(
            f"{path}: unsupported manifest version {doc.get('version')!r}"
        )
    return doc


@dataclass
class RecoveryReport:
    """What one recovery did, for /readyz detail and metrics.

    ``state`` walks the recovery state machine:
    ``pending -> reading_manifest -> loading_segment -> replaying_wal ->
    complete``.  ``segment_failures`` counts retained segments (or the
    manifest) that failed verification and were skipped; ``source`` says
    where the base came from (``segment`` / ``initial``).
    """

    state: str = "pending"
    source: str = "initial"
    segment: str = ""
    covered_seq: int = 0
    wal_records_replayed: int = 0
    segment_failures: int = 0
    failure_reasons: List[str] = field(default_factory=list)
    seconds: float = 0.0

    @property
    def complete(self) -> bool:
        return self.state == "complete"

    def as_dict(self) -> Dict:
        return {
            "state": self.state,
            "source": self.source,
            "segment": self.segment,
            "covered_seq": self.covered_seq,
            "wal_records_replayed": self.wal_records_replayed,
            "segment_failures": self.segment_failures,
            "failure_reasons": list(self.failure_reasons),
            "seconds": self.seconds,
        }


class CheckpointManager:
    """Durability subsystem for one live engine's data directory.

    Layout under ``data_dir``::

        MANIFEST            atomic pointer: retained checkpoints, newest last
        wal.log             the current WAL (tail since the oldest retained
                            checkpoint)
        segments/seg-*.seg  CRC-checksummed sealed-base segments
    """

    def __init__(self, data_dir: str):
        self.data_dir = os.path.abspath(data_dir)
        self.segment_dir = os.path.join(self.data_dir, SEGMENT_DIR)
        os.makedirs(self.segment_dir, exist_ok=True)
        self.manifest_path = os.path.join(self.data_dir, MANIFEST_NAME)
        self.wal_path = os.path.join(self.data_dir, WAL_NAME)
        self.checkpoints_taken = 0
        self.checkpoint_failures = 0
        #: Highest ``next_oid`` recorded by any retained checkpoint, set
        #: by :meth:`recover`.  A compacted base forgets oids that were
        #: allocated and then deleted; without this high-water mark a
        #: restart after delete-everything + compact would re-issue them.
        self.recovered_next_oid = 0

    # ------------------------------------------------------------------ #
    # Writing checkpoints
    # ------------------------------------------------------------------ #

    def _retained(self) -> List[Dict]:
        try:
            return list(read_manifest(self.manifest_path).get("checkpoints", ()))
        except FileNotFoundError:
            return []
        except SegmentError:
            # A torn manifest at *write* time means the previous write
            # crashed mid-protocol; the new checkpoint simply starts a
            # fresh history (recovery already logged the corruption).
            return []

    def checkpoint(
        self,
        base: SealedBase,
        covered_seq: int,
        wal=None,
        next_oid: int = 0,
    ) -> Dict:
        """Persist ``base`` as the checkpoint covering WAL seq ``covered_seq``.

        Runs the full protocol: segment write, manifest commit, WAL
        truncation through the *previous* retained checkpoint's covered
        seq, and garbage collection of unreferenced segments.  Raises on
        failure (callers count and keep serving); the store on disk is
        never left unrecoverable, whichever step dies.
        """
        started = time.perf_counter()
        covered_seq = int(covered_seq)
        entry_name = f"seg-{covered_seq:012d}.seg"
        seg_path = os.path.join(self.segment_dir, entry_name)
        with span(
            "live.checkpoint", covered_seq=covered_seq, objects=len(base)
        ):
            faults.fire(
                "live.checkpoint.segment_write",
                covered_seq=covered_seq,
                objects=len(base),
            )
            header = write_segment(base, seg_path)
            fsync_dir(self.segment_dir)

            retained = self._retained()
            retained = [
                c for c in retained if int(c["wal_seq"]) != covered_seq
            ]
            retained.append(
                {
                    "segment": entry_name,
                    "wal_seq": covered_seq,
                    "objects": int(header["objects"]),
                    # The oid allocator's high-water mark, NOT derivable
                    # from the base: deleted-then-compacted oids leave no
                    # trace in the segment but must never be re-issued.
                    "next_oid": int(next_oid),
                    "created_unix": time.time(),
                }
            )
            retained = retained[-RETAIN:]
            manifest = {"version": 1, "checkpoints": retained}
            body = json.dumps(manifest, sort_keys=True).encode("utf-8")
            tmp = self.manifest_path + ".tmp"
            with open(tmp, "wb") as fh:
                fh.write(_frame(body))
                fh.flush()
                os.fsync(fh.fileno())
            faults.fire(
                "live.checkpoint.manifest_rename", covered_seq=covered_seq
            )
            os.replace(tmp, self.manifest_path)
            fsync_dir(self.data_dir)

            faults.fire(
                "live.checkpoint.wal_truncate", covered_seq=covered_seq
            )
            if wal is not None and len(retained) >= RETAIN:
                # Truncate only through the *older* retained checkpoint:
                # the newest segment failing verification later must still
                # find its covering records on disk.  Until two
                # checkpoints exist there is no older one to lean on, so
                # the whole log stays.
                safe_seq = int(retained[0]["wal_seq"])
                wal.truncate_through(safe_seq)

            self._collect_garbage(retained)
        self.checkpoints_taken += 1
        logger.info(
            "checkpoint: %d objects through wal seq %d in %.3fs",
            len(base),
            covered_seq,
            time.perf_counter() - started,
        )
        return manifest

    def _collect_garbage(self, retained: List[Dict]) -> None:
        """Delete segments the manifest no longer references (best effort)."""
        keep = {c["segment"] for c in retained}
        try:
            names = os.listdir(self.segment_dir)
        except OSError:
            return
        for name in names:
            if name.endswith(".seg") and name not in keep:
                try:
                    os.unlink(os.path.join(self.segment_dir, name))
                except OSError:
                    pass

    # ------------------------------------------------------------------ #
    # Recovery
    # ------------------------------------------------------------------ #

    def recover(
        self, report: Optional[RecoveryReport] = None
    ) -> Tuple[Optional[SealedBase], int, List[WalRecord], RecoveryReport]:
        """Load the newest verifiable checkpoint plus the WAL tail.

        Returns ``(base, covered_seq, tail_records, report)``:

        * ``base`` — the sealed base rebuilt from the newest segment that
          passes full CRC verification, or ``None`` when no retained
          checkpoint is loadable (first boot, or every segment corrupt);
        * ``covered_seq`` — the WAL prefix that base covers (0 for None);
        * ``tail_records`` — WAL records with ``seq > covered_seq``, in
          order, ready to fold into a delta overlay.

        Corruption never raises: a bad manifest or segment is counted in
        the report, logged, and recovery falls back — first to the older
        retained checkpoint, then to full replay of whatever WAL exists.
        """
        report = report if report is not None else RecoveryReport()
        started = time.perf_counter()
        faults.fire("live.checkpoint.recover")
        report.state = "reading_manifest"
        candidates: List[Dict] = []
        try:
            candidates = list(
                read_manifest(self.manifest_path).get("checkpoints", ())
            )
        except FileNotFoundError:
            pass
        except SegmentError as err:
            report.segment_failures += 1
            report.failure_reasons.append(str(err))
            logger.warning("recovery: manifest unreadable: %s", err)

        # The high-water mark is valid even when its segment is not: oids
        # only grow, so every readable manifest entry contributes.
        self.recovered_next_oid = max(
            (int(c.get("next_oid", 0)) for c in candidates), default=0
        )

        base: Optional[SealedBase] = None
        covered_seq = 0
        report.state = "loading_segment"
        for entry in reversed(candidates):  # newest first
            seg_path = os.path.join(self.segment_dir, str(entry["segment"]))
            try:
                loaded = load_segment(seg_path)
            except (OSError, SegmentError, KeyError, ValueError) as err:
                report.segment_failures += 1
                report.failure_reasons.append(str(err))
                logger.warning(
                    "recovery: segment %s unusable, falling back: %s",
                    entry.get("segment"),
                    err,
                )
                continue
            base = loaded
            covered_seq = int(entry["wal_seq"])
            report.source = "segment"
            report.segment = str(entry["segment"])
            report.covered_seq = covered_seq
            break

        report.state = "replaying_wal"
        records, _bytes, torn = read_wal(self.wal_path)
        if torn is not None:
            logger.warning("recovery: WAL tail torn (%s); clean prefix kept", torn)
        tail = [r for r in records if r.seq > covered_seq]
        report.wal_records_replayed = len(tail)
        report.seconds = time.perf_counter() - started
        report.state = "complete"
        return base, covered_seq, tail, report
