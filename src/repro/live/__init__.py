"""Live updates: a mutable, versioned object store for mCK serving.

The paper's indexes (and both baselines' — Zhang et al.'s bR*-tree,
Long et al.'s Dia-CoSKQ) are built once over a static database.  This
package layers *mutability* on top of that build-once substrate without
ever blocking readers:

* :mod:`repro.live.wal` — an append-only write-ahead log (JSON lines
  with CRC32, replayed on open, fsync batching) making mutations durable;
* :mod:`repro.live.delta` — a small immutable delta overlay (adds +
  tombstones + its own inverted keyword map) merged over the last sealed
  base, plus the merged dataset/index views readers consume;
* :mod:`repro.live.snapshots` — epoch-based versioning: immutable
  ``(base, delta)`` snapshots swapped atomically copy-on-write; readers
  pin the epoch they started on, retired epochs drain by reader count;
* :mod:`repro.live.compaction` — a background compactor that reseals the
  delta into a fresh base off-thread and publishes a new epoch;
* :mod:`repro.live.checkpoint` — crash-safe checkpoints: sealed bases
  persisted as CRC-checksummed segments with an atomic manifest, so a
  restart is a segment load plus short WAL tail replay;
* :mod:`repro.live.engine` — :class:`LiveMCKEngine`, mirroring
  :meth:`repro.core.engine.MCKEngine.query` over the mutable store;
* :mod:`repro.live.sharded` — shard-routed mutations over the
  distributed grid partitioning.
"""

from .base import SealedBase
from .checkpoint import CheckpointManager, RecoveryReport, read_manifest
from .compaction import Compactor
from .delta import DeltaOverlay, LiveIndex, LiveView
from .engine import LiveMCKEngine
from .sharded import ShardedLiveStore
from .snapshots import EpochManager, Snapshot
from .wal import WalRecord, WriteAheadLog, read_wal

__all__ = [
    "CheckpointManager",
    "Compactor",
    "DeltaOverlay",
    "EpochManager",
    "LiveIndex",
    "LiveMCKEngine",
    "LiveView",
    "RecoveryReport",
    "SealedBase",
    "ShardedLiveStore",
    "Snapshot",
    "WalRecord",
    "WriteAheadLog",
    "read_manifest",
    "read_wal",
]
