"""Background compaction: fold a grown delta back into a sealed base.

The delta overlay keeps every mutation since the last seal; reads pay a
linear scan over it, so an unbounded delta slowly erodes query latency.
The :class:`Compactor` watches the delta's absolute size and its ratio
to the base and, past either threshold, rebuilds a fresh
:class:`~repro.live.base.SealedBase` (vocabulary, inverted index, and —
lazily — the bR*-tree) from a *snapshot* of the merged view:

1. take the current snapshot (no locks held while sealing — writers keep
   publishing new epochs during the rebuild);
2. seal ``snapshot.view().records()`` into a new base off-thread;
3. under the engine's write lock, :meth:`~repro.live.delta.DeltaOverlay.
   rebase` whatever delta accumulated *meanwhile* onto the new base and
   publish — readers atomically switch to the compacted version.

Failures (including the ``serving.live.compaction`` fault-injection
site) abort the attempt and leave the store serving the uncompacted —
but perfectly valid — snapshot; the next mutation re-arms the trigger.
"""

from __future__ import annotations

import logging
import threading
from typing import TYPE_CHECKING, Optional

from ..observability.tracer import span
from ..testing import faults
from .base import SealedBase
from .snapshots import Snapshot

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .engine import LiveMCKEngine

__all__ = ["Compactor"]

logger = logging.getLogger("repro.live.compaction")


class Compactor:
    """Size/ratio-triggered delta folding for one live engine."""

    def __init__(
        self,
        engine: "LiveMCKEngine",
        threshold: int = 512,
        ratio: float = 0.25,
        enabled: bool = True,
        min_delta: int = 8,
    ):
        self._engine = engine
        self.threshold = max(1, int(threshold))
        self.ratio = float(ratio)
        self.enabled = enabled
        #: Floor below which ratio-triggering is ignored (a 2-object base
        #: with 1 add would otherwise compact on every mutation).
        self.min_delta = max(1, int(min_delta))
        self.compactions = 0
        self.failures = 0
        self._compact_lock = threading.Lock()
        self._wakeup = threading.Event()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------ #
    # Triggering
    # ------------------------------------------------------------------ #

    def should_compact(self, snapshot: Snapshot) -> bool:
        delta_size = snapshot.delta.size
        if delta_size == 0:
            return False
        if delta_size >= self.threshold:
            return True
        if self.ratio > 0 and delta_size >= self.min_delta:
            return delta_size >= self.ratio * max(1, len(snapshot.base))
        return False

    def notify(self) -> None:
        """Called by the engine after each mutation batch."""
        if not self.enabled:
            return
        if self._thread is not None:
            self._wakeup.set()
        elif self.should_compact(self._engine.snapshot()):
            self.compact_now()

    # ------------------------------------------------------------------ #
    # Compaction proper
    # ------------------------------------------------------------------ #

    def compact_now(self, force: bool = False) -> bool:
        """Run one compaction if warranted; True when a new base published.

        Thread-safe; concurrent callers serialise on an internal lock, so
        at most one rebuild is in flight per engine.
        """
        with self._compact_lock:
            snapshot = self._engine.snapshot()
            if snapshot.delta.is_empty():
                return False
            if not force and not self.should_compact(snapshot):
                return False
            metrics = self._engine.metrics
            try:
                faults.fire(
                    "serving.live.compaction",
                    epoch=snapshot.epoch,
                    delta_size=snapshot.delta.size,
                )
                with span(
                    "live.compact",
                    epoch=snapshot.epoch,
                    delta_size=snapshot.delta.size,
                    base_size=len(snapshot.base),
                ):
                    new_base = SealedBase.build(
                        snapshot.view().records(), name=snapshot.base.name
                    )
                    # Swap under the write lock: mutations that landed
                    # while we sealed survive as the rebased residual.
                    with self._engine._write_lock:
                        current = self._engine._epochs.current()
                        residual = current.delta.rebase(new_base)
                        self._engine._epochs.publish(new_base, residual)
                        self._engine._publish_metrics()
            except Exception as err:  # noqa: BLE001 - serve on, log, count
                self.failures += 1
                if metrics is not None:
                    metrics.compactions_counter.inc(
                        outcome="failed", shard=self._engine.shard_label
                    )
                logger.warning("compaction failed (epoch %d): %s",
                               snapshot.epoch, err)
                return False
            self.compactions += 1
            if metrics is not None:
                metrics.compactions_counter.inc(
                    outcome="ok", shard=self._engine.shard_label
                )
            # Outside the try/except: sealing already succeeded and the
            # compacted epoch is published, so a checkpoint that cannot be
            # persisted is a durability hiccup (counted by the engine),
            # not a failed compaction.  ``new_base`` reflects the WAL
            # exactly through the sealed snapshot's watermark.
            self._engine._checkpoint_after_compaction(snapshot, new_base)
            return True

    # ------------------------------------------------------------------ #
    # Background thread
    # ------------------------------------------------------------------ #

    def start(self) -> None:
        """Run the compactor on its own thread, woken by mutations."""
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="mck-compactor", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        self._wakeup.set()
        thread.join(timeout)
        self._thread = None

    def _run(self) -> None:
        while not self._stop.is_set():
            self._wakeup.wait()
            self._wakeup.clear()
            if self._stop.is_set():
                return
            if self.enabled and self.should_compact(self._engine.snapshot()):
                self.compact_now()
