"""A mutable, versioned mCK engine: reads never block on writers.

:class:`LiveMCKEngine` mirrors :class:`~repro.core.engine.MCKEngine`'s
``query()`` contract but serves it from an epoch-pinned snapshot of a
``(sealed base, delta overlay)`` pair:

* **writes** (:meth:`insert` / :meth:`delete` / :meth:`apply_batch`) go
  through an optional write-ahead log, build a new immutable delta by
  copy-on-write and publish a new epoch — a pointer swap, never an
  in-place index mutation;
* **reads** pin the epoch they start on, so a query in flight keeps a
  consistent view while any number of mutations and compactions land;
* a :class:`~repro.live.compaction.Compactor` folds a grown delta back
  into a fresh sealed base off the write path.

Durability model: with ``wal_path=`` the sealed base handed to the
constructor plus a full WAL replay reproduces the exact live object set.
With ``data_dir=`` the engine additionally *checkpoints*: a compaction
that seals a new base also persists it as a CRC-checksummed segment with
an atomic manifest (see :mod:`repro.live.checkpoint`), and truncates the
covered WAL prefix — so a restart is segment load + short tail replay
instead of full replay + index rebuild.  A corrupt or torn segment
degrades recovery (older checkpoint, then full replay of whatever WAL
exists) rather than refusing to start.
"""

from __future__ import annotations

import logging
import threading
import time
from collections import OrderedDict
from typing import (
    Callable,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..core.common import Deadline, Instrumentation, instrumentation_span
from ..core.engine import canonical_algorithm, dispatch_algorithm
from ..core.objects import Dataset, GeoObject
from ..core.query import MCKQuery, QueryContext, compile_query
from ..core.result import Group
from ..core.skeca import DEFAULT_EPSILON
from ..exceptions import AlgorithmTimeout, DatasetError
from ..kernels import kernel_mode
from ..observability import tracer as _tracing
from ..observability.explain import build_explain, collect_trace_spans
from ..observability.tracer import span
from .base import SealedBase
from .checkpoint import CheckpointManager, RecoveryReport
from .compaction import Compactor
from .delta import DeltaOverlay, LiveView
from .snapshots import EpochManager, Snapshot
from .wal import WalRecord, WriteAheadLog

__all__ = ["LiveMCKEngine"]

logger = logging.getLogger("repro.live.engine")

#: ``listener(op, oid, keywords)`` — fired after each mutation publishes.
MutationListener = Callable[[str, int, Tuple[str, ...]], None]


class LiveMCKEngine:
    """Versioned mutable store answering mCK queries without read locks.

    Example
    -------
    >>> engine = LiveMCKEngine.from_records(
    ...     [(0.0, 0.0, ["hotel"]), (1.0, 1.0, ["shop"])]
    ... )
    >>> oid = engine.insert(0.5, 0.5, ["cafe"])
    >>> group = engine.query(["hotel", "cafe"], algorithm="EXACT")
    >>> sorted(group.object_ids) == sorted([0, oid])
    True
    """

    def __init__(
        self,
        base: SealedBase,
        wal_path: Optional[str] = None,
        wal_sync_every: int = 64,
        data_dir: Optional[str] = None,
        compact_threshold: int = 512,
        compact_ratio: float = 0.25,
        auto_compact: bool = True,
        background_compaction: bool = False,
        metrics=None,
        context_cache_size: int = 16,
        oid_start: int = 0,
        shard_label: str = "0",
        wal_start_seq: int = 0,
    ):
        if wal_path is not None and data_dir is not None:
            raise DatasetError(
                "pass wal_path (bare WAL) or data_dir (checkpointed), not both"
            )
        self.metrics = metrics
        #: ``shard=`` label under which this engine publishes its metric
        #: families; a sharded deployment gives each member its own so
        #: hot shards are tellable apart on one registry.
        self.shard_label = str(shard_label)
        self._write_lock = threading.RLock()
        self._listeners: List[MutationListener] = []
        self._contexts: "OrderedDict[Tuple[int, Tuple[str, ...]], QueryContext]" = (
            OrderedDict()
        )
        self._context_lock = threading.Lock()
        self._context_cache_size = max(0, context_cache_size)
        self._closed = False

        self.checkpointer: Optional[CheckpointManager] = None
        self.recovery_report: Optional[RecoveryReport] = None
        self._recovery_metrics_pushed = False

        delta = DeltaOverlay()
        covered_seq = 0
        tail: Sequence[WalRecord] = ()
        if data_dir is not None:
            self.checkpointer = CheckpointManager(data_dir)
            recovered_base, covered_seq, tail, report = (
                self.checkpointer.recover()
            )
            self.recovery_report = report
            if recovered_base is not None:
                # The checkpoint supersedes the caller's seed base: it IS
                # that base (or a descendant) as of the covered WAL seq.
                base = recovered_base
            wal_path = self.checkpointer.wal_path

        self.name = base.name
        # ``oid_start`` lets a sharded deployment give each shard its own
        # disjoint oid range; new oids never dip below it.
        next_oid = max(base.max_oid() + 1, int(oid_start))
        if self.checkpointer is not None:
            # A compacted base forgets deleted oids; the manifest's
            # high-water mark keeps the allocator from re-issuing them.
            next_oid = max(next_oid, self.checkpointer.recovered_next_oid)

        self.wal: Optional[WriteAheadLog] = None
        if wal_path is not None:
            # ``wal_start_seq`` matters only in bare-WAL mode: a log file
            # opened mid-stream (a post-failover epoch file) must continue
            # the shipped sequence, not restart at 1.
            self.wal = WriteAheadLog(
                wal_path,
                sync_every=wal_sync_every,
                start_seq=max(covered_seq, int(wal_start_seq)),
            )
            replayable = tail if self.checkpointer is not None else (
                self.wal.recovered
            )
            if replayable:
                report = self.recovery_report
                if report is not None:
                    report.state = "replaying_wal"
                with span("live.replay", records=len(replayable)):
                    delta, next_oid = self._fold_tail(
                        base, replayable, next_oid
                    )
        if self.recovery_report is not None:
            self.recovery_report.state = "complete"

        self._next_oid = next_oid
        self._epochs = EpochManager(
            Snapshot(
                0, base, delta, wal_seq=self.wal.last_seq if self.wal else 0
            )
        )
        self.compactor = Compactor(
            self,
            threshold=compact_threshold,
            ratio=compact_ratio,
            enabled=auto_compact,
        )
        if background_compaction:
            self.compactor.start()
        if (
            self.checkpointer is not None
            and self.recovery_report is not None
            and self.recovery_report.source == "initial"
            and len(base) > 0
        ):
            # First boot over a non-empty seed base: the seed exists only
            # in memory until a compaction checkpoints it.  Persist it now
            # (covering seq 0 — the WAL tail replays on top) so "initial
            # records + data_dir" is durable from the first open.
            self._persist_checkpoint(base, 0)
        self._publish_metrics()

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def from_records(
        cls,
        records: Iterable[Tuple[float, float, Iterable[str]]],
        name: str = "live",
        **kwargs,
    ) -> "LiveMCKEngine":
        """Open over ``(x, y, keywords)`` records with dense initial oids."""
        sealed = SealedBase.build(
            ((i, x, y, kw) for i, (x, y, kw) in enumerate(records)), name=name
        )
        return cls(sealed, **kwargs)

    @classmethod
    def from_dataset(cls, dataset: Dataset, **kwargs) -> "LiveMCKEngine":
        """Open over an existing static :class:`Dataset` (oids preserved)."""
        dataset.finalize()
        sealed = SealedBase.build(
            ((o.oid, o.x, o.y, o.keywords) for o in dataset), name=dataset.name
        )
        return cls(sealed, **kwargs)

    @classmethod
    def open(
        cls, data_dir: str, name: str = "live", **kwargs
    ) -> "LiveMCKEngine":
        """Open (or create) a checkpointed store rooted at ``data_dir``.

        The canonical durable entry point: an empty seed base, with the
        real state recovered from the newest verifiable checkpoint segment
        plus the WAL tail.  A fresh directory yields an empty store.
        """
        sealed = SealedBase.build((), name=name)
        return cls(sealed, data_dir=data_dir, **kwargs)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def epoch(self) -> int:
        return self._epochs.epoch

    @property
    def delta_size(self) -> int:
        return self._epochs.current().delta.size

    @property
    def dataset(self) -> LiveView:
        """The current snapshot's merged dataset-shaped view.

        Gives the serving layer (cost estimation, feasibility probes) the
        same surface a static engine's ``.dataset`` offers.  For a
        *consistent* read spanning several calls, pin a snapshot instead.
        """
        return self._epochs.current().view()

    def __len__(self) -> int:
        return len(self.dataset)

    def pin(self):
        """Pin the current epoch; context manager yielding the snapshot."""
        return self._epochs.pin()

    def snapshot(self) -> Snapshot:
        return self._epochs.current()

    def add_mutation_listener(self, listener: MutationListener) -> None:
        """Register ``listener(op, oid, keywords)`` fired post-publish.

        Listeners run after the new epoch is visible, so a reader racing a
        notification can at worst see *fresher* data than the notification
        describes — never staler (the invalidation layer relies on this).
        """
        self._listeners.append(listener)

    def remove_mutation_listener(self, listener: MutationListener) -> None:
        """Detach a previously registered listener (idempotent).

        One shared engine can outlive many :class:`~repro.serving.service
        .QueryService` lifecycles; a service that never detaches leaks its
        listener — and through it the service's closed cache — for the
        engine's whole lifetime.  Unknown listeners are ignored so a
        double-close stays a no-op.
        """
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #

    def insert(self, x: float, y: float, keywords: Iterable[str]) -> int:
        """Insert one object; returns its stable oid."""
        oids = self.apply_batch(inserts=[(x, y, keywords)])
        return oids[0]

    def delete(self, oid: int) -> None:
        """Delete a live object (raises ``DatasetError`` if not live)."""
        self.apply_batch(deletes=[oid])

    def apply_batch(
        self,
        inserts: Sequence[Tuple[float, float, Iterable[str]]] = (),
        deletes: Sequence[int] = (),
    ) -> List[int]:
        """Apply one atomic mutation batch; returns new oids in order.

        The whole batch lands in a single published epoch: readers see
        either none of it or all of it.
        """
        if not inserts and not deletes:
            return []
        self._check_open()
        with self._write_lock, span(
            "live.apply", inserts=len(inserts), deletes=len(deletes)
        ):
            current = self._epochs.current()
            view = current.view()

            new_objects: List[GeoObject] = []
            for x, y, keywords in inserts:
                kw = frozenset(str(k) for k in keywords)
                if not kw:
                    raise DatasetError("objects must carry at least one keyword")
                oid = self._next_oid
                self._next_oid += 1
                new_objects.append(GeoObject(oid, float(x), float(y), kw))

            victims: List[Tuple[int, Tuple[str, ...]]] = []
            for oid in deletes:
                oid = int(oid)
                victim = view.get(oid)
                if victim is None:
                    raise DatasetError(f"cannot delete oid {oid}: not live")
                victims.append((oid, tuple(sorted(victim.keywords))))

            if self.wal is not None:
                for obj in new_objects:
                    self.wal.append_insert(
                        obj.oid, obj.x, obj.y, sorted(obj.keywords)
                    )
                for oid, _ in victims:
                    self.wal.append_delete(oid)

            delta = current.delta.with_batch(inserts=new_objects, deletes=victims)
            self._epochs.publish(
                current.base,
                delta,
                wal_seq=self.wal.last_seq if self.wal is not None else None,
            )
            self._publish_metrics(
                wal_inserts=len(new_objects) if self.wal is not None else 0,
                wal_deletes=len(victims) if self.wal is not None else 0,
            )

        # Outside the write lock: listeners (cache invalidation) and the
        # compactor must never extend the writer critical section.
        for obj in new_objects:
            self._notify("insert", obj.oid, tuple(sorted(obj.keywords)))
        for oid, kw in victims:
            self._notify("delete", oid, kw)
        self.compactor.notify()
        return [obj.oid for obj in new_objects]

    def apply_replicated(
        self, records: Sequence[WalRecord], log: bool = False
    ) -> int:
        """Apply shipped WAL records *at their recorded oids*; returns count.

        The replication-side counterpart of :meth:`apply_batch`: a read
        replica (or a shard-split destination) replays another engine's
        mutation stream, so oids must be preserved rather than allocated.
        Records are folded into as few published epochs as possible — a
        flush boundary is forced only when a record touches an oid already
        touched earlier in the same call (insert-after-delete of the same
        oid cannot share one overlay batch).

        With ``log=True`` the records are re-logged into *this* engine's
        WAL under fresh local sequence numbers (a split destination owns
        its own durable stream); replicas pass ``log=False`` and track the
        source stream position themselves.  A record contradicting the
        live view (insert of a live oid, delete of a dead one) raises
        :class:`~repro.exceptions.DatasetError` — the caller's stream
        position is corrupt and it should re-bootstrap, not limp on.
        """
        records = list(records)
        if not records:
            return 0
        self._check_open()
        notifications: List[Tuple[str, int, Tuple[str, ...]]] = []
        with self._write_lock, span(
            "live.apply_replicated", records=len(records), log=log
        ):
            pending: List[WalRecord] = []
            touched: set = set()

            def _flush_pending() -> None:
                if not pending:
                    return
                current = self._epochs.current()
                view = current.view()
                new_objects: List[GeoObject] = []
                victims: List[Tuple[int, Tuple[str, ...]]] = []
                for record in pending:
                    if record.op == "insert":
                        if view.get(record.oid) is not None:
                            raise DatasetError(
                                f"replicated insert of oid {record.oid} "
                                "collides with a live object"
                            )
                        obj = GeoObject(
                            record.oid,
                            float(record.x),
                            float(record.y),
                            frozenset(record.keywords),
                        )
                        new_objects.append(obj)
                        self._next_oid = max(self._next_oid, record.oid + 1)
                    else:
                        victim = view.get(record.oid)
                        if victim is None:
                            raise DatasetError(
                                f"replicated delete of oid {record.oid}: "
                                "not live"
                            )
                        victims.append(
                            (record.oid, tuple(sorted(victim.keywords)))
                        )
                if log and self.wal is not None:
                    for obj in new_objects:
                        self.wal.append_insert(
                            obj.oid, obj.x, obj.y, sorted(obj.keywords)
                        )
                    for oid, _ in victims:
                        self.wal.append_delete(oid)
                delta = current.delta.with_batch(
                    inserts=new_objects, deletes=victims
                )
                if log and self.wal is not None:
                    watermark = self.wal.last_seq
                else:
                    # Track the *source* stream: the snapshot watermark is
                    # how far this replica has applied, which failover uses
                    # as the branch point.
                    watermark = pending[-1].seq
                self._epochs.publish(current.base, delta, wal_seq=watermark)
                self._publish_metrics(
                    wal_inserts=(
                        len(new_objects) if log and self.wal is not None else 0
                    ),
                    wal_deletes=(
                        len(victims) if log and self.wal is not None else 0
                    ),
                )
                for obj in new_objects:
                    notifications.append(
                        ("insert", obj.oid, tuple(sorted(obj.keywords)))
                    )
                notifications.extend(
                    ("delete", oid, kw) for oid, kw in victims
                )
                pending.clear()
                touched.clear()

            for record in records:
                if record.op not in ("insert", "delete"):
                    raise DatasetError(
                        f"replicated record has unknown op {record.op!r}"
                    )
                if record.oid in touched:
                    _flush_pending()
                pending.append(record)
                touched.add(record.oid)
            _flush_pending()

        for op, oid, kw in notifications:
            self._notify(op, oid, kw)
        self.compactor.notify()
        return len(records)

    def compact(self) -> bool:
        """Force a synchronous compaction; True if one ran."""
        return self.compactor.compact_now(force=True)

    # ------------------------------------------------------------------ #
    # Checkpointing (data_dir mode only)
    # ------------------------------------------------------------------ #

    def checkpoint(self) -> bool:
        """Force a durable checkpoint of the current state; True if taken.

        With a pending delta the delta is compacted first (the compaction
        hook persists the freshly sealed base); with an empty delta the
        current base is persisted directly unless the newest on-disk
        checkpoint already covers this snapshot's WAL watermark.
        """
        if self.checkpointer is None:
            return False
        self._check_open()
        if self.delta_size:
            before = self.checkpointer.checkpoints_taken
            self.compactor.compact_now(force=True)
            # The compaction may succeed while its checkpoint fails
            # (counted, non-fatal); report what actually got durable.
            return self.checkpointer.checkpoints_taken > before
        snapshot = self.snapshot()
        retained = self.checkpointer._retained()
        if retained and int(retained[-1]["wal_seq"]) >= snapshot.wal_seq:
            return False  # nothing new since the last checkpoint
        return self._persist_checkpoint(snapshot.base, snapshot.wal_seq)

    def _checkpoint_after_compaction(
        self, sealed: Snapshot, new_base: SealedBase
    ) -> None:
        """Persist the base a compaction just sealed (data_dir mode).

        ``sealed`` is the snapshot the compaction folded: the new base
        reflects the WAL exactly through ``sealed.wal_seq`` (residual
        delta mutations carry higher seqs and stay in the log tail).
        Called by the compactor *outside* its failure accounting — a
        checkpoint that cannot be written must not look like a failed
        compaction.
        """
        if self.checkpointer is None:
            return
        self._persist_checkpoint(new_base, sealed.wal_seq)

    def _fold_tail(
        self, base: SealedBase, records: Sequence[WalRecord], next_oid: int
    ) -> Tuple[DeltaOverlay, int]:
        """Fold recovered WAL records over ``base`` at startup.

        Strict replay first — a collision means the log and the base
        disagree, which a bare-WAL engine treats as the configuration
        error it is.  A *checkpointed* engine must start anyway (the
        mismatch is typically a segment/WAL pairing damaged by the very
        crash we are recovering from), so it falls back to lenient replay
        that skips contradictory records, counting and reporting them.
        """
        try:
            return _replay(base, records, next_oid)
        except DatasetError as err:
            if self.checkpointer is None:
                raise
            report = self.recovery_report
            if report is not None:
                report.failure_reasons.append(f"strict replay failed: {err}")
            logger.warning(
                "recovery: strict WAL replay failed (%s); "
                "replaying leniently",
                err,
            )
            return _replay_lenient(base, records, next_oid)

    def _persist_checkpoint(self, base: SealedBase, covered_seq: int) -> bool:
        """Run the checkpoint protocol for ``base``; count, never raise.

        The segment + manifest write runs without the write lock (it can
        take a while and only reads the immutable base); the WAL rotation
        takes the write lock so it cannot race an appending mutation.
        :class:`~repro.testing.faults.SimulatedCrash` is deliberately NOT
        caught — a simulated kill must unwind like a real one.
        """
        if self.checkpointer is None:
            return False
        try:
            if self.wal is not None:
                self.wal.flush()
            manifest = self.checkpointer.checkpoint(
                base, covered_seq, wal=None, next_oid=self._next_oid
            )
            kept = manifest["checkpoints"]
            if self.wal is not None and len(kept) >= 2:
                # Truncate only through the *older* retained checkpoint —
                # the newest segment's covering records must survive as
                # its corruption fallback (see repro.live.checkpoint).
                safe_seq = int(kept[0]["wal_seq"])
                with self._write_lock:
                    self.wal.truncate_through(safe_seq)
        except Exception as err:  # noqa: BLE001 - serve on, log, count
            self.checkpointer.checkpoint_failures += 1
            if self.metrics is not None:
                self.metrics.checkpoints_counter.inc(outcome="failed")
            logger.warning(
                "checkpoint failed (covered_seq %d): %s", covered_seq, err
            )
            return False
        if self.metrics is not None:
            self.metrics.checkpoints_counter.inc(outcome="ok")
        return True

    # ------------------------------------------------------------------ #
    # Query (mirrors MCKEngine.query against a pinned snapshot)
    # ------------------------------------------------------------------ #

    def query(
        self,
        keywords: Sequence[str],
        algorithm: str = "SKECa+",
        epsilon: float = DEFAULT_EPSILON,
        timeout: Optional[float] = None,
        instrumentation: Optional[Instrumentation] = None,
        degrade_on_timeout: bool = False,
        explain: bool = False,
    ) -> Group:
        """Answer one mCK query on a pinned snapshot.

        Same contract as :meth:`repro.core.engine.MCKEngine.query`; the
        answering epoch and overlay size are recorded in
        ``group.stats["epoch"]`` / ``group.stats["delta_size"]``, and
        ``explain=True`` attaches ``group.explain_report`` labelled with
        the live engine kind.
        """
        canonical = canonical_algorithm(algorithm)
        runner = dispatch_algorithm(algorithm, epsilon)
        explain_tracer = None
        detach_tracer = False
        if explain:
            if instrumentation is None:
                instrumentation = Instrumentation()
            explain_tracer = instrumentation.tracer or _tracing.get_tracer()
            if explain_tracer is None:
                explain_tracer = _tracing.Tracer()
                instrumentation.tracer = explain_tracer
                detach_tracer = True
        try:
            with self._epochs.pin() as snapshot:
                with instrumentation_span(
                    instrumentation, "engine.query", algorithm=canonical
                ) as root_span:
                    compile_started = time.perf_counter()
                    with instrumentation_span(
                        instrumentation, "engine.context_compile"
                    ):
                        ctx = self._context(snapshot, keywords)
                    compile_seconds = time.perf_counter() - compile_started
                    deadline = Deadline(algorithm, timeout, instrumentation)
                    started = time.perf_counter()
                    try:
                        with instrumentation_span(
                            instrumentation,
                            "engine.algorithm",
                            algorithm=canonical,
                            kernel=kernel_mode(),
                            epoch=snapshot.epoch,
                        ):
                            group = runner(ctx, deadline)
                    except AlgorithmTimeout as err:
                        if not degrade_on_timeout or err.incumbent is None:
                            raise
                        group = err.incumbent
                        group.algorithm = canonical
                        group.quality = err.quality
                        group.stats["degraded"] = 1.0
                        if instrumentation is not None:
                            instrumentation.count("degraded")
                    finally:
                        elapsed = time.perf_counter() - started
                        if instrumentation is not None:
                            instrumentation.timings["context_seconds"] = (
                                compile_seconds
                            )
                            instrumentation.timings["algorithm_seconds"] = elapsed
                group.stats["epoch"] = float(snapshot.epoch)
                group.stats["delta_size"] = float(snapshot.delta.size)
        finally:
            if detach_tracer:
                instrumentation.tracer = None
        group.elapsed_seconds = elapsed
        if instrumentation is not None:
            instrumentation.merge_group_stats(group.stats)
        if explain:
            trace_id = getattr(root_span, "trace_id", None)
            spans = collect_trace_spans(explain_tracer, trace_id)
            timings = dict(instrumentation.timings)
            timings.setdefault("total_seconds", compile_seconds + elapsed)
            group.explain_report = build_explain(
                keywords=[str(k) for k in keywords],
                algorithm=canonical,
                epsilon=epsilon,
                timeout=timeout,
                spans=spans,
                counters=instrumentation.counters,
                timings=timings,
                engine_kind="live",
                status="degraded" if group.stats.get("degraded") else "ok",
                quality=group.quality or "",
                diameter=group.diameter,
                group_size=len(group.object_ids),
                object_ids=group.object_ids,
                trace_id=trace_id or "",
            )
        return group

    def _context(
        self, snapshot: Snapshot, keywords: Sequence[str]
    ) -> QueryContext:
        """Per-(epoch, keywords) compiled-context LRU.

        Keyed by epoch so a context never outlives its snapshot's
        consistency: after any mutation the key misses and the context is
        rebuilt against the new view.
        """
        query = keywords if isinstance(keywords, MCKQuery) else MCKQuery(keywords)
        key = (snapshot.epoch, query.keywords)
        with self._context_lock:
            ctx = self._contexts.get(key)
            if ctx is not None:
                self._contexts.move_to_end(key)
                return ctx
        ctx = compile_query(snapshot.view(), query)
        if self._context_cache_size:
            with self._context_lock:
                self._contexts[key] = ctx
                while len(self._contexts) > self._context_cache_size:
                    self._contexts.popitem(last=False)
        return ctx

    # ------------------------------------------------------------------ #
    # Lifecycle / internals
    # ------------------------------------------------------------------ #

    def flush(self) -> None:
        """Force the WAL's group-commit boundary (no-op without a WAL)."""
        if self.wal is not None:
            self.wal.flush()

    def attach_wal(
        self, path: str, sync_every: int = 64, start_seq: int = 0
    ) -> None:
        """Adopt a (typically fresh) WAL file as this engine's durable log.

        The promotion primitive: a read replica runs without a WAL of its
        own — it applies a shipped stream — until failover makes it the
        primary, at which point it must start logging into the new fencing
        epoch's file.  ``start_seq`` anchors the continued sequence (the
        branch point the promotion chose); any WAL already attached is
        closed first.
        """
        with self._write_lock:
            self._check_open()
            if self.wal is not None:
                self.wal.close()
            self.wal = WriteAheadLog(
                path, sync_every=sync_every, start_seq=start_seq
            )

    def abandon(self) -> None:
        """Crash-stop the engine: no flush, no final WAL fsync.

        The counterpart of :meth:`close` for failure injection — after
        this the engine refuses all work exactly as a killed process
        would, and whatever the WAL had not yet group-committed is left
        to the mercy of the page cache (see
        :meth:`repro.live.wal.WriteAheadLog.abandon`).
        """
        if self._closed:
            return
        self._closed = True
        self.compactor.stop()
        if self.wal is not None:
            self.wal.abandon()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.compactor.stop()
        if self.wal is not None:
            self.wal.close()

    def __enter__(self) -> "LiveMCKEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise DatasetError(f"live engine {self.name!r} is closed")

    def _notify(self, op: str, oid: int, keywords: Tuple[str, ...]) -> None:
        # Snapshot: a listener detaching itself (service close racing a
        # mutation) must not skip or double-fire its neighbours.
        for listener in list(self._listeners):
            listener(op, oid, keywords)

    def _publish_metrics(self, wal_inserts: int = 0, wal_deletes: int = 0) -> None:
        metrics = self.metrics
        if metrics is None:
            return
        current = self._epochs.current()
        shard = self.shard_label
        metrics.live_epoch_gauge.set(float(current.epoch), shard=shard)
        metrics.delta_size_gauge.set(float(current.delta.size), shard=shard)
        if wal_inserts:
            metrics.wal_records_counter.inc(
                wal_inserts, op="insert", shard=shard
            )
        if wal_deletes:
            metrics.wal_records_counter.inc(
                wal_deletes, op="delete", shard=shard
            )
        report = self.recovery_report
        if (
            report is not None
            and report.complete
            and not self._recovery_metrics_pushed
        ):
            # The engine is usually built before the serving layer wires
            # ``metrics`` onto it, so recovery numbers are published
            # lazily from the first metric push that sees both.
            self._recovery_metrics_pushed = True
            metrics.recovery_seconds_gauge.set(report.seconds)
            metrics.recovery_replayed_gauge.set(
                float(report.wal_records_replayed)
            )
            if report.segment_failures:
                metrics.segment_crc_failures_counter.inc(
                    report.segment_failures
                )


def _replay(
    base: SealedBase, records: Sequence[WalRecord], next_oid: int
) -> Tuple[DeltaOverlay, int]:
    """Fold recovered WAL records into one overlay over ``base``.

    Replays sequentially into plain dicts (a per-record copy-on-write
    rebuild would be quadratic), then builds the overlay in one pass.
    """
    adds = {}
    tombstones = set()
    for record in records:
        if record.op == "insert":
            if record.oid in base or record.oid in adds or record.oid in tombstones:
                raise DatasetError(
                    f"WAL replay: insert of oid {record.oid} collides with a "
                    "live or previously mutated object"
                )
            adds[record.oid] = GeoObject(
                record.oid, record.x, record.y, frozenset(record.keywords)
            )
            next_oid = max(next_oid, record.oid + 1)
        else:
            was_add = adds.pop(record.oid, None)
            if was_add is None and record.oid not in base:
                raise DatasetError(
                    f"WAL replay: delete of oid {record.oid} which was never live"
                )
            if was_add is None:
                # Tombstone only needed for base victims; a deleted WAL add
                # simply vanishes (it was never sealed anywhere).
                tombstones.add(record.oid)
            next_oid = max(next_oid, record.oid + 1)
    return DeltaOverlay.from_state(adds, tombstones, base), next_oid


def _replay_lenient(
    base: SealedBase, records: Sequence[WalRecord], next_oid: int
) -> Tuple[DeltaOverlay, int]:
    """Degraded-mode replay: skip contradictory records instead of raising.

    Used only when recovering a checkpointed store whose segment and WAL
    disagree (see :meth:`LiveMCKEngine._fold_tail`).  An insert colliding
    with a live oid and a delete of a never-live oid are both dropped —
    the segment, which passed full CRC verification, wins.
    """
    adds = {}
    tombstones = set()
    skipped = 0
    for record in records:
        next_oid = max(next_oid, record.oid + 1)
        if record.op == "insert":
            if record.oid in base or record.oid in adds or record.oid in tombstones:
                skipped += 1
                continue
            adds[record.oid] = GeoObject(
                record.oid, record.x, record.y, frozenset(record.keywords)
            )
        else:
            was_add = adds.pop(record.oid, None)
            if was_add is not None:
                continue
            if record.oid not in base:
                skipped += 1
                continue
            tombstones.add(record.oid)
    if skipped:
        logger.warning(
            "recovery: lenient replay skipped %d contradictory record(s)",
            skipped,
        )
    return DeltaOverlay.from_state(adds, tombstones, base), next_oid
