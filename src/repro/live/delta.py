"""Delta overlay: recent mutations layered over a sealed base.

A :class:`DeltaOverlay` is an *immutable* value: ``with_insert`` /
``with_delete`` / ``with_batch`` return a new overlay sharing nothing
mutable with the old one (copy-on-write of small dicts).  That is what
makes epoch snapshots trivially safe — a reader holding ``(base, delta)``
can never observe a torn mutation, because published deltas are never
mutated in place.

Three merged read views are built on top:

* :class:`OverlayVocabulary` / :class:`OverlayInverted` — keyword lookups
  over base + delta with tombstones subtracted, duck-typing the
  :class:`~repro.index.bitmap.KeywordVocabulary` /
  :class:`~repro.index.inverted.InvertedIndex` surface the query compiler
  consumes;
* :class:`LiveView` — a dataset-shaped view the unmodified mCK algorithms
  run against (the per-query virtual bR*-tree is built from its merged
  postings, so GKG/SKEC/SKECa/SKECa+/EXACT all work on live data);
* :class:`LiveIndex` — merged index primitives (``range_circle`` /
  ``nearest_with_mask`` / ``keyword_holders``): the sealed base's
  bR*-tree answers filtered by tombstones, delta adds scanned linearly
  (the delta is small by construction — the compactor reseals it before
  it grows past its threshold).

Bookkeeping invariants (relied on by :meth:`DeltaOverlay.rebase`):
``adds`` never contains a tombstoned oid; ``tombstones`` records *every*
delete since the base was sealed, including deletes of objects that were
themselves delta adds — without that trace, a compaction racing a delete
could resurrect the deleted object.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..core.objects import GeoObject
from ..exceptions import DatasetError
from ..index.bitmap import mask_of
from ..index.columns import ColumnarStore
from ..index.rstar import LeafEntry
from .base import SealedBase

__all__ = ["DeltaOverlay", "OverlayVocabulary", "OverlayInverted", "LiveView", "LiveIndex"]

_EMPTY: FrozenSet[int] = frozenset()


class DeltaOverlay:
    """Immutable set of adds + tombstones with its own keyword map."""

    __slots__ = ("adds", "tombstones", "keyword_map", "freq_delta")

    def __init__(
        self,
        adds: Optional[Dict[int, GeoObject]] = None,
        tombstones: FrozenSet[int] = _EMPTY,
        keyword_map: Optional[Dict[str, FrozenSet[int]]] = None,
        freq_delta: Optional[Dict[str, int]] = None,
    ):
        self.adds: Dict[int, GeoObject] = adds or {}
        self.tombstones: FrozenSet[int] = tombstones
        #: term -> oids of *live* delta adds containing it.
        self.keyword_map: Dict[str, FrozenSet[int]] = keyword_map or {}
        #: term -> net document-frequency change vs the base.
        self.freq_delta: Dict[str, int] = freq_delta or {}

    # ------------------------------------------------------------------ #
    # Copy-on-write mutation
    # ------------------------------------------------------------------ #

    @property
    def size(self) -> int:
        """Mutations carried: live adds plus tombstones."""
        return len(self.adds) + len(self.tombstones)

    def is_empty(self) -> bool:
        return not self.adds and not self.tombstones

    def with_insert(self, obj: GeoObject) -> "DeltaOverlay":
        return self.with_batch(inserts=(obj,))

    def with_delete(self, oid: int, keywords: Iterable[str]) -> "DeltaOverlay":
        return self.with_batch(deletes=((oid, tuple(keywords)),))

    def with_batch(
        self,
        inserts: Sequence[GeoObject] = (),
        deletes: Sequence[Tuple[int, Tuple[str, ...]]] = (),
    ) -> "DeltaOverlay":
        """One copy-on-write step applying a whole mutation batch.

        ``deletes`` carries each victim's keywords so the keyword map and
        frequency deltas stay exact without a base lookup here (the engine
        resolves them from the snapshot it mutated under).
        """
        adds = dict(self.adds)
        tombstones = set(self.tombstones)
        keyword_map = dict(self.keyword_map)
        freq_delta = dict(self.freq_delta)
        for obj in inserts:
            if obj.oid in adds or obj.oid in tombstones:
                raise DatasetError(f"oid {obj.oid} already mutated in this delta")
            adds[obj.oid] = obj
            for term in obj.keywords:
                keyword_map[term] = keyword_map.get(term, _EMPTY) | {obj.oid}
                freq_delta[term] = freq_delta.get(term, 0) + 1
        for oid, keywords in deletes:
            if oid in tombstones:
                raise DatasetError(f"oid {oid} already deleted in this delta")
            adds.pop(oid, None)
            tombstones.add(oid)
            for term in keywords:
                holders = keyword_map.get(term)
                if holders and oid in holders:
                    remaining = holders - {oid}
                    if remaining:
                        keyword_map[term] = remaining
                    else:
                        del keyword_map[term]
                freq_delta[term] = freq_delta.get(term, 0) - 1
        return DeltaOverlay(adds, frozenset(tombstones), keyword_map, freq_delta)

    @classmethod
    def from_state(
        cls,
        adds: Dict[int, GeoObject],
        tombstones: Iterable[int],
        base: SealedBase,
    ) -> "DeltaOverlay":
        """Build an overlay from replayed end state in one pass.

        Used by WAL replay, where rebuilding via per-record copy-on-write
        would be quadratic.  ``adds`` must already exclude every
        tombstoned oid; frequency deltas for tombstoned *base* objects
        are recovered by looking their keywords up in ``base``.
        """
        tomb = frozenset(int(t) for t in tombstones)
        keyword_map: Dict[str, FrozenSet[int]] = {}
        freq_delta: Dict[str, int] = {}
        for oid, obj in adds.items():
            if oid in tomb:
                raise DatasetError(f"oid {oid} both added and tombstoned")
            for term in obj.keywords:
                keyword_map[term] = keyword_map.get(term, _EMPTY) | {oid}
                freq_delta[term] = freq_delta.get(term, 0) + 1
        for oid in tomb:
            victim = base.get(oid)
            if victim is not None:
                for term in victim.keywords:
                    freq_delta[term] = freq_delta.get(term, 0) - 1
        return cls(dict(adds), tomb, keyword_map, freq_delta)

    # ------------------------------------------------------------------ #

    def holders_of(self, term: str) -> FrozenSet[int]:
        """Live delta adds containing ``term``."""
        return self.keyword_map.get(term, _EMPTY)

    def rebase(self, new_base: SealedBase) -> "DeltaOverlay":
        """The residual delta after ``new_base`` sealed an older snapshot.

        Everything already folded into ``new_base`` drops out; what
        remains is exactly the mutations applied after the compactor took
        its snapshot: adds whose oid is not sealed, and tombstones whose
        victim *is* sealed (tombstones of never-sealed adds cancel out).
        """
        residual = DeltaOverlay()
        inserts = [
            obj for oid, obj in sorted(self.adds.items()) if oid not in new_base
        ]
        deletes = [
            (oid, tuple(new_base[oid].keywords))
            for oid in sorted(self.tombstones)
            if oid in new_base
        ]
        return residual.with_batch(inserts=inserts, deletes=deletes)


class OverlayVocabulary:
    """Base vocabulary extended with the delta's unseen terms.

    Term ids of base terms are unchanged; delta-only terms get ids from
    ``len(base)`` upward (sorted for determinism).  Ids are epoch-internal
    — they are never exposed to clients and are re-interned at compaction.
    """

    __slots__ = ("_base", "_base_size", "_extra", "_extra_terms", "_freq_delta")

    def __init__(self, base_vocab, delta: DeltaOverlay):
        self._base = base_vocab
        self._base_size = len(base_vocab)
        extra = sorted(t for t in delta.keyword_map if t not in base_vocab)
        self._extra: Dict[str, int] = {
            t: self._base_size + i for i, t in enumerate(extra)
        }
        self._extra_terms: List[str] = extra
        self._freq_delta = delta.freq_delta

    def __len__(self) -> int:
        return self._base_size + len(self._extra)

    def __contains__(self, term: str) -> bool:
        return term in self._base or term in self._extra

    @property
    def base_size(self) -> int:
        return self._base_size

    def id_of(self, term: str) -> int:
        tid = self._extra.get(term)
        if tid is not None:
            return tid
        return self._base.id_of(term)

    def term_of(self, tid: int) -> str:
        if tid >= self._base_size:
            return self._extra_terms[tid - self._base_size]
        return self._base.term_of(tid)

    def frequency(self, term_or_id) -> int:
        term = (
            self.term_of(term_or_id)
            if isinstance(term_or_id, int)
            else term_or_id
        )
        base_freq = (
            self._base.frequency(term) if term in self._base else 0
        )
        return base_freq + self._freq_delta.get(term, 0)

    def least_frequent(self, terms: Sequence[str]) -> str:
        if not terms:
            raise DatasetError("cannot pick least frequent of no terms")
        return min(terms, key=self.frequency)


class OverlayInverted:
    """Merged posting lists: base minus tombstones, plus delta adds."""

    __slots__ = ("_base", "_vocab", "_delta")

    def __init__(self, base_inverted, vocab: OverlayVocabulary, delta: DeltaOverlay):
        self._base = base_inverted
        self._vocab = vocab
        self._delta = delta

    def posting(self, term_id: int) -> List[int]:
        term = self._vocab.term_of(term_id)
        if term_id < self._vocab.base_size:
            base_list = self._base.posting(term_id)
        else:
            base_list = ()
        tombstones = self._delta.tombstones
        merged = [oid for oid in base_list if oid not in tombstones]
        extra = self._delta.holders_of(term)
        if extra:
            merged.extend(extra)
            merged.sort()
        return merged

    def document_frequency(self, term_id: int) -> int:
        return len(self.posting(term_id))

    def relevant_objects(self, term_ids: Sequence[int]) -> List[int]:
        merged = set()
        for tid in term_ids:
            merged.update(self.posting(tid))
        return sorted(merged)

    def uncoverable_terms(self, term_ids: Sequence[int]) -> List[int]:
        return [tid for tid in term_ids if not self.posting(tid)]


class LiveView:
    """Dataset-shaped merged view of one ``(base, delta)`` snapshot.

    Duck-types the slice of :class:`~repro.core.objects.Dataset` the query
    compiler, the algorithms, and :meth:`~repro.core.result.Group.objects`
    consume — vocabulary, inverted file, ``locations[oid]`` /
    ``term_ids[oid]`` adapters, item access.  Object ids are the store's
    stable live oids (sparse after deletes), which is why the adapters are
    mapping-backed instead of packed arrays.
    """

    def __init__(self, base: SealedBase, delta: DeltaOverlay, name: str = "live"):
        self.base = base
        self.delta = delta
        self.name = name
        self.vocabulary = OverlayVocabulary(base.vocabulary, delta)
        self.inverted = OverlayInverted(base.inverted, self.vocabulary, delta)
        self._columns: Optional[ColumnarStore] = None

    def finalize(self) -> None:
        """No-op: a snapshot view is immutable by construction."""

    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self.base) - len(self.delta.tombstones & self.base.objects.keys()) + len(self.delta.adds)

    def __contains__(self, oid: int) -> bool:
        if oid in self.delta.adds:
            return True
        return oid in self.base and oid not in self.delta.tombstones

    def __getitem__(self, oid: int) -> GeoObject:
        obj = self.get(oid)
        if obj is None:
            raise KeyError(f"oid {oid} is not live in this snapshot")
        return obj

    def get(self, oid: int) -> Optional[GeoObject]:
        obj = self.delta.adds.get(oid)
        if obj is not None:
            return obj
        if oid in self.delta.tombstones:
            return None
        return self.base.get(oid)

    def __iter__(self) -> Iterator[GeoObject]:
        tombstones = self.delta.tombstones
        for oid, obj in self.base.objects.items():
            if oid not in tombstones:
                yield obj
        yield from self.delta.adds.values()

    def live_oids(self) -> List[int]:
        return sorted(obj.oid for obj in self)

    def records(self) -> Iterator[Tuple[int, float, float, FrozenSet[str]]]:
        """``(oid, x, y, keywords)`` for every live object (seal input)."""
        for obj in self:
            yield (obj.oid, obj.x, obj.y, obj.keywords)

    def location_of(self, oid: int) -> Tuple[float, float]:
        obj = self[oid]
        return (obj.x, obj.y)

    def term_ids_of(self, oid: int) -> Tuple[int, ...]:
        if oid in self.delta.adds:
            obj = self.delta.adds[oid]
            return tuple(sorted(self.vocabulary.id_of(t) for t in obj.keywords))
        return self.base.term_ids_of(oid)

    @property
    def term_ids(self) -> "_ViewTermIds":
        return _ViewTermIds(self)

    @property
    def locations(self) -> "_ViewLocations":
        return _ViewLocations(self)

    def global_mask_of(self, oid: int) -> int:
        """Whole-vocabulary (overlay id space) keyword mask of an object."""
        return mask_of(self.term_ids_of(oid))

    def index(self) -> "LiveIndex":
        return LiveIndex(self)

    @property
    def columns(self) -> ColumnarStore:
        """Merged struct-of-arrays view of this snapshot (lazy, cached).

        The sealed base's columns are reused wholesale: tombstoned rows are
        dropped with one boolean gather, delta adds (small by construction)
        are appended, and when an add's oid interleaves with the base range
        a stable argsort restores oid order.  Term ids are the snapshot's
        overlay id space, matching :meth:`term_ids_of`.
        """
        if self._columns is None:
            base_cols = self.base.columns
            tomb = self.delta.tombstones & self.base.objects.keys()
            if tomb:
                keep = ~np.isin(
                    base_cols.oids, np.fromiter(tomb, dtype=np.int64, count=len(tomb))
                )
                kept_idx = np.flatnonzero(keep)
                oids = base_cols.oids[kept_idx]
                xs = base_cols.xs[kept_idx]
                ys = base_cols.ys[kept_idx]
                starts = base_cols.term_indptr[kept_idx]
                counts = base_cols.term_indptr[kept_idx + 1] - starts
                offsets = np.concatenate(([0], np.cumsum(counts)))
                flat = np.arange(int(offsets[-1]), dtype=np.int64) + np.repeat(
                    starts - offsets[:-1], counts
                )
                terms = base_cols.term_ids[flat]
                indptr = offsets
            else:
                oids = base_cols.oids
                xs = base_cols.xs
                ys = base_cols.ys
                indptr = base_cols.term_indptr
                terms = base_cols.term_ids
            if self.delta.adds:
                add_cols = ColumnarStore.from_rows(
                    (oid, obj.x, obj.y, self.term_ids_of(oid))
                    for oid, obj in sorted(self.delta.adds.items())
                )
                merged_oids = np.concatenate([oids, add_cols.oids])
                xs = np.concatenate([xs, add_cols.xs])
                ys = np.concatenate([ys, add_cols.ys])
                lengths = np.concatenate(
                    [np.diff(indptr), np.diff(add_cols.term_indptr)]
                )
                starts = np.concatenate(
                    [indptr[:-1], add_cols.term_indptr[:-1] + indptr[-1]]
                )
                terms = np.concatenate([terms, add_cols.term_ids])
                if len(oids) and len(add_cols.oids) and add_cols.oids[0] < oids[-1]:
                    order = np.argsort(merged_oids, kind="stable")
                    merged_oids = merged_oids[order]
                    xs = xs[order]
                    ys = ys[order]
                    lengths = lengths[order]
                    starts = starts[order]
                indptr = np.concatenate(([0], np.cumsum(lengths)))
                flat = np.arange(int(indptr[-1]), dtype=np.int64) + np.repeat(
                    starts - indptr[:-1], lengths
                )
                terms = terms[flat]
                oids = merged_oids
            self._columns = ColumnarStore(oids, xs, ys, indptr, terms)
        return self._columns


class _ViewTermIds:
    __slots__ = ("_view",)

    def __init__(self, view: LiveView):
        self._view = view

    def __getitem__(self, oid: int) -> Tuple[int, ...]:
        return self._view.term_ids_of(oid)


class _ViewLocations:
    __slots__ = ("_view",)

    def __init__(self, view: LiveView):
        self._view = view

    def __getitem__(self, oid: int) -> Tuple[float, float]:
        return self._view.location_of(oid)

    def __len__(self) -> int:
        return len(self._view)


class LiveIndex:
    """Merged spatial-keyword primitives over one snapshot.

    The sealed base's bR*-tree answers the bulk of every query; results
    are filtered against the tombstone set and the (small) delta adds are
    scanned linearly.  Masks use the snapshot's overlay term-id space.
    """

    def __init__(self, view: LiveView):
        self._view = view
        self._tree = view.base.brtree()
        self._tombstones = view.delta.tombstones
        self._adds = view.delta.adds

    def __len__(self) -> int:
        return len(self._view)

    def item_mask(self, oid: int) -> int:
        obj = self._view.get(oid)
        return self._view.global_mask_of(oid) if obj is not None else 0

    def range_circle(self, cx: float, cy: float, r: float) -> Iterator[LeafEntry]:
        """All live entries within the closed disc (base hits + delta adds)."""
        tombstones = self._tombstones
        for entry in self._tree.range_circle(cx, cy, r):
            if entry.item not in tombstones:
                yield entry
        r_sq = r * r * (1.0 + 1e-12) + 1e-18
        for obj in self._adds.values():
            dx = obj.x - cx
            dy = obj.y - cy
            if dx * dx + dy * dy <= r_sq:
                yield LeafEntry(obj.oid, obj.x, obj.y)

    def nearest_with_mask(
        self, x: float, y: float, required_mask: int
    ) -> Optional[LeafEntry]:
        """Nearest live entry whose keyword mask intersects ``required_mask``."""
        best: Optional[LeafEntry] = None
        best_dist = math.inf
        for obj in self._adds.values():
            if self._view.global_mask_of(obj.oid) & required_mask:
                d = math.hypot(obj.x - x, obj.y - y)
                if d < best_dist:
                    best, best_dist = LeafEntry(obj.oid, obj.x, obj.y), d
        tombstones = self._tombstones
        for entry, d in self._tree.nearest_iter_with_mask(x, y, required_mask):
            if d >= best_dist:
                break
            if entry.item not in tombstones:
                return entry
        return best

    def keyword_holders(self, term: str) -> List[int]:
        """Sorted live oids containing ``term`` (merged posting lookup)."""
        view = self._view
        if term not in view.vocabulary:
            return []
        return view.inverted.posting(view.vocabulary.id_of(term))
