"""The sealed, immutable base of a live store.

A :class:`SealedBase` plays the role :class:`~repro.core.objects.Dataset`
plays for the static engine, with one crucial difference: object ids are
*stable client-visible ids*, not dense row numbers.  A live store never
reuses an oid, so after deletes the id space has holes — postings, term
ids and locations are therefore keyed by oid (dict-backed adapters keep
the ``locations[oid]`` indexing contract the virtual-tree builder
expects).

A base is built once (at engine open or by the compactor folding a delta
in) and never mutated afterwards; all churn lives in the
:class:`~repro.live.delta.DeltaOverlay` layered on top.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..core.objects import GeoObject
from ..exceptions import DatasetError
from ..index.bitmap import KeywordVocabulary, mask_of
from ..index.brtree import BRStarTree
from ..index.columns import ColumnarStore
from ..index.inverted import InvertedIndex

__all__ = ["SealedBase"]


class SealedBase:
    """Immutable geo-textual store over stable (possibly sparse) oids."""

    def __init__(self, name: str = "live-base"):
        self.name = name
        self.objects: Dict[int, GeoObject] = {}
        self.vocabulary = KeywordVocabulary()
        self.inverted = InvertedIndex()
        self._term_ids: Dict[int, Tuple[int, ...]] = {}
        self._brtree: Optional[BRStarTree] = None
        self._brtree_lock = threading.Lock()
        self._columns: Optional[ColumnarStore] = None
        self._columns_lock = threading.Lock()

    @classmethod
    def build(
        cls,
        records: Iterable[Tuple[int, float, float, Iterable[str]]],
        name: str = "live-base",
    ) -> "SealedBase":
        """Seal ``(oid, x, y, keywords)`` records (oids must be unique)."""
        base = cls(name=name)
        for oid, x, y, keywords in records:
            oid = int(oid)
            if oid in base.objects:
                raise DatasetError(f"duplicate oid {oid} in sealed base")
            kw = frozenset(str(k) for k in keywords)
            if not kw:
                raise DatasetError("objects must carry at least one keyword")
            base.objects[oid] = GeoObject(oid, float(x), float(y), kw)
            term_ids = tuple(
                sorted(base.vocabulary.observe(t) for t in sorted(kw))
            )
            base._term_ids[oid] = term_ids
            base.inverted.add_object(oid, term_ids)
        base.inverted.finalize()
        return base

    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self.objects)

    def __contains__(self, oid: int) -> bool:
        return oid in self.objects

    def __iter__(self) -> Iterator[GeoObject]:
        return iter(self.objects.values())

    def __getitem__(self, oid: int) -> GeoObject:
        return self.objects[oid]

    def get(self, oid: int) -> Optional[GeoObject]:
        return self.objects.get(oid)

    def term_ids_of(self, oid: int) -> Tuple[int, ...]:
        return self._term_ids[oid]

    @property
    def term_ids(self) -> Dict[int, Tuple[int, ...]]:
        """``oid -> tuple of term ids`` mapping (dict-backed)."""
        return self._term_ids

    @property
    def locations(self) -> "_SparseLocationView":
        return _SparseLocationView(self)

    def max_oid(self) -> int:
        """Largest oid sealed in (``-1`` when empty)."""
        return max(self.objects) if self.objects else -1

    @property
    def columns(self) -> ColumnarStore:
        """Struct-of-arrays view sorted by oid (lazy, built once).

        The oid column is sorted but sparse (deletes leave holes), so the
        store resolves ids by ``searchsorted`` instead of direct indexing.
        """
        with self._columns_lock:
            if self._columns is None:
                self._columns = ColumnarStore.from_rows(
                    (oid, obj.x, obj.y, self._term_ids[oid])
                    for oid, obj in sorted(self.objects.items())
                )
            return self._columns

    def brtree(self, fanout: int = 100) -> BRStarTree:
        """Whole-base bR*-tree over global keyword masks (lazy, cached)."""
        with self._brtree_lock:
            if self._brtree is None:
                self._brtree = BRStarTree.build(
                    (
                        (oid, o.x, o.y, mask_of(self._term_ids[oid]))
                        for oid, o in self.objects.items()
                    ),
                    max_entries=fanout,
                )
            return self._brtree


class _SparseLocationView:
    """``view[oid] -> (x, y)`` over a sealed base's sparse id space."""

    __slots__ = ("_base",)

    def __init__(self, base: SealedBase):
        self._base = base

    def __getitem__(self, oid: int) -> Tuple[float, float]:
        o = self._base.objects[oid]
        return (o.x, o.y)

    def __len__(self) -> int:
        return len(self._base)
