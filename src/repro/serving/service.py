"""Batched, cached, instrumented mCK query serving.

:class:`QueryService` wraps one :class:`~repro.core.engine.MCKEngine` and
answers *streams* of queries instead of one call at a time:

* ``query_many()`` executes a batch concurrently on a thread pool (the
  algorithms release no GIL but spend much of their time in numpy, so
  threads already overlap usefully) and returns results in input order;
* an optional :class:`~concurrent.futures.ProcessPoolExecutor` offloads
  EXACT — the only algorithm whose branch-and-bound is CPU-bound pure
  Python — to worker processes (``use_processes_for_exact=True``);
* identical in-flight queries are coalesced (single-flight) and finished
  answers are kept in an LRU+TTL :class:`~repro.serving.cache.ResultCache`
  keyed by ``(frozenset(keywords), algorithm, epsilon)``;
* every answer carries a :class:`~repro.serving.stats.QueryStats` record
  and feeds a :class:`~repro.serving.stats.MetricsRegistry`.

Observability: every request gets a correlation id (propagated into
process-pool workers and structured log events), and when a
:class:`~repro.observability.tracer.Tracer` is attached — explicitly via
the ``tracer`` parameter or globally via
:func:`repro.observability.tracer.set_tracer` — each request emits a
``serve.request`` root span with ``serve.queue`` / ``serve.cache_probe`` /
``serve.execute`` / ``serve.cache_store`` children, plus whatever spans
the algorithm itself records through its
:class:`~repro.core.common.Deadline`.

Failures the mCK model itself defines — infeasible queries, algorithm
timeouts — surface as failed :class:`ServedResult` entries rather than
poisoning the whole batch; programming errors still propagate.
"""

from __future__ import annotations

import math
import os
import time
from concurrent.futures import (
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
)
from dataclasses import dataclass
from threading import Lock, local as thread_local
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..core.common import Instrumentation
from ..core.engine import MCKEngine, canonical_algorithm
from ..core.objects import Dataset
from ..core.result import Group
from ..core.skeca import DEFAULT_EPSILON
from ..exceptions import (
    AlgorithmTimeout,
    InvalidRequestError,
    QueryRejected,
    ReproError,
)
from ..live.engine import LiveMCKEngine
from ..observability import tracer as _tracing
from ..observability.explain import build_explain, collect_trace_spans
from ..observability.flight import FlightRecorder
from ..observability.logging import correlation_scope, get_logger
from ..testing import faults as _faults
from .admission import (
    REJECT_NEWEST,
    AdaptiveConcurrencyLimiter,
    AdmissionController,
    estimate_cost,
)
from .breaker import OPEN, CircuitBreaker
from .cache import KeywordGenerations, ResultCache, make_cache_key
from .stats import MetricsRegistry, QueryStats

__all__ = ["QueryRequest", "ServedResult", "QueryService"]

_log = get_logger("serving")


@dataclass(frozen=True)
class QueryRequest:
    """One mCK query plus its execution parameters.

    Validated at construction: a bare string is treated as a single
    keyword (never split into characters), the keyword tuple must be
    non-empty with non-empty terms, ``epsilon`` must be a positive finite
    number and ``timeout`` (when given) positive.  Violations raise
    :class:`~repro.exceptions.InvalidRequestError` here, not deep inside
    the engine.
    """

    keywords: Tuple[str, ...]
    algorithm: str = "SKECa+"
    epsilon: float = DEFAULT_EPSILON
    timeout: Optional[float] = None

    def __post_init__(self):
        raw = self.keywords
        if isinstance(raw, str):
            # tuple("hotel") would yield ('h','o','t','e','l'); a bare
            # string can only sensibly mean one keyword.
            raw = (raw,)
        keywords = tuple(str(k) for k in raw)
        if not keywords:
            raise InvalidRequestError("a query needs at least one keyword")
        if any(not k for k in keywords):
            raise InvalidRequestError(
                f"query keywords must be non-empty strings, got {keywords!r}"
            )
        object.__setattr__(self, "keywords", keywords)
        eps = self.epsilon
        if not isinstance(eps, (int, float)) or isinstance(eps, bool) \
                or not math.isfinite(eps) or eps <= 0:
            raise InvalidRequestError(
                f"epsilon must be a positive finite number, got {eps!r}"
            )
        if self.timeout is not None and not self.timeout > 0:
            raise InvalidRequestError(
                f"timeout must be positive (or None), got {self.timeout!r}"
            )

    @classmethod
    def coerce(
        cls,
        item: Union["QueryRequest", str, Sequence[str]],
        algorithm: str = "SKECa+",
        epsilon: float = DEFAULT_EPSILON,
        timeout: Optional[float] = None,
    ) -> "QueryRequest":
        """Accept a ready request, a bare keyword, or a keyword sequence."""
        if isinstance(item, QueryRequest):
            return item
        keywords = (item,) if isinstance(item, str) else tuple(item)
        return cls(
            keywords=keywords,
            algorithm=algorithm,
            epsilon=epsilon,
            timeout=timeout,
        )


@dataclass
class ServedResult:
    """The service's answer to one request."""

    request: QueryRequest
    group: Optional[Group]
    stats: QueryStats
    #: Human-readable failure reason (``None`` on success).
    error: Optional[str] = None
    #: Per-query EXPLAIN report (``submit(..., explain=True)`` only);
    #: the dict built by :func:`repro.observability.explain.build_explain`.
    explain: Optional[dict] = None

    @property
    def ok(self) -> bool:
        return self.group is not None

    @property
    def degraded(self) -> bool:
        """True when the answer is an anytime incumbent / fallback."""
        return self.stats.degraded

    @property
    def rejected(self) -> bool:
        """True when admission control refused the request (never ran)."""
        return self.stats.rejected

    @property
    def correlation_id(self) -> str:
        return self.stats.correlation_id


# --------------------------------------------------------------------- #
# Process-pool plumbing.  Workers rebuild the engine once per process
# (the initializer runs before any task) and return plain picklable
# tuples — custom exceptions with multi-arg constructors do not survive
# a round-trip through the result queue.
#
# Counters cross the boundary as *deltas against a pre-query snapshot*
# rather than raw totals: a pool worker is reused for many queries, so
# shipping an instrumentation's absolute counters would double-count any
# state that outlives one call.  Spans cross as plain dicts (``drain``)
# and are re-ingested into the parent's tracer.
# --------------------------------------------------------------------- #

_WORKER_ENGINE: Optional[MCKEngine] = None
_WORKER_TRACER: Optional[_tracing.Tracer] = None


def _process_worker_init(dataset: Dataset) -> None:
    global _WORKER_ENGINE
    _WORKER_ENGINE = MCKEngine(dataset)


def _process_worker_query(
    keywords: Tuple[str, ...],
    algorithm: str,
    epsilon: float,
    timeout: Optional[float],
    correlation_id: str = "",
    trace_id: Optional[str] = None,
    degrade: bool = False,
):
    assert _WORKER_ENGINE is not None, "process pool initializer did not run"
    global _WORKER_TRACER
    instr = Instrumentation()
    if trace_id is not None:
        if _WORKER_TRACER is None:
            _WORKER_TRACER = _tracing.Tracer()
        _WORKER_TRACER.reset()
        _WORKER_TRACER.set_trace_id(trace_id)
        instr.tracer = _WORKER_TRACER
    before = instr.snapshot()
    with correlation_scope(correlation_id or None):
        try:
            group = _WORKER_ENGINE.query(
                keywords,
                algorithm,
                epsilon,
                timeout,
                instrumentation=instr,
                degrade_on_timeout=degrade,
            )
            kind, payload = ("degraded" if group.degraded else "ok"), group
        except AlgorithmTimeout as err:
            kind, payload = "timeout", str(err)
        except ReproError as err:
            kind, payload = "error", str(err)
    spans = _WORKER_TRACER.drain() if instr.tracer is not None else []
    return (kind, payload, instr.deltas_since(before), dict(instr.timings), spans)


class QueryService:
    """Serve batches of mCK queries over one dataset.

    Parameters
    ----------
    source:
        A finalized :class:`~repro.core.objects.Dataset`, an existing
        :class:`~repro.core.engine.MCKEngine`, or a
        :class:`~repro.live.engine.LiveMCKEngine`.  With a live engine
        the service additionally accepts mutations (:meth:`insert` /
        :meth:`delete` / :meth:`submit_mutation`), wires the engine's
        mutation stream into keyword-scoped cache invalidation, and
        forbids ``use_processes_for_exact`` (pool workers would hold a
        frozen dataset copy).
    max_workers:
        Thread-pool width for ``query_many``/``submit`` (default:
        ``min(8, cpu_count)``).
    cache_size / cache_ttl:
        Result-cache capacity and optional per-entry time-to-live in
        seconds; ``cache_size=0`` disables caching (and single-flight
        coalescing) entirely.
    use_processes_for_exact:
        Opt-in: run EXACT queries on a :class:`ProcessPoolExecutor` whose
        workers each hold their own engine.  Worth it only when EXACT
        dominates the workload; worker start-up re-indexes the dataset.
        Shorthand for ``process_algorithms=("EXACT",)``.
    process_algorithms:
        Algorithms to execute on the worker-process pool instead of the
        thread pool (names are canonicalized).  The HTTP serving tier
        passes every algorithm it serves so CPU-bound hot loops run off
        the GIL; the pool-failure retry budget, circuit breaker and
        in-process SKECa+ fallback apply to all of them.  Mutually
        exclusive with a live engine (pool workers hold a frozen
        dataset copy).
    admission_capacity:
        Bound on the admission queue (requests accepted but not yet
        executing).  When the queue is full the ``shed_policy`` decides
        who gets a :class:`~repro.exceptions.QueryRejected`; ``None``
        disables the bound entirely.  See :mod:`repro.serving.admission`.
    shed_policy:
        ``reject-newest`` (default), ``reject-oldest`` or
        ``deadline-aware`` (sheds requests whose remaining deadline is
        unmeetable given the observed p95 service time and queue depth).
    limiter:
        Optional :class:`~repro.serving.admission.AdaptiveConcurrencyLimiter`
        governing cost-weighted inflight work (AIMD on latency); a
        default sized from ``max_workers`` is built when omitted.
    strict_timeouts:
        When False (default) a query whose deadline expires returns the
        algorithm's best feasible incumbent as a *degraded* answer
        (``group.degraded`` / ``stats.degraded`` true, ``quality`` tagged)
        instead of failing.  Set True for the paper's strict §6.2.3
        fail-hard semantics: timeouts surface as failed results.
    pool_retries / pool_retry_backoff / pool_backoff_cap:
        Retry budget for EXACT process-pool submissions that die (broken
        pool, dead worker, torn pipe).  Each retry recreates the pool and
        waits ``min(cap, backoff * 2**attempt)`` seconds first.  When the
        budget is exhausted the query falls back to an in-process SKECa+
        answer marked degraded (or fails, under ``strict_timeouts``).
    breaker_threshold / breaker_cooldown:
        Circuit breaker over those pool failures: after ``threshold``
        consecutive failures the pool is not retried at all for
        ``cooldown`` seconds — queries degrade immediately.
    metrics:
        A shared :class:`MetricsRegistry`; defaults to a private one.
    tracer:
        Optional :class:`~repro.observability.tracer.Tracer`.  When
        omitted, the process-global tracer (if any) is used; when neither
        exists, tracing costs nothing.
    """

    def __init__(
        self,
        source: Union[Dataset, MCKEngine],
        *,
        max_workers: Optional[int] = None,
        admission_capacity: Optional[int] = 1024,
        shed_policy: str = REJECT_NEWEST,
        limiter: Optional[AdaptiveConcurrencyLimiter] = None,
        cache_size: int = 1024,
        cache_ttl: Optional[float] = None,
        use_processes_for_exact: bool = False,
        process_algorithms: Optional[Sequence[str]] = None,
        process_workers: Optional[int] = None,
        strict_timeouts: bool = False,
        pool_retries: int = 2,
        pool_retry_backoff: float = 0.05,
        pool_backoff_cap: float = 1.0,
        breaker_threshold: int = 3,
        breaker_cooldown: float = 30.0,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[_tracing.Tracer] = None,
        flight: Optional[FlightRecorder] = None,
        slo=None,
        cache_clock=time.monotonic,
    ):
        if isinstance(source, Dataset):
            self.engine = MCKEngine(source)
        else:
            # Engines pass through: the sealed MCKEngine, the mutable
            # LiveMCKEngine, or anything live-engine-shaped — e.g. the
            # scatter-gather ReplicatedShardRouter (duck-typed so the
            # serving tier does not import the replication subsystem).
            self.engine = source
        self._live = hasattr(self.engine, "apply_batch") and hasattr(
            self.engine, "add_mutation_listener"
        )
        if hasattr(self.engine, "live_groups"):
            self._engine_kind = "scatter"
        elif self._live:
            self._engine_kind = "live"
        else:
            self._engine_kind = "sealed"
        #: Canonical algorithm names executed on the worker-process pool
        #: instead of in-process threads.  ``use_processes_for_exact`` is
        #: the historical spelling of ``process_algorithms=("EXACT",)``;
        #: the HTTP serving tier passes every algorithm so the CPU-bound
        #: hot loops run off the GIL.
        if process_algorithms is not None:
            self._process_algorithms = frozenset(
                canonical_algorithm(a) for a in process_algorithms
            )
        elif use_processes_for_exact:
            self._process_algorithms = frozenset(("EXACT",))
        else:
            self._process_algorithms = frozenset()
        if self._live and self._process_algorithms:
            raise ValueError(
                "process-pool execution is not supported with a live engine: "
                "pool workers hold a frozen copy of the dataset and would "
                "silently miss every mutation"
            )
        self.max_workers = max_workers or min(8, os.cpu_count() or 1)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: Per-keyword generation counters scoping cache invalidation to
        #: the keywords a mutation actually touched (live engines only).
        self.generations = KeywordGenerations() if self._live else None
        self.cache = ResultCache(
            max_size=cache_size,
            ttl_seconds=cache_ttl,
            clock=cache_clock,
            generations=self.generations,
            on_invalidate=(
                (lambda n: self.metrics.cache_invalidation_counter.inc(float(n)))
                if self._live
                else None
            ),
        )
        if self._live:
            self.engine.add_mutation_listener(self._on_mutation)
            if self.engine.metrics is None:
                self.engine.metrics = self.metrics
                # Re-push so engine-lifecycle metrics that predate the
                # wiring (recovery gauges, epoch/delta) appear at startup
                # rather than after the first mutation.
                self.engine._publish_metrics()
        self.tracer = tracer
        self._local = thread_local()
        #: Flight recorder for tail-based trace retention.  It needs a
        #: tracer to feed it spans: when neither an explicit nor a global
        #: tracer exists, the service grows a private one.
        self.flight = flight
        #: The tracer this service attached ``flight`` to (and therefore
        #: must detach from on close) — ``None`` when the recorder was
        #: already listening there (a sibling service attached first; the
        #: sink is theirs to remove).
        self._flight_tracer: Optional[_tracing.Tracer] = None
        if flight is not None:
            if self.tracer is None and _tracing.get_tracer() is None:
                self.tracer = _tracing.Tracer()
            sink_tracer = self._tracer()
            if not flight.is_attached(sink_tracer):
                self._flight_tracer = sink_tracer
            flight.attach(sink_tracer)
        #: SLO tracker (:class:`~repro.observability.slo.SLOTracker`);
        #: every finished request — including admission rejections — is
        #: classified against its objectives.  Bound to this service's
        #: metrics registry so the burn-rate gauges ride the existing
        #: Prometheus export.
        self.slo = slo
        if slo is not None and getattr(slo, "_burn_gauge", None) is None:
            slo.bind(self.metrics)
        self.strict_timeouts = strict_timeouts
        self.pool_retries = max(0, pool_retries)
        self.pool_retry_backoff = pool_retry_backoff
        self.pool_backoff_cap = pool_backoff_cap
        self.breaker = CircuitBreaker(
            failure_threshold=breaker_threshold,
            cooldown_seconds=breaker_cooldown,
            on_transition=self._on_breaker_transition,
        )
        self.limiter = limiter if limiter is not None else AdaptiveConcurrencyLimiter(
            initial=4.0 * self.max_workers,
            max_limit=16.0 * self.max_workers,
        )
        self.admission = AdmissionController(
            max_workers=self.max_workers,
            capacity=admission_capacity,
            policy=shed_policy,
            limiter=self.limiter,
            service_time=self.metrics.service_time_p95,
            on_reject=self._on_admission_reject,
            on_depth=lambda depth: self.metrics.queue_depth_gauge.set(
                float(depth), queue="admission"
            ),
            on_inflight=lambda count, _cost: self.metrics.inflight_gauge.set(
                float(count), queue="admission"
            ),
            on_limit=self.metrics.concurrency_limit_gauge.set,
            thread_name_prefix="mck-serve",
        )
        self.metrics.concurrency_limit_gauge.set(self.limiter.limit)
        self._process_workers = process_workers
        self._process_pool: Optional[ProcessPoolExecutor] = None
        self._process_pool_lock = Lock()
        self._inflight: Dict[tuple, Future] = {}
        self._inflight_lock = Lock()
        self._closed = False

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    def query(
        self,
        keywords: Sequence[str],
        algorithm: str = "SKECa+",
        epsilon: float = DEFAULT_EPSILON,
        timeout: Optional[float] = None,
        explain: bool = False,
    ) -> ServedResult:
        """Answer one query through admission control and wait for it.

        Raises :class:`~repro.exceptions.QueryRejected` when admission
        control sheds the request (queue full, unmeetable deadline, or
        the service is closing).  ``explain=True`` attaches the per-query
        EXPLAIN report as ``result.explain``.
        """
        return self.submit(keywords, algorithm, epsilon, timeout, explain).result()

    def submit(
        self,
        keywords: Union[QueryRequest, Sequence[str]],
        algorithm: str = "SKECa+",
        epsilon: float = DEFAULT_EPSILON,
        timeout: Optional[float] = None,
        explain: bool = False,
    ) -> "Future[ServedResult]":
        """Enqueue one query; returns a future of its :class:`ServedResult`.

        Raises :class:`~repro.exceptions.QueryRejected` immediately when
        the request is not admitted (reason ``shutdown`` after
        :meth:`close`); a request shed *after* admission resolves its
        future with the same exception.

        With ``explain=True`` the result carries an EXPLAIN report
        (``result.explain``): algorithm and kernel mode, cache and
        admission outcome, pruning counters, per-phase latency breakdown
        and the span tree — assembled even when no tracer is attached (an
        ephemeral per-request tracer fills in).
        """
        request = QueryRequest.coerce(keywords, algorithm, epsilon, timeout)
        return self._submit(request, explain)

    def query_many(
        self,
        requests: Iterable[Union[QueryRequest, Sequence[str]]],
        algorithm: str = "SKECa+",
        epsilon: float = DEFAULT_EPSILON,
        timeout: Optional[float] = None,
    ) -> List[ServedResult]:
        """Answer a batch concurrently; results come back in input order.

        Admission rejections do not poison the batch: a rejected request
        yields a failed :class:`ServedResult` with ``rejected`` true and
        the :class:`~repro.exceptions.QueryRejected` message as its
        ``error``, in its input-order slot.
        """
        coerced = [
            QueryRequest.coerce(item, algorithm, epsilon, timeout)
            for item in requests
        ]
        outcomes: List[Union[Future, QueryRejected]] = []
        for request in coerced:
            try:
                outcomes.append(self._submit(request))
            except QueryRejected as err:
                outcomes.append(err)
        results: List[ServedResult] = []
        for request, outcome in zip(coerced, outcomes):
            if isinstance(outcome, QueryRejected):
                results.append(self._rejected_result(request, outcome))
                continue
            try:
                results.append(outcome.result())
            except QueryRejected as err:
                results.append(self._rejected_result(request, err))
        return results

    # ------------------------------------------------------------------ #
    # Mutations (live engines only)
    # ------------------------------------------------------------------ #

    #: Admission-cost weight of one mutation batch.  Mutations are cheap
    #: cost-class work: a WAL append plus one copy-on-write delta step,
    #: orders of magnitude lighter than any query algorithm.
    MUTATION_COST = 0.25

    def submit_mutation(
        self,
        inserts: Sequence[Tuple[float, float, Iterable[str]]] = (),
        deletes: Sequence[int] = (),
    ) -> "Future[List[int]]":
        """Admit one atomic mutation batch; future yields the new oids.

        Mutations flow through the same :class:`AdmissionController` as
        queries, so overload protection (bounded queue, shedding,
        concurrency limiting) governs writers too — but with the cheap
        :attr:`MUTATION_COST` weight and their own ``MUTATION`` latency
        bucket, a write burst cannot be mistaken for slow queries.

        Raises :class:`~repro.exceptions.QueryRejected` when shed and
        ``TypeError`` when the underlying engine is not live.
        """
        self._require_live()
        return self.admission.submit(
            self.engine.apply_batch,
            list(inserts),
            list(deletes),
            cost=self.MUTATION_COST,
            key="MUTATION",
        )

    def insert(self, x: float, y: float, keywords: Iterable[str]) -> int:
        """Insert one object through admission control; returns its oid."""
        return self.submit_mutation(inserts=[(x, y, keywords)]).result()[0]

    def delete(self, oid: int) -> None:
        """Delete one live object through admission control."""
        self.submit_mutation(deletes=[oid]).result()

    def _require_live(self) -> None:
        if not self._live:
            raise TypeError(
                "mutations need a LiveMCKEngine source; this service wraps "
                "a static MCKEngine"
            )

    def _on_mutation(self, op: str, oid: int, keywords: Tuple[str, ...]) -> None:
        """Post-publish mutation hook: age every touched keyword.

        Runs after the new epoch is visible (the engine guarantees the
        ordering), so by the time a cached entry is condemned its
        recomputation can only see the new data — never the old.
        """
        if self.generations is not None:
            self.generations.bump(keywords)
        _log.debug("live.mutation", op=op, oid=oid, keywords=list(keywords))

    def metrics_dict(self) -> dict:
        """Aggregate metrics including the cache's current counters."""
        self.metrics.record_cache(self.cache.stats())
        return self.metrics.as_dict()

    def admission_dict(self) -> dict:
        """Admission-control snapshot: conservation counters, depth, limit."""
        counters = self.admission.counters()
        counters["queue_depth"] = self.admission.queue_depth
        counters["inflight"] = self.admission.inflight
        counters["concurrency_limit"] = self.limiter.limit
        return counters

    def close(self) -> None:
        """Drain accepted work, reject queued work, release the pools.

        Idempotent: calling :meth:`close` again is a no-op.  Requests
        already executing complete and their futures resolve; requests
        still queued resolve with ``QueryRejected(reason="shutdown")``;
        later :meth:`submit` calls raise the same.

        Detaches everything this service hooked into shared objects: the
        mutation listener registered on a live engine (which would
        otherwise pin this service's cache alive for the engine's whole
        lifetime) and the flight recorder's span sink when this service
        attached it.  A shared engine or recorder is therefore safe to
        reuse across any number of service lifecycles.
        """
        if self._closed:
            return
        self._closed = True
        # Drain first: in-flight queries keep cache-invalidation coverage
        # until the last one resolves, only then is the listener removed.
        self.admission.close()
        if self._live:
            self.engine.remove_mutation_listener(self._on_mutation)
        if self.flight is not None and self._flight_tracer is not None:
            self.flight.detach(self._flight_tracer)
            self._flight_tracer = None
        if self._process_pool is not None:
            self._process_pool.shutdown(wait=True)

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _submit(
        self, request: QueryRequest, explain: bool = False
    ) -> "Future[ServedResult]":
        algorithm = canonical_algorithm(request.algorithm)
        try:
            future = self.admission.submit(
                self._serve,
                request,
                time.monotonic_ns(),
                explain,
                cost=self._estimate_cost(request, algorithm),
                timeout=request.timeout,
                key=algorithm,
            )
        except QueryRejected as err:
            # Rejected at the door (queue full, unmeetable deadline,
            # shutdown): the request never ran, so synthesize its trace.
            self._record_rejection(request, err)
            raise
        # A request shed *after* admission (victim of reject-oldest /
        # deadline-aware policies, or flushed at close) resolves its
        # future with QueryRejected instead of raising here.
        future.add_done_callback(
            lambda fut: self._record_shed_future(request, fut)
        )
        return future

    def _record_shed_future(self, request: QueryRequest, fut: Future) -> None:
        try:
            err = fut.exception()
        except BaseException:  # cancelled — nothing to record
            return
        if isinstance(err, QueryRejected):
            self._record_rejection(request, err)

    def _record_rejection(self, request: QueryRequest, err: QueryRejected) -> None:
        """Observability for a shed request: SLO bad event + flight trace.

        A rejected request never executed, so it has no organic spans; a
        synthetic ``serve.rejected`` span (zero duration, reason attached)
        is written to the flight recorder so 100% of rejections remain
        debuggable.  The synthesized trace id is stashed on the exception
        (``err.trace_id``) for :meth:`_rejected_result` to surface.
        """
        algorithm = canonical_algorithm(request.algorithm)
        stats = QueryStats(
            keywords=request.keywords,
            algorithm=algorithm,
            epsilon=request.epsilon,
            success=False,
            rejected=True,
        )
        if self.slo is not None:
            self.slo.record(stats)
        if self.flight is not None:
            span = FlightRecorder.synthetic_span(
                "serve.rejected",
                reason=getattr(err, "reason", "rejected"),
                algorithm=algorithm,
                m=len(request.keywords),
            )
            err.trace_id = span["trace_id"]
            self.flight.complete(
                span["trace_id"],
                rejected=True,
                algorithm=algorithm,
                error=str(err),
                extra_spans=[span],
            )

    def _estimate_cost(self, request: QueryRequest, algorithm: str) -> float:
        """Cost weight from algorithm, m, and keyword document frequency."""
        vocab = self.engine.dataset.vocabulary
        n_objects = max(1, len(self.engine.dataset))
        frequencies = [
            vocab.frequency(keyword)
            for keyword in request.keywords
            if keyword in vocab
        ]
        min_rel = min(frequencies) / n_objects if frequencies else 0.0
        return estimate_cost(algorithm, len(request.keywords), min_rel)

    def _rejected_result(
        self, request: QueryRequest, err: QueryRejected
    ) -> ServedResult:
        """A failed :class:`ServedResult` for a shed request.

        Rejected requests never executed, so they are *not* recorded into
        the latency aggregates (which would drag every percentile toward
        zero); the ``mck_admission_rejected_total`` counter already
        accounts for them.
        """
        stats = QueryStats(
            keywords=request.keywords,
            algorithm=canonical_algorithm(request.algorithm),
            epsilon=request.epsilon,
            success=False,
            rejected=True,
            trace_id=getattr(err, "trace_id", "") or "",
        )
        return ServedResult(
            request=request, group=None, stats=stats, error=str(err)
        )

    def _on_admission_reject(self, reason: str) -> None:
        self.metrics.admission_rejected_counter.inc(1.0, reason=reason)
        # debug, not warning: under overload this fires per rejection, and a
        # log storm is itself an overload amplifier — the counter is the signal.
        _log.debug("admission.rejected", reason=reason)

    def _on_breaker_transition(self, old_state: str, new_state: str) -> None:
        self.metrics.circuit_transition_counter.inc(1.0, state=new_state)
        self.metrics.circuit_open_gauge.set(1.0 if new_state == OPEN else 0.0)
        _log.warning("pool.circuit", old_state=old_state, new_state=new_state)

    def _tracer(self) -> Optional[_tracing.Tracer]:
        # The per-request ephemeral tracer (explain with no tracer wired)
        # wins: a request's spans must land where its EXPLAIN looks.
        ephemeral = getattr(self._local, "tracer", None)
        if ephemeral is not None:
            return ephemeral
        return self.tracer if self.tracer is not None else _tracing.get_tracer()

    def _record(self, stats: QueryStats) -> None:
        """Stamp the request's trace id, then feed metrics and SLO."""
        stats.trace_id = getattr(self._local, "trace_id", "") or ""
        self.metrics.record(stats)
        if self.slo is not None:
            self.slo.record(stats)

    def _span(self, name: str, **attributes):
        tracer = self._tracer()
        if tracer is None:
            return _tracing.NULL_SPAN
        return tracer.span(name, **attributes)

    def _serve(
        self,
        request: QueryRequest,
        enqueued_ns: Optional[int] = None,
        explain: bool = False,
    ) -> ServedResult:
        started = time.perf_counter()
        faults_before = _faults.total_triggered()
        ephemeral: Optional[_tracing.Tracer] = None
        if explain and self._tracer() is None:
            # EXPLAIN needs spans; with no tracer wired anywhere, give
            # this one request a private tracer (request execution —
            # including the inline engine run — stays on this thread).
            ephemeral = _tracing.Tracer()
            self._local.tracer = ephemeral
        try:
            with correlation_scope() as cid:
                with self._span(
                    "serve.request",
                    algorithm=request.algorithm,
                    m=len(request.keywords),
                    correlation_id=cid,
                ) as root:
                    trace_id = getattr(root, "trace_id", "") or ""
                    self._local.trace_id = trace_id
                    if enqueued_ns is not None:
                        # The wait happened before this span existed; record it
                        # as two already-complete children: the raw queue wait
                        # and the admission view of it (policy, live depth,
                        # concurrency limit at dispatch).
                        tracer = self._tracer()
                        if tracer is not None:
                            now_ns = time.monotonic_ns()
                            tracer.record_complete(
                                "serve.queue", enqueued_ns, now_ns
                            )
                            tracer.record_complete(
                                "serve.admission",
                                enqueued_ns,
                                now_ns,
                                policy=self.admission.policy,
                                queue_depth=self.admission.queue_depth,
                                concurrency_limit=round(self.limiter.limit, 3),
                            )
                    result = self._serve_traced(request, started, cid)
                    root.set_attribute(
                        "cache", "hit" if result.stats.cache_hit else "miss"
                    )
                    if not result.ok:
                        root.set_attribute("error", result.error or "failed")
                # Root span closed: the full tree is in the tracer (and in
                # the flight recorder's pending buffer).  Decide retention
                # and assemble EXPLAIN now.
                fault_hits = _faults.total_triggered() - faults_before
                if self.flight is not None and trace_id:
                    self.flight.complete(
                        trace_id,
                        algorithm=result.stats.algorithm,
                        correlation_id=cid,
                        latency_seconds=result.stats.total_seconds,
                        cache_hit=result.stats.cache_hit,
                        degraded=result.stats.degraded,
                        error=result.error,
                        fault_hits=fault_hits,
                        quality=result.stats.quality,
                    )
                if explain:
                    result.explain = self._build_explain(
                        request, result, trace_id, cid, ephemeral
                    )
                _log.debug(
                    "query.served",
                    algorithm=result.stats.algorithm,
                    keywords=list(request.keywords),
                    cache_hit=result.stats.cache_hit,
                    success=result.stats.success,
                    total_seconds=result.stats.total_seconds,
                    error=result.error,
                )
            return result
        finally:
            self._local.trace_id = ""
            if ephemeral is not None:
                self._local.tracer = None

    def _build_explain(
        self,
        request: QueryRequest,
        result: ServedResult,
        trace_id: str,
        cid: str,
        ephemeral: Optional[_tracing.Tracer],
    ) -> dict:
        stats = result.stats
        if ephemeral is not None:
            spans = ephemeral.drain()  # private per-request tracer: all ours
        else:
            spans = collect_trace_spans(self._tracer(), trace_id)
            if not spans and self.flight is not None and trace_id:
                spans = self.flight.spans_for(trace_id)
        if stats.rejected:
            status = "rejected"
        elif not stats.success:
            status = "error"
        elif stats.degraded:
            status = "degraded"
        else:
            status = "ok"
        group = result.group
        return build_explain(
            keywords=request.keywords,
            algorithm=stats.algorithm,
            epsilon=request.epsilon,
            timeout=request.timeout,
            spans=spans,
            counters=stats.counters,
            timings={
                "context_seconds": stats.context_seconds,
                "algorithm_seconds": stats.algorithm_seconds,
                "total_seconds": stats.total_seconds,
            },
            engine_kind=self._engine_kind,
            status=status,
            quality=stats.quality,
            diameter=stats.diameter,
            group_size=stats.group_size,
            object_ids=group.object_ids if group is not None else (),
            error=result.error,
            cache_hit=stats.cache_hit,
            trace_id=trace_id,
            correlation_id=cid,
        )

    def _serve_traced(
        self, request: QueryRequest, started: float, cid: str
    ) -> ServedResult:
        key = self._cache_key(request)
        if key is not None:
            with self._span("serve.cache_probe") as probe:
                # The stamp is captured *before* executing: a mutation
                # racing the execution bumps the live generation past it,
                # so the filled entry is condemned on its next lookup
                # instead of serving a possibly stale answer.
                stamp = self.cache.probe_stamp(key)
                cached = self.cache.get(key)
                probe.set_attribute("hit", cached is not None)
            if cached is not None:
                return self._finish_hit(request, cached, started, cid)
            return self._serve_with_singleflight(request, key, started, cid, stamp)

        group, stats, error = self._execute(request, started, cid)
        self._record(stats)
        return ServedResult(request=request, group=group, stats=stats, error=error)

    def _serve_with_singleflight(
        self,
        request: QueryRequest,
        key: tuple,
        started: float,
        cid: str,
        stamp: int = 0,
    ) -> ServedResult:
        with self._inflight_lock:
            fut = self._inflight.get(key)
            if fut is None or fut.done():
                fut = Future()
                self._inflight[key] = fut
                leader = True
            else:
                leader = False

        if leader:
            try:
                group, stats, error = self._execute(request, started, cid)
                # Degraded answers are never cached: they are worse than a
                # completed run and would keep being served after the
                # deadline pressure (or pool outage) has passed.
                if group is not None and not group.degraded:
                    with self._span("serve.cache_store"):
                        self.cache.put(key, group, stamp=stamp)
                fut.set_result((group, error))
            except BaseException as err:  # pragma: no cover - defensive
                fut.set_exception(err)
                raise
            finally:
                with self._inflight_lock:
                    if self._inflight.get(key) is fut:
                        del self._inflight[key]
            self._record(stats)
            return ServedResult(
                request=request, group=group, stats=stats, error=error
            )

        # Follower: wait for the leader, then read its answer.  Re-probing
        # the cache keeps the hit counters truthful; when the leader failed
        # (nothing cached) the shared in-flight answer is used directly.
        with self._span("serve.coalesced_wait"):
            group, error = fut.result()
        if group is not None:
            cached = self.cache.get(key)
            if cached is not None:
                group = cached
        return self._finish_join(request, group, error, started, cid)

    def _cache_key(self, request: QueryRequest) -> Optional[tuple]:
        if self.cache.max_size == 0:
            return None
        return make_cache_key(request.keywords, request.algorithm, request.epsilon)

    def _execute(
        self, request: QueryRequest, started: float, cid: str
    ) -> Tuple[Optional[Group], QueryStats, Optional[str]]:
        """Run the algorithm (thread-local or process pool) and measure."""
        algorithm = canonical_algorithm(request.algorithm)
        stats = QueryStats(
            keywords=request.keywords,
            algorithm=algorithm,
            epsilon=request.epsilon,
            correlation_id=cid,
        )
        with self._span("serve.execute", algorithm=algorithm):
            if algorithm in self._process_algorithms:
                outcome = self._run_in_process_pool(request, cid)
            else:
                outcome = self._run_inline(request)
        kind, payload, counters, timings, worker_spans = outcome
        if worker_spans:
            tracer = self._tracer()
            if tracer is not None:
                tracer.ingest(worker_spans)
        stats.counters = {k: float(v) for k, v in counters.items()}
        stats.context_seconds = timings.get("context_seconds", 0.0)
        stats.algorithm_seconds = timings.get("algorithm_seconds", 0.0)
        stats.total_seconds = time.perf_counter() - started
        if kind in ("ok", "degraded"):
            group: Group = payload
            stats.diameter = group.diameter
            stats.group_size = len(group)
            stats.degraded = kind == "degraded"
            stats.quality = group.quality or ""
            if stats.degraded:
                _log.warning(
                    "query.degraded",
                    algorithm=algorithm,
                    keywords=list(request.keywords),
                    quality=stats.quality,
                    diameter=group.diameter,
                )
            return group, stats, None
        stats.success = False
        _log.warning(
            "query.failed",
            algorithm=algorithm,
            keywords=list(request.keywords),
            kind=kind,
            error=str(payload),
        )
        return None, stats, str(payload)

    def _run_inline(self, request: QueryRequest, algorithm: Optional[str] = None):
        instr = Instrumentation(tracer=self._tracer())
        try:
            group = self.engine.query(
                request.keywords,
                algorithm or request.algorithm,
                request.epsilon,
                request.timeout,
                instrumentation=instr,
                degrade_on_timeout=not self.strict_timeouts,
            )
            kind = "degraded" if group.degraded else "ok"
            return (kind, group, instr.counters, instr.timings, [])
        except AlgorithmTimeout as err:
            return ("timeout", str(err), instr.counters, instr.timings, [])
        except ReproError as err:
            return ("error", str(err), instr.counters, instr.timings, [])

    # Pool failures worth retrying: the executor broke (a worker died —
    # BrokenProcessPool), or the result pipe tore mid-read.
    _POOL_FAILURES = (BrokenExecutor, BrokenPipeError, EOFError, OSError)

    def _run_in_process_pool(self, request: QueryRequest, cid: str):
        tracer = self._tracer()
        trace_id = tracer.current_trace_id() if tracer is not None else None
        algorithm = canonical_algorithm(request.algorithm)
        attempt = 0
        while True:
            if not self.breaker.allow():
                return self._pool_fallback(
                    request, "process pool circuit breaker is open"
                )
            try:
                # The fault site fires before the pool is (re)built so an
                # injected rejection never spawns real worker processes.
                _faults.fire(
                    "serving.pool.submit", algorithm=algorithm, attempt=attempt
                )
                pool = self._ensure_process_pool()
                outcome = pool.submit(
                    _process_worker_query,
                    request.keywords,
                    request.algorithm,
                    request.epsilon,
                    request.timeout,
                    cid,
                    trace_id,
                    not self.strict_timeouts,
                ).result()
            except self._POOL_FAILURES as err:
                self.breaker.record_failure()
                self._reset_process_pool()
                _log.warning(
                    "pool.failure",
                    algorithm=algorithm,
                    attempt=attempt,
                    error=str(err),
                )
                if attempt >= self.pool_retries:
                    return self._pool_fallback(
                        request, f"process pool failed after {attempt + 1} attempts"
                    )
                self.metrics.pool_retry_counter.inc(1.0, algorithm=algorithm)
                backoff = min(
                    self.pool_backoff_cap,
                    self.pool_retry_backoff * (2.0 ** attempt),
                )
                if backoff > 0.0:
                    time.sleep(backoff)
                attempt += 1
                continue
            self.breaker.record_success()
            return outcome

    def _pool_fallback(self, request: QueryRequest, reason: str):
        """Answer in-process with SKECa+ when the EXACT pool is unusable.

        The answer is feasible but only 2/√3+ε-certified, so it is always
        marked degraded; strict mode refuses the substitution and reports
        the pool failure instead.
        """
        algorithm = canonical_algorithm(request.algorithm)
        self.metrics.pool_fallback_counter.inc(1.0, algorithm=algorithm)
        if self.strict_timeouts:
            return ("error", reason, {}, {}, [])
        _log.warning(
            "pool.fallback",
            algorithm=algorithm,
            keywords=list(request.keywords),
            reason=reason,
        )
        kind, payload, counters, timings, spans = self._run_inline(
            request, algorithm="SKECa+"
        )
        if kind in ("ok", "degraded"):
            group: Group = payload
            group.stats["degraded"] = 1.0
            group.stats["pool_fallback"] = 1.0
            return ("degraded", group, counters, timings, spans)
        return (kind, payload, counters, timings, spans)

    def _ensure_process_pool(self) -> ProcessPoolExecutor:
        with self._process_pool_lock:
            if self._process_pool is None:
                workers = self._process_workers or min(4, os.cpu_count() or 1)
                self._process_pool = ProcessPoolExecutor(
                    max_workers=workers,
                    initializer=_process_worker_init,
                    initargs=(self.engine.dataset,),
                )
            return self._process_pool

    def _reset_process_pool(self) -> None:
        """Tear down a (possibly broken) pool; the next use rebuilds it."""
        with self._process_pool_lock:
            pool, self._process_pool = self._process_pool, None
        if pool is not None:
            pool.shutdown(wait=False)

    def _finish_hit(
        self, request: QueryRequest, group: Group, started: float, cid: str
    ) -> ServedResult:
        stats = QueryStats(
            keywords=request.keywords,
            algorithm=canonical_algorithm(request.algorithm),
            epsilon=request.epsilon,
            total_seconds=time.perf_counter() - started,
            cache_hit=True,
            diameter=group.diameter,
            group_size=len(group),
            correlation_id=cid,
            quality=group.quality or "",
        )
        self._record(stats)
        return ServedResult(request=request, group=group, stats=stats)

    def _finish_join(
        self,
        request: QueryRequest,
        group: Optional[Group],
        error: Optional[str],
        started: float,
        cid: str,
    ) -> ServedResult:
        stats = QueryStats(
            keywords=request.keywords,
            algorithm=canonical_algorithm(request.algorithm),
            epsilon=request.epsilon,
            total_seconds=time.perf_counter() - started,
            cache_hit=group is not None,
            success=group is not None,
            correlation_id=cid,
            counters={"coalesced": 1.0},
        )
        if group is not None:
            stats.diameter = group.diameter
            stats.group_size = len(group)
            stats.degraded = group.degraded
            stats.quality = group.quality or ""
        self._record(stats)
        return ServedResult(request=request, group=group, stats=stats, error=error)
