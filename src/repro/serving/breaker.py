"""Circuit breaker guarding the EXACT process pool.

A tiny three-state breaker (``closed`` → ``open`` → ``half_open``) with
the classic semantics:

* **closed** — requests flow; consecutive failures are counted and the
  breaker trips open at ``failure_threshold``.
* **open** — requests are refused (callers degrade immediately instead of
  burning their deadline on a pool that keeps dying) until
  ``cooldown_seconds`` elapse.
* **half_open** — after the cooldown one probe request is let through;
  success closes the breaker, failure re-opens it and restarts the
  cooldown.

The breaker is deliberately clock-injectable (tests pass a fake
monotonic clock) and reports every state change through an optional
``on_transition(old, new)`` callback, which the serving layer uses to
feed the ``mck_circuit_transitions_total`` counter and the
``mck_circuit_open`` gauge.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

__all__ = ["CircuitBreaker", "CLOSED", "OPEN", "HALF_OPEN"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-failure circuit breaker with half-open probing."""

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown_seconds: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
        on_transition: Optional[Callable[[str, str], None]] = None,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self.cooldown_seconds = cooldown_seconds
        self._clock = clock
        self._on_transition = on_transition
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0
        #: True while a half-open probe is in flight (only one at a time).
        self._probing = False

    @property
    def state(self) -> str:
        with self._lock:
            self._maybe_half_open_locked()
            return self._state

    def allow(self) -> bool:
        """May a request proceed right now?

        In ``half_open`` only the first caller gets through (the probe);
        concurrent callers are refused until the probe reports back.
        """
        with self._lock:
            self._maybe_half_open_locked()
            if self._state == CLOSED:
                return True
            if self._state == HALF_OPEN and not self._probing:
                self._probing = True
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._probing = False
            if self._state != CLOSED:
                self._transition_locked(CLOSED)

    def record_failure(self) -> None:
        with self._lock:
            self._probing = False
            if self._state == HALF_OPEN:
                # The probe failed; back to a full cooldown.
                self._opened_at = self._clock()
                self._transition_locked(OPEN)
                return
            self._failures += 1
            if self._state == CLOSED and self._failures >= self.failure_threshold:
                self._opened_at = self._clock()
                self._transition_locked(OPEN)

    # ------------------------------------------------------------------ #

    def _maybe_half_open_locked(self) -> None:
        if (
            self._state == OPEN
            and self._clock() - self._opened_at >= self.cooldown_seconds
        ):
            self._probing = False
            self._transition_locked(HALF_OPEN)

    def _transition_locked(self, new_state: str) -> None:
        old, self._state = self._state, new_state
        if old != new_state and self._on_transition is not None:
            # Callback runs under the lock; keep it tiny (counter bumps).
            self._on_transition(old, new_state)
