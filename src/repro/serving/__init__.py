"""Query-serving layer: batched execution, result caching, metrics,
admission control and load shedding.

Built on top of :class:`~repro.core.engine.MCKEngine`; see
``docs/serving.md`` for the full walkthrough and ``docs/overload.md``
for the overload-protection subsystem.
"""

from .admission import (
    DEADLINE_AWARE,
    REJECT_NEWEST,
    REJECT_OLDEST,
    SHED_POLICIES,
    AdaptiveConcurrencyLimiter,
    AdmissionController,
    estimate_cost,
)
from .breaker import CircuitBreaker
from .cache import ResultCache, make_cache_key
from .service import QueryRequest, QueryService, ServedResult
from .stats import MetricsRegistry, QueryStats

__all__ = [
    "QueryRequest",
    "QueryService",
    "ServedResult",
    "AdmissionController",
    "AdaptiveConcurrencyLimiter",
    "estimate_cost",
    "SHED_POLICIES",
    "REJECT_NEWEST",
    "REJECT_OLDEST",
    "DEADLINE_AWARE",
    "CircuitBreaker",
    "ResultCache",
    "make_cache_key",
    "MetricsRegistry",
    "QueryStats",
]
