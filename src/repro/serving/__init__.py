"""Query-serving layer: batched execution, result caching, metrics.

Built on top of :class:`~repro.core.engine.MCKEngine`; see
``docs/serving.md`` for the full walkthrough.
"""

from .cache import ResultCache, make_cache_key
from .service import QueryRequest, QueryService, ServedResult
from .stats import MetricsRegistry, QueryStats

__all__ = [
    "QueryRequest",
    "QueryService",
    "ServedResult",
    "ResultCache",
    "make_cache_key",
    "MetricsRegistry",
    "QueryStats",
]
