"""Query-serving layer: batched execution, result caching, metrics.

Built on top of :class:`~repro.core.engine.MCKEngine`; see
``docs/serving.md`` for the full walkthrough.
"""

from .breaker import CircuitBreaker
from .cache import ResultCache, make_cache_key
from .service import QueryRequest, QueryService, ServedResult
from .stats import MetricsRegistry, QueryStats

__all__ = [
    "QueryRequest",
    "QueryService",
    "ServedResult",
    "CircuitBreaker",
    "ResultCache",
    "make_cache_key",
    "MetricsRegistry",
    "QueryStats",
]
