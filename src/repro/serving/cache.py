"""LRU + TTL result cache with keyword-scoped invalidation.

Keys are ``(frozenset(keywords), canonical_algorithm, epsilon)`` — keyword
*sets*, because an mCK answer is order-independent (and
:class:`~repro.core.query.MCKQuery` deduplicates), and the canonical
algorithm spelling, so ``"skeca_plus"`` and ``"SKECa+"`` share an entry.

Entries expire ``ttl_seconds`` after insertion (``None`` disables expiry)
and the least recently *used* entry is evicted beyond ``max_size``.  All
operations are thread-safe; the clock is injectable so tests can drive
TTL expiry deterministically.

Keyword-scoped invalidation
---------------------------
A live (mutable) store makes cached answers go stale: inserting one
``cafe`` object can change the answer of *every* query mentioning
``cafe`` and of no query that doesn't.  Instead of flushing the whole
cache per mutation, a :class:`KeywordGenerations` table keeps one
monotonically increasing counter per keyword; mutations
:meth:`~KeywordGenerations.bump` the counters of exactly the keywords
they touch.  Each cache entry records the *sum* of its query keywords'
generations at probe time, and a lookup whose recomputed sum differs
treats the entry as a miss and drops it (counted under
``invalidations``).

The stamp is the **sum**, not the max, of the per-keyword counters: with
``gen = {a: 5, b: 0}`` a bump of ``b`` leaves ``max(gen)`` unchanged at 5
— the stale entry would survive — while the sum strictly increases on
every bump of any member keyword.

Accounting
----------
Every entry removal funnels through one internal drop path tagged with a
reason, so the books always balance::

    inserts == live + evictions + expirations + invalidations

(an overwrite of a live key counts the displaced entry as an eviction).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Callable, Dict, Hashable, Iterable, Optional, Tuple

from ..core.engine import canonical_algorithm

__all__ = ["ResultCache", "KeywordGenerations", "make_cache_key"]

CacheKey = Tuple[frozenset, str, float]


def make_cache_key(
    keywords: Iterable[str], algorithm: str, epsilon: float
) -> CacheKey:
    """Build the canonical cache key for one query configuration."""
    return (
        frozenset(str(k) for k in keywords),
        canonical_algorithm(algorithm),
        float(epsilon),
    )


class KeywordGenerations:
    """Per-keyword monotone counters scoping invalidation to mutations.

    ``bump(keywords)`` is called by the mutation path (inserts *and*
    deletes — both can change any answer mentioning those keywords);
    ``stamp(keywords)`` is called by the cache on probe and fill.  A
    keyword never bumped has generation 0, so stamps need no warm-up.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._gen: Dict[str, int] = {}
        self._bumps = 0

    def bump(self, keywords: Iterable[str]) -> None:
        """Advance the generation of every given keyword by one."""
        with self._lock:
            for keyword in keywords:
                keyword = str(keyword)
                self._gen[keyword] = self._gen.get(keyword, 0) + 1
                self._bumps += 1

    def stamp(self, keywords: Iterable[str]) -> int:
        """The summed generation of a keyword set (0 for never-bumped)."""
        with self._lock:
            return sum(self._gen.get(str(k), 0) for k in keywords)

    def generation(self, keyword: str) -> int:
        with self._lock:
            return self._gen.get(str(keyword), 0)

    @property
    def bumps(self) -> int:
        """Total single-keyword bumps applied (telemetry)."""
        with self._lock:
            return self._bumps


class ResultCache:
    """A bounded, thread-safe LRU cache with TTL and keyword invalidation."""

    def __init__(
        self,
        max_size: int = 1024,
        ttl_seconds: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
        generations: Optional[KeywordGenerations] = None,
        on_invalidate: Optional[Callable[[int], None]] = None,
    ):
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError(f"ttl_seconds must be positive or None, got {ttl_seconds}")
        self.max_size = max(0, int(max_size))
        self.ttl_seconds = ttl_seconds
        self.generations = generations
        self._on_invalidate = on_invalidate
        self._clock = clock
        self._lock = threading.Lock()
        # key -> (value, expires_at, stamp)
        self._entries: "OrderedDict[Hashable, Tuple[object, Optional[float], int]]" = (
            OrderedDict()
        )
        self._hits = 0
        self._misses = 0
        self._inserts = 0
        self._evictions = 0
        self._expirations = 0
        self._invalidations = 0

    # ------------------------------------------------------------------ #
    # The single drop path: every removal is an eviction, an expiration
    # or an invalidation — nothing leaves the table unaccounted.
    # ------------------------------------------------------------------ #

    def _drop(self, key: Hashable, reason: str) -> None:
        del self._entries[key]
        if reason == "evicted":
            self._evictions += 1
        elif reason == "expired":
            self._expirations += 1
        elif reason == "invalidated":
            self._invalidations += 1
            if self._on_invalidate is not None:
                self._on_invalidate(1)
        else:  # pragma: no cover - programming error
            raise ValueError(f"unknown drop reason {reason!r}")

    def _current_stamp(self, key: Hashable) -> int:
        if self.generations is None:
            return 0
        # make_cache_key puts the keyword frozenset first; foreign keys
        # (plain hashables from direct users) carry no keyword scope.
        if isinstance(key, tuple) and key and isinstance(key[0], frozenset):
            return self.generations.stamp(key[0])
        return 0

    # ------------------------------------------------------------------ #

    def probe_stamp(self, key: Hashable) -> int:
        """The generation stamp a fill for ``key`` should carry.

        Captured *before* executing the query and passed back to
        :meth:`put`: a mutation landing mid-execution bumps the live
        generation past the captured stamp, so the (possibly stale)
        result is dropped on its next lookup instead of being trusted.
        """
        return self._current_stamp(key)

    def get(self, key: Hashable):
        """Return the cached value or ``None``; counts a hit or a miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            value, expires_at, stamp = entry
            if expires_at is not None and self._clock() >= expires_at:
                self._drop(key, "expired")
                self._misses += 1
                return None
            if stamp != self._current_stamp(key):
                self._drop(key, "invalidated")
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: Hashable, value, stamp: Optional[int] = None) -> None:
        """Insert ``value``; ``stamp`` should come from :meth:`probe_stamp`.

        When ``stamp`` is omitted the current generation stamp is used —
        correct only if no mutation could have raced the computation.
        """
        if self.max_size == 0:
            return
        expires_at = (
            None if self.ttl_seconds is None else self._clock() + self.ttl_seconds
        )
        with self._lock:
            if stamp is None:
                stamp = self._current_stamp(key)
            if key in self._entries:
                # Overwriting displaces a live entry: account it so
                # inserts == live + evictions + expirations + invalidations
                # keeps holding.
                self._drop(key, "evicted")
            self._entries[key] = (value, expires_at, stamp)
            self._entries.move_to_end(key)
            self._inserts += 1
            if len(self._entries) > self.max_size:
                # Prefer dropping entries that are already dead over
                # evicting live ones LRU-first; dead entries counted as
                # expirations would otherwise sit resident until probed.
                now = self._clock()
                stale = [
                    k
                    for k, (_v, exp, _s) in self._entries.items()
                    if exp is not None and now >= exp
                ]
                for k in stale:
                    self._drop(k, "expired")
            while len(self._entries) > self.max_size:
                oldest = next(iter(self._entries))
                self._drop(oldest, "evicted")

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        """Presence check without touching LRU order or hit/miss counters.

        A dead entry (expired or generation-stale) is dropped and
        accounted rather than left resident: before this, a ``key in
        cache`` probe would report False yet keep the dead entry
        occupying capacity.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return False
            _value, expires_at, stamp = entry
            if expires_at is not None and self._clock() >= expires_at:
                self._drop(key, "expired")
                return False
            if stamp != self._current_stamp(key):
                self._drop(key, "invalidated")
                return False
            return True

    def clear(self) -> None:
        """Drop everything (each entry accounted as an eviction)."""
        with self._lock:
            for key in list(self._entries):
                self._drop(key, "evicted")

    def purge_expired(self) -> int:
        """Drop every expired entry eagerly; returns how many were dropped."""
        if self.ttl_seconds is None:
            return 0
        now = self._clock()
        with self._lock:
            stale = [
                k
                for k, (_v, expires_at, _s) in self._entries.items()
                if expires_at is not None and now >= expires_at
            ]
            for k in stale:
                self._drop(k, "expired")
            return len(stale)

    def invalidate_keywords(self, keywords: Iterable[str]) -> int:
        """Eagerly drop every entry whose keyword set intersects ``keywords``.

        The generation mechanism already invalidates lazily on probe;
        this eager sweep exists for explicit flushes (an operator purging
        a keyword) and returns how many entries were dropped.
        """
        touched = frozenset(str(k) for k in keywords)
        with self._lock:
            doomed = [
                k
                for k in self._entries
                if isinstance(k, tuple)
                and k
                and isinstance(k[0], frozenset)
                and k[0] & touched
            ]
            for k in doomed:
                self._drop(k, "invalidated")
            return len(doomed)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "size": len(self._entries),
                "max_size": self.max_size,
                "hits": self._hits,
                "misses": self._misses,
                "inserts": self._inserts,
                "evictions": self._evictions,
                "expirations": self._expirations,
                "invalidations": self._invalidations,
            }
