"""LRU + TTL result cache for answered mCK queries.

Keys are ``(frozenset(keywords), canonical_algorithm, epsilon)`` — keyword
*sets*, because an mCK answer is order-independent (and
:class:`~repro.core.query.MCKQuery` deduplicates), and the canonical
algorithm spelling, so ``"skeca_plus"`` and ``"SKECa+"`` share an entry.

Entries expire ``ttl_seconds`` after insertion (``None`` disables expiry)
and the least recently *used* entry is evicted beyond ``max_size``.  All
operations are thread-safe; the clock is injectable so tests can drive
TTL expiry deterministically.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Callable, Dict, Hashable, Iterable, Optional, Tuple

from ..core.engine import canonical_algorithm

__all__ = ["ResultCache", "make_cache_key"]

CacheKey = Tuple[frozenset, str, float]


def make_cache_key(
    keywords: Iterable[str], algorithm: str, epsilon: float
) -> CacheKey:
    """Build the canonical cache key for one query configuration."""
    return (
        frozenset(str(k) for k in keywords),
        canonical_algorithm(algorithm),
        float(epsilon),
    )


class ResultCache:
    """A bounded, thread-safe LRU cache with optional per-entry TTL."""

    def __init__(
        self,
        max_size: int = 1024,
        ttl_seconds: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError(f"ttl_seconds must be positive or None, got {ttl_seconds}")
        self.max_size = max(0, int(max_size))
        self.ttl_seconds = ttl_seconds
        self._clock = clock
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Hashable, Tuple[object, Optional[float]]]" = (
            OrderedDict()
        )
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._expirations = 0

    # ------------------------------------------------------------------ #

    def get(self, key: Hashable):
        """Return the cached value or ``None``; counts a hit or a miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            value, expires_at = entry
            if expires_at is not None and self._clock() >= expires_at:
                del self._entries[key]
                self._expirations += 1
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: Hashable, value) -> None:
        if self.max_size == 0:
            return
        expires_at = (
            None if self.ttl_seconds is None else self._clock() + self.ttl_seconds
        )
        with self._lock:
            self._entries[key] = (value, expires_at)
            self._entries.move_to_end(key)
            if len(self._entries) > self.max_size:
                # Prefer dropping entries that are already dead over
                # evicting live ones LRU-first; dead entries counted as
                # expirations would otherwise sit resident until probed.
                now = self._clock()
                stale = [
                    k
                    for k, (_v, exp) in self._entries.items()
                    if exp is not None and now >= exp
                ]
                for k in stale:
                    del self._entries[k]
                self._expirations += len(stale)
            while len(self._entries) > self.max_size:
                self._entries.popitem(last=False)
                self._evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        """Presence check without touching LRU order or hit/miss counters.

        An expired entry is dropped (and counted as an expiration) rather
        than left resident: before this, a ``key in cache`` probe would
        report False yet keep the dead entry occupying capacity.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return False
            _value, expires_at = entry
            if expires_at is not None and self._clock() >= expires_at:
                del self._entries[key]
                self._expirations += 1
                return False
            return True

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def purge_expired(self) -> int:
        """Drop every expired entry eagerly; returns how many were dropped."""
        if self.ttl_seconds is None:
            return 0
        now = self._clock()
        with self._lock:
            stale = [
                k
                for k, (_v, expires_at) in self._entries.items()
                if expires_at is not None and now >= expires_at
            ]
            for k in stale:
                del self._entries[k]
            self._expirations += len(stale)
            return len(stale)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "size": len(self._entries),
                "max_size": self.max_size,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "expirations": self._expirations,
            }
