"""Per-query statistics and aggregate metrics for the serving layer.

Every answered query yields one :class:`QueryStats` record: where the time
went (context compile vs. algorithm), whether the result came from the
cache, and the algorithm's search/pruning counters (circleScan
invocations, candidate circles, Lemma-3 pole prunes, ...) as reported
through :class:`~repro.core.common.Instrumentation`.

A :class:`MetricsRegistry` folds those records into two parallel views:

* per-algorithm aggregates (exact latency mean/p50/p95 over the retained
  samples, counter sums) — the JSON document the experiment harness, the
  benchmark suite and the ``mck serve-bench`` subcommand all dump;
* histogram / counter / gauge *families*
  (:mod:`repro.observability.metrics`) with fixed log-scale buckets and
  ``algorithm`` / ``cache`` labels — constant memory regardless of query
  volume, and renderable as Prometheus text exposition via
  :meth:`MetricsRegistry.to_prometheus`.
"""

from __future__ import annotations

import json
import math
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..observability.exporters import render_prometheus
from ..observability.metrics import Counter, Gauge, Histogram

__all__ = ["QueryStats", "MetricsRegistry"]


@dataclass
class QueryStats:
    """Everything measured while answering one mCK query."""

    keywords: Tuple[str, ...]
    algorithm: str
    epsilon: float
    #: Seconds compiling (or fetching the cached) query context.
    context_seconds: float = 0.0
    #: Seconds inside the algorithm proper.
    algorithm_seconds: float = 0.0
    #: End-to-end seconds as observed by the service (includes cache probe).
    total_seconds: float = 0.0
    cache_hit: bool = False
    success: bool = True
    #: True when admission control rejected the request (it never ran; a
    #: rejected record is not folded into latency aggregates).
    rejected: bool = False
    #: True when the answer is a degraded (anytime) incumbent returned on
    #: an expired deadline or a pool fallback, not a completed run.
    degraded: bool = False
    #: Certified quality tag of the answer (``exact`` / ``approx_2sqrt3``
    #: / ``greedy_2x`` / ``partial``), or ``""`` when untagged.
    quality: str = ""
    diameter: float = math.nan
    group_size: int = 0
    #: Correlation id of the serving request that produced this record.
    correlation_id: str = ""
    #: Trace id of the request's span tree (``""`` untraced); carried as
    #: the histogram exemplar so a latency bucket links back to the
    #: flight recorder's retained trace.
    trace_id: str = ""
    #: Search/pruning counters: ``circle_scans``, ``binary_steps``,
    #: ``candidate_circles``, ``pruned_poles``, ``property1_skips``, ...
    counters: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "keywords": list(self.keywords),
            "algorithm": self.algorithm,
            "epsilon": self.epsilon,
            "context_seconds": self.context_seconds,
            "algorithm_seconds": self.algorithm_seconds,
            "total_seconds": self.total_seconds,
            "cache_hit": self.cache_hit,
            "success": self.success,
            "rejected": self.rejected,
            "degraded": self.degraded,
            "quality": self.quality,
            "diameter": None if math.isnan(self.diameter) else self.diameter,
            "group_size": self.group_size,
            "correlation_id": self.correlation_id,
            "trace_id": self.trace_id,
            "counters": dict(self.counters),
        }


class _AlgorithmAggregate:
    """Latency and counter totals for one algorithm (lock held by caller)."""

    __slots__ = ("queries", "failures", "cache_hits", "degraded", "latencies",
                 "context_seconds", "algorithm_seconds", "counters")

    def __init__(self) -> None:
        self.queries = 0
        self.failures = 0
        self.cache_hits = 0
        self.degraded = 0
        self.latencies: List[float] = []
        self.context_seconds = 0.0
        self.algorithm_seconds = 0.0
        self.counters: Dict[str, float] = {}

    def add(self, stats: QueryStats) -> None:
        self.queries += 1
        if not stats.success:
            self.failures += 1
        if stats.degraded:
            self.degraded += 1
        if stats.cache_hit:
            self.cache_hits += 1
        else:
            # Latency aggregates describe real algorithm executions; cache
            # hits would drag every percentile toward ~0 and hide the
            # algorithm's true cost.
            self.latencies.append(stats.total_seconds)
            self.context_seconds += stats.context_seconds
            self.algorithm_seconds += stats.algorithm_seconds
            for name, value in stats.counters.items():
                self.counters[name] = self.counters.get(name, 0.0) + value

    def as_dict(self) -> dict:
        from ..experiments.metrics import percentile

        executed = len(self.latencies)

        def _maybe(value: float) -> Optional[float]:
            # A cache-hit-only run has zero executed samples; every latency
            # statistic is then explicitly None (never NaN, never 0/0).
            if executed == 0 or value != value:
                return None
            return value

        return {
            "queries": self.queries,
            "executed": executed,
            "cache_hits": self.cache_hits,
            "failures": self.failures,
            "degraded": self.degraded,
            "latency_seconds": {
                "samples": executed,
                "mean": _maybe(sum(self.latencies) / executed) if executed else None,
                "p50": _maybe(percentile(self.latencies, 50.0)),
                "p95": _maybe(percentile(self.latencies, 95.0)),
                "total": sum(self.latencies),
            },
            "context_seconds_total": self.context_seconds,
            "algorithm_seconds_total": self.algorithm_seconds,
            "counters": dict(self.counters),
        }


class MetricsRegistry:
    """Thread-safe aggregate of :class:`QueryStats` plus metric families."""

    _default: Optional["MetricsRegistry"] = None
    _default_lock = threading.Lock()

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._by_algorithm: Dict[str, _AlgorithmAggregate] = {}
        self._cache: Dict[str, int] = {}
        self._records = 0
        # Built-in metric families; custom ones join via histogram()/
        # counter()/gauge().
        self._families: Dict[str, object] = {}
        self.latency_histogram = self.histogram(
            "mck_query_latency_seconds",
            help="End-to-end query latency by algorithm and cache outcome.",
            label_names=("algorithm", "cache"),
        )
        self.algorithm_histogram = self.histogram(
            "mck_algorithm_seconds",
            help="Seconds inside the algorithm proper (cache misses only).",
            label_names=("algorithm",),
        )
        self.queries_counter = self.counter(
            "mck_queries_total",
            help="Served queries by algorithm, cache outcome and success.",
            label_names=("algorithm", "cache", "success"),
        )
        self.work_counter = self.counter(
            "mck_algorithm_work_total",
            help="Algorithm search/pruning work counters (circle_scans, ...).",
            label_names=("algorithm", "counter"),
        )
        self.cache_gauge = self.gauge(
            "mck_result_cache",
            help="Result-cache counters from the latest snapshot.",
            label_names=("stat",),
        )
        self.degraded_counter = self.counter(
            "mck_degraded_total",
            help="Degraded (anytime incumbent / fallback) answers served.",
            label_names=("algorithm", "quality"),
        )
        self.pool_retry_counter = self.counter(
            "mck_pool_retries_total",
            help="EXACT process-pool submissions retried after a pool failure.",
            label_names=("algorithm",),
        )
        self.pool_fallback_counter = self.counter(
            "mck_pool_fallbacks_total",
            help="Queries answered by the in-process fallback after the "
            "pool retry budget was exhausted or the breaker was open.",
            label_names=("algorithm",),
        )
        self.circuit_transition_counter = self.counter(
            "mck_circuit_transitions_total",
            help="Process-pool circuit-breaker state transitions.",
            label_names=("state",),
        )
        self.circuit_open_gauge = self.gauge(
            "mck_circuit_open",
            help="1 while the process-pool circuit breaker is open.",
        )
        self.admission_rejected_counter = self.counter(
            "mck_admission_rejected_total",
            help="Requests rejected or shed by admission control, by reason "
            "(capacity, shed_oldest, deadline_unmeetable, "
            "worker_backpressure, shutdown).",
            label_names=("reason",),
        )
        self.queue_depth_gauge = self.gauge(
            "mck_queue_depth",
            help="Requests waiting in a bounded queue (admission queue or a "
            "distributed worker's task queue).",
            label_names=("queue",),
        )
        self.inflight_gauge = self.gauge(
            "mck_inflight",
            help="Requests currently executing, by queue.",
            label_names=("queue",),
        )
        self.concurrency_limit_gauge = self.gauge(
            "mck_concurrency_limit",
            help="Current adaptive concurrency limit in cost-weighted units.",
        )
        self.live_epoch_gauge = self.gauge(
            "mck_live_epoch",
            help="Currently published epoch of the live store, per shard.",
            label_names=("shard",),
        )
        self.delta_size_gauge = self.gauge(
            "mck_delta_size",
            help="Mutations (adds + tombstones) in the current delta "
            "overlay, per shard.",
            label_names=("shard",),
        )
        self.compactions_counter = self.counter(
            "mck_compactions_total",
            help="Delta-into-base compactions, by outcome (ok, failed) "
            "and shard.",
            label_names=("outcome", "shard"),
        )
        self.cache_invalidation_counter = self.counter(
            "mck_cache_invalidations_total",
            help="Cached results dropped by keyword-scoped invalidation.",
        )
        self.wal_records_counter = self.counter(
            "mck_wal_records_total",
            help="Records appended to the write-ahead log, by op and shard.",
            label_names=("op", "shard"),
        )
        self.checkpoints_counter = self.counter(
            "mck_checkpoints_total",
            help="Checkpoint attempts (segment + manifest + WAL truncate), "
            "by outcome (ok, failed).",
            label_names=("outcome",),
        )
        self.recovery_seconds_gauge = self.gauge(
            "mck_recovery_seconds",
            help="Wall-clock seconds the last restart spent recovering "
            "(manifest read + segment load + WAL tail replay).",
        )
        self.recovery_replayed_gauge = self.gauge(
            "mck_recovery_wal_records_replayed",
            help="WAL records replayed by the last recovery; bounded by the "
            "checkpoint cadence, not by total log history.",
        )
        self.segment_crc_failures_counter = self.counter(
            "mck_segment_crc_failures_total",
            help="Checkpoint segments or manifests that failed verification "
            "at recovery and were skipped (recovery degraded gracefully).",
        )
        # -- scale-out / replication families (see repro.replication) -- #
        self.replication_lag_records_gauge = self.gauge(
            "mck_replication_lag_records",
            help="WAL records the replica has not yet applied "
            "(primary last acked seq minus replica applied seq).",
            label_names=("shard", "replica"),
        )
        self.replication_lag_seconds_gauge = self.gauge(
            "mck_replication_lag_seconds",
            help="Seconds the replica has continuously been behind the "
            "primary's acked watermark (0 when caught up).",
            label_names=("shard", "replica"),
        )
        self.replica_applied_counter = self.counter(
            "mck_replica_applied_total",
            help="Shipped WAL records applied by each read replica.",
            label_names=("shard", "replica"),
        )
        self.replica_rebootstraps_counter = self.counter(
            "mck_replica_rebootstraps_total",
            help="Replicas that fell behind a truncated log and rebuilt "
            "themselves from the newest bootstrap checkpoint segment.",
            label_names=("shard",),
        )
        self.failovers_counter = self.counter(
            "mck_failovers_total",
            help="Replica promotions after a shard primary died.",
            label_names=("shard",),
        )
        self.fenced_writes_counter = self.counter(
            "mck_fenced_writes_total",
            help="Writes rejected because they arrived through a primary "
            "handle from a superseded fencing epoch (zombie primary).",
            label_names=("shard",),
        )
        self.fanout_counter = self.counter(
            "mck_fanout_shards_total",
            help="Per-shard outcomes of scatter-gather query fan-out "
            "(answered, missed, infeasible, failed).",
            label_names=("outcome",),
        )
        self.partial_merge_counter = self.counter(
            "mck_partial_merges_total",
            help="Scatter-gather answers tagged `partial` because at "
            "least one shard missed the deadline or failed.",
        )
        self.shard_splits_counter = self.counter(
            "mck_shard_splits_total",
            help="Live shard splits, by outcome (ok, failed).",
            label_names=("outcome",),
        )
        self.shard_objects_gauge = self.gauge(
            "mck_shard_objects",
            help="Live objects per shard (hot-shard detection input).",
            label_names=("shard",),
        )

    @classmethod
    def default(cls) -> "MetricsRegistry":
        """The process-wide registry used when no explicit one is wired."""
        with cls._default_lock:
            if cls._default is None:
                cls._default = cls()
            return cls._default

    # ------------------------------------------------------------------ #
    # Metric-family accessors (create on first use, return existing after)
    # ------------------------------------------------------------------ #

    def histogram(
        self,
        name: str,
        help: str = "",
        label_names: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> Histogram:
        return self._family(
            name, lambda: Histogram(name, help, label_names, buckets), Histogram
        )

    def counter(
        self, name: str, help: str = "", label_names: Sequence[str] = ()
    ) -> Counter:
        return self._family(name, lambda: Counter(name, help, label_names), Counter)

    def gauge(
        self, name: str, help: str = "", label_names: Sequence[str] = ()
    ) -> Gauge:
        return self._family(name, lambda: Gauge(name, help, label_names), Gauge)

    def _family(self, name: str, factory, expected_type):
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = self._families[name] = factory()
            elif not isinstance(family, expected_type):
                raise ValueError(
                    f"metric {name!r} already registered as {type(family).__name__}"
                )
            return family

    def metric_families(self) -> List[object]:
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    # ------------------------------------------------------------------ #

    def record(self, stats: QueryStats) -> None:
        with self._lock:
            self._records += 1
            agg = self._by_algorithm.get(stats.algorithm)
            if agg is None:
                agg = self._by_algorithm[stats.algorithm] = _AlgorithmAggregate()
            agg.add(stats)
        # Family updates take each family's own lock; done outside ours so
        # the registry lock stays small and un-nested.
        cache_label = "hit" if stats.cache_hit else "miss"
        self.latency_histogram.observe(
            stats.total_seconds,
            exemplar={"trace_id": stats.trace_id} if stats.trace_id else None,
            algorithm=stats.algorithm,
            cache=cache_label,
        )
        self.queries_counter.inc(
            1.0,
            algorithm=stats.algorithm,
            cache=cache_label,
            success="true" if stats.success else "false",
        )
        if stats.degraded:
            self.degraded_counter.inc(
                1.0,
                algorithm=stats.algorithm,
                quality=stats.quality or "unrated",
            )
        if not stats.cache_hit:
            self.algorithm_histogram.observe(
                stats.algorithm_seconds, algorithm=stats.algorithm
            )
            for name, value in stats.counters.items():
                self.work_counter.inc(
                    value, algorithm=stats.algorithm, counter=name
                )

    def service_time_p95(self, algorithm: Optional[str] = None) -> Optional[float]:
        """Observed p95 *execution* latency in seconds, or ``None`` cold.

        Reads the ``mck_query_latency_seconds`` histogram's cache-miss
        series (cache hits are not service time).  With ``algorithm`` the
        answer is that algorithm's p95; without, a sample-count-weighted
        average over every algorithm's p95 — the admission layer's
        deadline-aware shed policy uses this as its service-time estimate.
        """
        hist = self.latency_histogram
        if algorithm is not None:
            return hist.percentile(95.0, algorithm=algorithm, cache="miss")
        total = 0
        acc = 0.0
        for key in hist.label_sets():
            labels = dict(zip(hist.label_names, key))
            if labels.get("cache") != "miss":
                continue
            count = hist.count(**labels)
            p95 = hist.percentile(95.0, **labels)
            if count and p95 is not None:
                total += count
                acc += p95 * count
        return acc / total if total else None

    def record_cache(self, counters: Dict[str, int]) -> None:
        """Fold in (overwrite) the result cache's counter snapshot."""
        with self._lock:
            self._cache.update(counters)
        for name, value in counters.items():
            self.cache_gauge.set(float(value), stat=name)

    @property
    def total_queries(self) -> int:
        with self._lock:
            return self._records

    def as_dict(self) -> dict:
        histograms = {
            family.name: family.snapshot()
            for family in self.metric_families()
            if isinstance(family, Histogram)
        }
        with self._lock:
            return {
                "queries_total": self._records,
                "cache": dict(self._cache),
                "algorithms": {
                    name: agg.as_dict()
                    for name, agg in sorted(self._by_algorithm.items())
                },
                "histograms": histograms,
            }

    def to_json(self, indent: int = 2) -> str:
        # allow_nan=False: a NaN anywhere in the dump is a bug (the
        # aggregation must emit None for undefined statistics).
        return json.dumps(
            self.as_dict(), indent=indent, sort_keys=True, allow_nan=False
        )

    def to_prometheus(self, exemplars: bool = False) -> str:
        """Render every metric family as Prometheus text exposition.

        ``exemplars=True`` adds OpenMetrics exemplar suffixes (trace ids)
        to histogram buckets; the default stays parseable by classic
        Prometheus text parsers.
        """
        return render_prometheus(self.metric_families(), exemplars=exemplars)

    def reset(self) -> None:
        with self._lock:
            self._by_algorithm.clear()
            self._cache.clear()
            self._records = 0
            self._families.clear()
        self.__init__()
