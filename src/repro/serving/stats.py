"""Per-query statistics and aggregate metrics for the serving layer.

Every answered query yields one :class:`QueryStats` record: where the time
went (context compile vs. algorithm), whether the result came from the
cache, and the algorithm's search/pruning counters (circleScan
invocations, candidate circles, Lemma-3 pole prunes, ...) as reported
through :class:`~repro.core.common.Instrumentation`.

A :class:`MetricsRegistry` folds those records into per-algorithm
aggregates (latency mean/p50/p95, counter sums) plus service-wide cache
counters, and renders everything as one JSON document — the shape the
experiment harness, the benchmark suite and the ``mck serve-bench``
subcommand all dump.
"""

from __future__ import annotations

import json
import math
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["QueryStats", "MetricsRegistry"]


@dataclass
class QueryStats:
    """Everything measured while answering one mCK query."""

    keywords: Tuple[str, ...]
    algorithm: str
    epsilon: float
    #: Seconds compiling (or fetching the cached) query context.
    context_seconds: float = 0.0
    #: Seconds inside the algorithm proper.
    algorithm_seconds: float = 0.0
    #: End-to-end seconds as observed by the service (includes cache probe).
    total_seconds: float = 0.0
    cache_hit: bool = False
    success: bool = True
    diameter: float = math.nan
    group_size: int = 0
    #: Search/pruning counters: ``circle_scans``, ``binary_steps``,
    #: ``candidate_circles``, ``pruned_poles``, ``property1_skips``, ...
    counters: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "keywords": list(self.keywords),
            "algorithm": self.algorithm,
            "epsilon": self.epsilon,
            "context_seconds": self.context_seconds,
            "algorithm_seconds": self.algorithm_seconds,
            "total_seconds": self.total_seconds,
            "cache_hit": self.cache_hit,
            "success": self.success,
            "diameter": None if math.isnan(self.diameter) else self.diameter,
            "group_size": self.group_size,
            "counters": dict(self.counters),
        }


class _AlgorithmAggregate:
    """Latency and counter totals for one algorithm (lock held by caller)."""

    __slots__ = ("queries", "failures", "cache_hits", "latencies",
                 "context_seconds", "algorithm_seconds", "counters")

    def __init__(self) -> None:
        self.queries = 0
        self.failures = 0
        self.cache_hits = 0
        self.latencies: List[float] = []
        self.context_seconds = 0.0
        self.algorithm_seconds = 0.0
        self.counters: Dict[str, float] = {}

    def add(self, stats: QueryStats) -> None:
        self.queries += 1
        if not stats.success:
            self.failures += 1
        if stats.cache_hit:
            self.cache_hits += 1
        else:
            # Latency aggregates describe real algorithm executions; cache
            # hits would drag every percentile toward ~0 and hide the
            # algorithm's true cost.
            self.latencies.append(stats.total_seconds)
            self.context_seconds += stats.context_seconds
            self.algorithm_seconds += stats.algorithm_seconds
            for name, value in stats.counters.items():
                self.counters[name] = self.counters.get(name, 0.0) + value

    def as_dict(self) -> dict:
        from ..experiments.metrics import percentile

        executed = len(self.latencies)
        return {
            "queries": self.queries,
            "executed": executed,
            "cache_hits": self.cache_hits,
            "failures": self.failures,
            "latency_seconds": {
                "mean": (sum(self.latencies) / executed) if executed else None,
                "p50": percentile(self.latencies, 50.0) if executed else None,
                "p95": percentile(self.latencies, 95.0) if executed else None,
                "total": sum(self.latencies),
            },
            "context_seconds_total": self.context_seconds,
            "algorithm_seconds_total": self.algorithm_seconds,
            "counters": dict(self.counters),
        }


class MetricsRegistry:
    """Thread-safe aggregate of :class:`QueryStats` plus cache counters."""

    _default: Optional["MetricsRegistry"] = None
    _default_lock = threading.Lock()

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._by_algorithm: Dict[str, _AlgorithmAggregate] = {}
        self._cache: Dict[str, int] = {}
        self._records = 0

    @classmethod
    def default(cls) -> "MetricsRegistry":
        """The process-wide registry used when no explicit one is wired."""
        with cls._default_lock:
            if cls._default is None:
                cls._default = cls()
            return cls._default

    # ------------------------------------------------------------------ #

    def record(self, stats: QueryStats) -> None:
        with self._lock:
            self._records += 1
            agg = self._by_algorithm.get(stats.algorithm)
            if agg is None:
                agg = self._by_algorithm[stats.algorithm] = _AlgorithmAggregate()
            agg.add(stats)

    def record_cache(self, counters: Dict[str, int]) -> None:
        """Fold in (overwrite) the result cache's counter snapshot."""
        with self._lock:
            self._cache.update(counters)

    @property
    def total_queries(self) -> int:
        with self._lock:
            return self._records

    def as_dict(self) -> dict:
        with self._lock:
            return {
                "queries_total": self._records,
                "cache": dict(self._cache),
                "algorithms": {
                    name: agg.as_dict()
                    for name, agg in sorted(self._by_algorithm.items())
                },
            }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    def reset(self) -> None:
        with self._lock:
            self._by_algorithm.clear()
            self._cache.clear()
            self._records = 0
