"""Overload protection: bounded admission, load shedding, adaptive limits.

The ROADMAP's target is a service under heavy traffic; a service without
admission control does not *degrade* under overload, it *collapses* —
every queued request eventually misses its deadline, and the queue itself
costs memory and scheduling work.  This module makes overload a first-
class, observable state with three cooperating mechanisms:

:class:`AdmissionController`
    A bounded FIFO admission queue in front of a fixed-size worker-thread
    pool.  When the queue is full a pluggable *shedding policy* decides
    who pays: the newcomer (``reject-newest``), the oldest queued request
    (``reject-oldest``), or whichever queued request provably cannot meet
    its deadline anyway (``deadline-aware``).  Every rejection is a typed
    :class:`~repro.exceptions.QueryRejected` (429-style) — cheap,
    predictable, and catchable — never an unbounded wait.

:class:`AdaptiveConcurrencyLimiter`
    An AIMD limiter (in the style of Netflix's concurrency-limits) that
    governs how much *work* may be in flight, in cost-weighted units
    rather than a fixed thread count.  Execution latencies are compared
    against a per-key baseline: while latency stays near the baseline the
    limit creeps up additively; when latency degrades the limit backs off
    multiplicatively, shrinking the inflight window until the system
    recovers.

:func:`estimate_cost`
    A per-query cost weight from the algorithm, the number of keywords m,
    and the query keywords' document frequencies.  EXACT's branch-and-
    bound is NP-hard in m (cf. the exponential baselines in the related
    nearest-keyword-set literature), so one EXACT query is charged like
    several GKG queries and cannot silently starve them.

Fault injection: every submission passes the ``serving.admission.capacity``
site (see :mod:`repro.testing.faults`); arming a
:class:`~repro.exceptions.QueryRejected` there simulates a full queue
without generating real load.

Observability: the controller reports queue depth, inflight work, the
live concurrency limit and every rejection through injectable callbacks;
:class:`~repro.serving.stats.MetricsRegistry` wires them to the
``mck_queue_depth`` / ``mck_inflight`` / ``mck_concurrency_limit`` gauges
and the ``mck_admission_rejected_total{reason=...}`` counter.  See
``docs/overload.md`` for the tuning guide.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from typing import Callable, Deque, Dict, Optional, Tuple

from ..exceptions import QueryRejected
from ..observability.logging import get_logger
from ..testing import faults as _faults

__all__ = [
    "REJECT_NEWEST",
    "REJECT_OLDEST",
    "DEADLINE_AWARE",
    "SHED_POLICIES",
    "estimate_cost",
    "AdaptiveConcurrencyLimiter",
    "AdmissionController",
]

_log = get_logger("serving.admission")

REJECT_NEWEST = "reject-newest"
REJECT_OLDEST = "reject-oldest"
DEADLINE_AWARE = "deadline-aware"
#: The shedding policies :class:`AdmissionController` accepts.
SHED_POLICIES = (REJECT_NEWEST, REJECT_OLDEST, DEADLINE_AWARE)


# --------------------------------------------------------------------- #
# Cost model
# --------------------------------------------------------------------- #

#: Relative base cost per algorithm, GKG = 1.  The approximation family
#: costs a small constant factor more (binary search over circleScan
#: sweeps); EXACT's branch-and-bound dominates everything.
_ALGORITHM_COST = {
    "GKG": 1.0,
    "SKEC": 3.0,
    "SKECa": 2.0,
    "SKECa+": 2.0,
    "EXACT": 8.0,
}

#: Cap on a single query's weight so one pathological request cannot
#: permanently exceed the concurrency limit (it would still run alone
#: via the inflight==0 guarantee, but bounding keeps estimates sane).
MAX_COST = 64.0


def estimate_cost(
    algorithm: str, m: int, min_keyword_frequency: float = 0.0
) -> float:
    """Estimated relative cost of one query, in GKG-sized units.

    Parameters
    ----------
    algorithm:
        Canonical algorithm name (``GKG`` ... ``EXACT``).
    m:
        Number of query keywords.  The approximation algorithms scale
        mildly with m; EXACT's search space grows exponentially.
    min_keyword_frequency:
        Document frequency of the *least frequent* query keyword as a
        fraction of the dataset (0..1).  The paper's algorithms anchor
        their search on the rarest keyword's objects, so a query whose
        rarest keyword is still ubiquitous scans far more candidates.
    """
    base = _ALGORITHM_COST.get(algorithm, 2.0)
    if algorithm == "EXACT":
        # NP-hard in m: each extra keyword multiplies the subset search.
        m_factor = 1.5 ** max(0, m - 2)
    else:
        m_factor = 1.0 + 0.25 * max(0, m - 2)
    rel = min(1.0, max(0.0, min_keyword_frequency))
    freq_factor = 1.0 + 9.0 * rel
    return min(MAX_COST, base * m_factor * freq_factor)


# --------------------------------------------------------------------- #
# Adaptive concurrency
# --------------------------------------------------------------------- #


class AdaptiveConcurrencyLimiter:
    """AIMD concurrency limit driven by latency-vs-baseline.

    The limit is a float in *cost units* (see :func:`estimate_cost`), not
    a thread count: the worker pool bounds parallelism, the limiter bounds
    admitted work.  Each completed execution reports its latency under a
    ``key`` (the serving layer uses the algorithm name); the limiter keeps
    one latency baseline per key, so a slow EXACT completing next to fast
    GKGs is compared against *EXACT's* baseline, not a global mush.

    * sample ≤ ``tolerance`` × baseline → additive increase
      (``limit += increase / limit``, the classic one-per-window ramp);
    * sample >  ``tolerance`` × baseline → multiplicative decrease
      (``limit *= backoff``).

    The baseline is a drifting minimum: it rises by ``baseline_drift`` per
    sample and snaps down to any faster observation, so it tracks the
    uncongested service time without being poisoned by overload samples.
    """

    def __init__(
        self,
        initial: float = 16.0,
        min_limit: float = 1.0,
        max_limit: float = 128.0,
        tolerance: float = 2.0,
        increase: float = 1.0,
        backoff: float = 0.75,
        baseline_drift: float = 0.05,
        on_change: Optional[Callable[[float], None]] = None,
    ):
        if not min_limit <= initial <= max_limit:
            raise ValueError("need min_limit <= initial <= max_limit")
        if not 0.0 < backoff < 1.0:
            raise ValueError("backoff must be in (0, 1)")
        if tolerance < 1.0:
            raise ValueError("tolerance must be >= 1")
        self.min_limit = float(min_limit)
        self.max_limit = float(max_limit)
        self.initial = float(initial)
        self.tolerance = float(tolerance)
        self.increase = float(increase)
        self.backoff = float(backoff)
        self.baseline_drift = float(baseline_drift)
        self._on_change = on_change
        self._lock = threading.Lock()
        self._limit = float(initial)
        self._baselines: Dict[str, float] = {}
        #: Samples that triggered a multiplicative decrease.
        self.decreases = 0
        #: Samples that triggered an additive increase.
        self.increases = 0

    @property
    def limit(self) -> float:
        with self._lock:
            return self._limit

    def baseline(self, key: str = "") -> Optional[float]:
        with self._lock:
            return self._baselines.get(key)

    def on_complete(self, latency_seconds: float, key: str = "") -> None:
        """Feed one execution latency; adjusts the limit (AIMD)."""
        latency = max(0.0, float(latency_seconds))
        with self._lock:
            baseline = self._baselines.get(key)
            if baseline is None:
                # First observation for this key: it *is* the baseline;
                # there is nothing to compare against yet.
                self._baselines[key] = latency
                return
            baseline = min(latency, baseline * (1.0 + self.baseline_drift))
            self._baselines[key] = baseline
            if latency <= self.tolerance * max(baseline, 1e-9):
                self._limit = min(
                    self.max_limit, self._limit + self.increase / self._limit
                )
                self.increases += 1
            else:
                self._limit = max(self.min_limit, self._limit * self.backoff)
                self.decreases += 1
            limit = self._limit
        if self._on_change is not None:
            self._on_change(limit)

    def reset(self) -> None:
        with self._lock:
            self._limit = self.initial
            self._baselines.clear()
            self.decreases = 0
            self.increases = 0


# --------------------------------------------------------------------- #
# Admission control
# --------------------------------------------------------------------- #


class _Entry:
    """One admitted-but-not-finished request."""

    __slots__ = (
        "fn",
        "args",
        "future",
        "cost",
        "deadline_at",
        "enqueued",
        "key",
        "skips",
    )

    def __init__(self, fn, args, future, cost, deadline_at, enqueued, key):
        self.fn = fn
        self.args = args
        self.future = future
        self.cost = cost
        #: Absolute monotonic time by which the caller needs the answer
        #: (``None`` when the request carries no timeout).
        self.deadline_at = deadline_at
        self.enqueued = enqueued
        self.key = key
        #: Times a cheaper entry was dispatched past this one while it
        #: sat at the head of the queue (starvation guard).
        self.skips = 0


def _noop(*_args, **_kwargs) -> None:
    return None


class AdmissionController:
    """Bounded admission queue + shedding policy + adaptive inflight limit.

    Parameters
    ----------
    max_workers:
        Worker-thread count — the hard upper bound on parallelism.  The
        adaptive limiter throttles *below* this bound in cost units.
    capacity:
        Maximum queued (accepted but not yet executing) requests.
        ``None`` disables the bound (not recommended outside tests).
    policy:
        One of :data:`SHED_POLICIES`; decides who is rejected when the
        queue is full (and, for ``deadline-aware``, whom to shed early).
    limiter:
        An :class:`AdaptiveConcurrencyLimiter`; a permissive default is
        built when omitted.
    service_time:
        ``service_time(key) -> Optional[float]`` returning the observed
        p95 execution time for ``key`` (the serving layer answers from
        its latency histograms).  Only the ``deadline-aware`` policy
        consults it; ``None`` answers disable prediction (cold start).
    clock:
        Injectable monotonic clock (tests).
    on_reject / on_depth / on_inflight / on_limit:
        Observability callbacks: ``on_reject(reason)`` per rejection,
        ``on_depth(depth)`` / ``on_inflight(count, cost)`` on queue and
        inflight changes, ``on_limit(limit)`` on limiter adjustments.

    Counter semantics (see :meth:`counters`): every ``submit`` either
    raises/resolves :class:`~repro.exceptions.QueryRejected` (counted in
    ``rejected``, labelled by reason) or eventually *executes* (counted
    in ``accepted`` at dispatch, then exactly one of ``completed`` /
    ``failed``).  At quiescence ``submitted == accepted + rejected`` and
    ``accepted == completed + failed`` — no request is silently dropped
    or double-counted.
    """

    #: Consecutive dispatches allowed to jump past a head-of-queue entry
    #: that does not fit the current limit before FIFO order is enforced.
    MAX_SKIPS = 64

    def __init__(
        self,
        max_workers: int,
        capacity: Optional[int] = 1024,
        policy: str = REJECT_NEWEST,
        limiter: Optional[AdaptiveConcurrencyLimiter] = None,
        service_time: Optional[Callable[[str], Optional[float]]] = None,
        clock: Callable[[], float] = time.monotonic,
        on_reject: Callable[[str], None] = _noop,
        on_depth: Callable[[int], None] = _noop,
        on_inflight: Callable[[int, float], None] = _noop,
        on_limit: Callable[[float], None] = _noop,
        thread_name_prefix: str = "mck-admit",
    ):
        if policy not in SHED_POLICIES:
            raise ValueError(
                f"unknown shed policy {policy!r}; pick one of {SHED_POLICIES}"
            )
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 (or None for unbounded)")
        self.max_workers = max(1, int(max_workers))
        self.capacity = capacity
        self.policy = policy
        self.limiter = limiter if limiter is not None else AdaptiveConcurrencyLimiter(
            initial=4.0 * self.max_workers,
            max_limit=16.0 * self.max_workers,
        )
        self._service_time = service_time
        self._clock = clock
        self._on_reject = on_reject
        self._on_depth = on_depth
        self._on_inflight = on_inflight
        self._on_limit = on_limit
        self._cond = threading.Condition()
        self._queue: Deque[_Entry] = deque()
        self._inflight = 0
        self._inflight_cost = 0.0
        self._closed = False
        self._counters = {
            "submitted": 0,
            "accepted": 0,
            "rejected": 0,
            "completed": 0,
            "failed": 0,
        }
        self._threads = [
            threading.Thread(
                target=self._worker,
                name=f"{thread_name_prefix}-{i}",
                daemon=True,
            )
            for i in range(self.max_workers)
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    def submit(
        self,
        fn: Callable,
        *args,
        cost: float = 1.0,
        timeout: Optional[float] = None,
        key: str = "",
    ) -> "Future":
        """Admit ``fn(*args)`` or raise :class:`QueryRejected`.

        ``cost`` is the request's weight against the concurrency limit,
        ``timeout`` its end-to-end budget in seconds (consulted by the
        ``deadline-aware`` policy), ``key`` the latency-baseline bucket
        (the serving layer passes the algorithm name).
        """
        cost = max(1e-6, float(cost))
        future: "Future" = Future()
        with self._cond:
            self._counters["submitted"] += 1
            try:
                # Fault site: an armed QueryRejected models a full queue;
                # an armed delay models a slow admission path.
                _faults.fire(
                    "serving.admission.capacity",
                    policy=self.policy,
                    depth=len(self._queue),
                )
            except QueryRejected as err:
                self._reject_locked(err.reason)
                raise
            except Exception:
                self._reject_locked("fault")
                raise
            if self._closed:
                raise self._rejected_locked(
                    "shutdown", "admission controller is closed"
                )
            now = self._clock()
            deadline_at = now + timeout if timeout is not None else None
            if self.policy == DEADLINE_AWARE:
                self._check_deadline_locked(timeout, cost, key)
            if self.capacity is not None and len(self._queue) >= self.capacity:
                self._make_room_locked()
            entry = _Entry(fn, args, future, cost, deadline_at, now, key)
            self._queue.append(entry)
            self._on_depth(len(self._queue))
            self._cond.notify()
        return future

    def counters(self) -> Dict[str, int]:
        """Snapshot of the conservation counters (see class docstring)."""
        with self._cond:
            return dict(self._counters)

    @property
    def queue_depth(self) -> int:
        with self._cond:
            return len(self._queue)

    @property
    def inflight(self) -> int:
        with self._cond:
            return self._inflight

    @property
    def inflight_cost(self) -> float:
        with self._cond:
            return self._inflight_cost

    def close(self) -> None:
        """Drain executing work, reject queued work, stop the workers.

        Idempotent: the second and later calls are no-ops.  Requests
        already dispatched to a worker complete normally (their futures
        resolve); requests still queued resolve with
        ``QueryRejected(reason="shutdown")``.
        """
        with self._cond:
            if self._closed:
                self._cond.notify_all()
            else:
                self._closed = True
                while self._queue:
                    entry = self._queue.popleft()
                    self._resolve_rejected_locked(
                        entry, "shutdown", "service closed before dispatch"
                    )
                self._on_depth(0)
                self._cond.notify_all()
        for thread in self._threads:
            if thread is not threading.current_thread():
                thread.join()

    def __enter__(self) -> "AdmissionController":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Admission internals (all called with the condition lock held)
    # ------------------------------------------------------------------ #

    def _rejected_locked(self, reason: str, detail: str) -> QueryRejected:
        self._reject_locked(reason)
        return QueryRejected(reason, detail)

    def _reject_locked(self, reason: str) -> None:
        self._counters["rejected"] += 1
        self._on_reject(reason)

    def _resolve_rejected_locked(
        self, entry: _Entry, reason: str, detail: str
    ) -> None:
        """Reject an already-queued entry through its future."""
        self._reject_locked(reason)
        entry.future.set_exception(QueryRejected(reason, detail))

    def _check_deadline_locked(
        self, timeout: Optional[float], cost: float, key: str
    ) -> None:
        """deadline-aware: reject a newcomer that provably cannot finish.

        Predicted time in system = queue drain time + own service time,
        with the drain modelled as ``depth`` requests of the observed p95
        service time spread over the effective parallelism (the smaller
        of the worker count and the current limit, in request units).
        Without an observed p95 (cold start) prediction is disabled.
        """
        if timeout is None or self._service_time is None:
            return
        est = self._service_time(key)
        if est is None or est <= 0.0:
            return
        parallel = max(1.0, min(float(self.max_workers), self.limiter.limit))
        predicted = (len(self._queue) * est) / parallel + est
        if predicted > timeout:
            raise self._rejected_locked(
                "deadline_unmeetable",
                f"predicted {predicted:.3f}s exceeds timeout {timeout:.3f}s "
                f"(queue depth {len(self._queue)}, p95 {est:.3f}s)",
            )

    def _make_room_locked(self) -> None:
        """The queue is full: shed per policy or reject the newcomer."""
        if self.policy == REJECT_OLDEST:
            victim = self._queue.popleft()
            self._resolve_rejected_locked(
                victim, "shed_oldest", "evicted by a newer request"
            )
            self._on_depth(len(self._queue))
            return
        if self.policy == DEADLINE_AWARE:
            # Shed the queued request with the least deadline headroom —
            # the one most likely to be wasted work anyway.
            victim = min(
                (e for e in self._queue if e.deadline_at is not None),
                key=lambda e: e.deadline_at,
                default=None,
            )
            if victim is not None:
                self._queue.remove(victim)
                self._resolve_rejected_locked(
                    victim,
                    "deadline_unmeetable",
                    "shed while queued: least remaining deadline headroom",
                )
                self._on_depth(len(self._queue))
                return
        raise self._rejected_locked(
            "capacity", f"admission queue is full ({self.capacity})"
        )

    # ------------------------------------------------------------------ #
    # Dispatch internals
    # ------------------------------------------------------------------ #

    def _next_entry_locked(self) -> Optional[_Entry]:
        """Pick the next dispatchable entry (FIFO with bounded skip-ahead).

        An entry fits when the cost-weighted inflight total stays within
        the limiter's current limit; with nothing inflight the head runs
        regardless (so an over-limit request can never deadlock).  When
        the head does not fit, cheaper entries behind it may jump ahead —
        at most :data:`MAX_SKIPS` times, after which FIFO order is
        enforced so the heavy head cannot starve.
        """
        limit = self.limiter.limit
        i = 0
        while i < len(self._queue):
            entry = self._queue[i]
            if (
                self.policy == DEADLINE_AWARE
                and entry.deadline_at is not None
                and self._clock() > entry.deadline_at
            ):
                # Executing an already-expired request is pure waste.
                del self._queue[i]
                self._resolve_rejected_locked(
                    entry, "deadline_unmeetable", "deadline expired in queue"
                )
                self._on_depth(len(self._queue))
                continue
            if (
                self._inflight == 0
                or self._inflight_cost + entry.cost <= limit
            ):
                del self._queue[i]
                if i > 0:
                    self._queue[0].skips += 1
                self._on_depth(len(self._queue))
                return entry
            if i == 0 and entry.skips >= self.MAX_SKIPS:
                return None
            i += 1
        return None

    def _worker(self) -> None:
        while True:
            with self._cond:
                entry = self._next_entry_locked()
                while entry is None:
                    if self._closed and not self._queue:
                        return
                    self._cond.wait()
                    entry = self._next_entry_locked()
                self._counters["accepted"] += 1
                self._inflight += 1
                self._inflight_cost += entry.cost
                self._on_inflight(self._inflight, self._inflight_cost)
            self._run_entry(entry)

    def _run_entry(self, entry: _Entry) -> None:
        started = time.perf_counter()
        failed = False
        try:
            result = entry.fn(*entry.args)
        except BaseException as err:
            failed = True
            entry.future.set_exception(err)
        else:
            entry.future.set_result(result)
        latency = time.perf_counter() - started
        # The limiter takes its own (leaf) lock; feed it outside ours.
        self.limiter.on_complete(latency, key=entry.key)
        self._on_limit(self.limiter.limit)
        with self._cond:
            self._inflight -= 1
            self._inflight_cost -= entry.cost
            self._counters["failed" if failed else "completed"] += 1
            self._on_inflight(self._inflight, self._inflight_cost)
            self._cond.notify_all()
