"""ASGK / ASGKa — the Dia-CoSKQ adaptation baselines (paper §2.2).

Long et al. (SIGMOD 2013 [16]) study Dia-CoSKQ: given a query *location*
``Q.λ`` and keywords ``Q.ψ``, find a group G covering the keywords that
minimises ``max_{o1,o2 ∈ G ∪ {Q}} Dist(o1, o2)`` — the diameter including
the query point.  The paper adapts it to mCK as follows (§2.2): pick the
least frequent query keyword ``t_inf``; for every object ``oi`` containing
it, issue a Dia-CoSKQ query located at ``oi`` with keywords
``q \\ oi.ψ``; return the best combined group over all ``oi``.

* :func:`asgk` uses an exact Dia-CoSKQ solver (branch and bound) — the
  adaptation is exact overall, since the optimal group contains some
  ``t_inf`` holder.
* :func:`asgka` uses the greedy approximate solver (nearest object to the
  query location per uncovered keyword).

Both perform poorly on mCK, which is precisely the paper's point
(Figure 8: "the adaptation is not suitable for processing the mCK query").
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from ..core.common import Deadline
from ..core.query import QueryContext
from ..core.result import Group
from ..exceptions import InfeasibleQueryError

__all__ = ["asgk", "asgka", "dia_coskq_exact", "dia_coskq_greedy"]


def asgk(ctx: QueryContext, deadline: Optional[Deadline] = None) -> Group:
    """Adapted SGK exact baseline."""
    return _asgk_common(ctx, deadline, exact_inner=True, name="ASGK")


def asgka(ctx: QueryContext, deadline: Optional[Deadline] = None) -> Group:
    """Adapted SGK approximate baseline."""
    return _asgk_common(ctx, deadline, exact_inner=False, name="ASGKa")


def _asgk_common(
    ctx: QueryContext,
    deadline: Optional[Deadline],
    exact_inner: bool,
    name: str,
) -> Group:
    deadline = deadline or Deadline.unlimited(name)
    full = ctx.full_mask

    best_rows: Optional[List[int]] = None
    best_diameter = float("inf")
    anchors = ctx.rows_with_bit(ctx.t_inf_bit)
    if not anchors:
        raise InfeasibleQueryError([ctx.t_inf])

    for anchor in anchors:
        deadline.check()
        if ctx.masks[anchor] == full:
            return Group.from_rows(ctx, [anchor], algorithm=name)
        missing = full & ~ctx.masks[anchor]
        if exact_inner:
            rows, cost = dia_coskq_exact(ctx, anchor, missing, best_diameter, deadline)
        else:
            rows, cost = dia_coskq_greedy(ctx, anchor, missing)
        if rows is None:
            continue
        group_rows = [anchor] + rows
        diameter = ctx.group_diameter_rows(group_rows)
        if diameter < best_diameter:
            best_diameter = diameter
            best_rows = group_rows

    if best_rows is None:
        raise InfeasibleQueryError(ctx.query.keywords)
    return Group.from_rows(ctx, best_rows, algorithm=name)


# ---------------------------------------------------------------------- #
# Dia-CoSKQ solvers (query location = an O' row).
# ---------------------------------------------------------------------- #


def dia_coskq_exact(
    ctx: QueryContext,
    query_row: int,
    required_mask: int,
    cost_cap: float = float("inf"),
    deadline: Optional[Deadline] = None,
) -> Tuple[Optional[List[int]], float]:
    """Exact Dia-CoSKQ: minimise the diameter of G ∪ {query point}.

    ``required_mask`` is the query-local keyword mask still to cover;
    ``cost_cap`` lets the caller pass its incumbent so the branch and
    bound starts tight.  Returns ``(rows, cost)`` or ``(None, inf)``.
    """
    deadline = deadline or Deadline.unlimited("ASGK")
    if required_mask == 0:
        return [], 0.0

    dists_to_q = ctx.distances_from_row(query_row)
    # Any group member lies within the final cost of the query point;
    # order candidates by distance so the bound tightens quickly.
    candidate_rows = [
        row
        for row in np.argsort(dists_to_q, kind="stable")
        if ctx.masks[int(row)] & required_mask and int(row) != query_row
    ]
    candidate_rows = [int(r) for r in candidate_rows]
    n = len(candidate_rows)
    masks = [ctx.masks[r] & required_mask for r in candidate_rows]
    suffix = [0] * (n + 1)
    for i in range(n - 1, -1, -1):
        suffix[i] = suffix[i + 1] | masks[i]
    if suffix[0] != required_mask:
        return None, float("inf")

    coords = ctx.coords
    qx, qy = coords[query_row]

    best: dict = {"rows": None, "cost": cost_cap}
    chosen: List[int] = []

    def recurse(covered: int, cost: float, start: int) -> None:
        deadline.check()
        if covered == required_mask:
            if cost < best["cost"]:
                best["cost"] = cost
                best["rows"] = [candidate_rows[i] for i in chosen]
            return
        if (covered | suffix[start]) != required_mask:
            return
        for idx in range(start, n):
            mask = masks[idx]
            if mask & ~covered == 0:
                continue
            row = candidate_rows[idx]
            d_q = float(dists_to_q[row])
            if d_q >= best["cost"]:
                # Candidates are sorted by distance to the query point;
                # all later ones are at least as far.
                break
            new_cost = cost if cost > d_q else d_q
            too_far = False
            for c in chosen:
                other = candidate_rows[c]
                d = math.hypot(
                    coords[row, 0] - coords[other, 0],
                    coords[row, 1] - coords[other, 1],
                )
                if d >= best["cost"]:
                    too_far = True
                    break
                if d > new_cost:
                    new_cost = d
            if too_far or new_cost >= best["cost"]:
                continue
            chosen.append(idx)
            recurse(covered | mask, new_cost, idx + 1)
            chosen.pop()

    recurse(0, 0.0, 0)
    if best["rows"] is None:
        return None, float("inf")
    return best["rows"], best["cost"]


def dia_coskq_greedy(
    ctx: QueryContext, query_row: int, required_mask: int
) -> Tuple[Optional[List[int]], float]:
    """Greedy Dia-CoSKQ: nearest object to the query point per uncovered
    keyword (Long et al.'s approximate algorithm)."""
    if required_mask == 0:
        return [], 0.0
    dists_to_q = ctx.distances_from_row(query_row)
    rows: List[int] = []
    covered = 0
    missing = required_mask
    while missing:
        bit = missing & -missing
        best_row = -1
        best_d = float("inf")
        for row, mask in enumerate(ctx.masks):
            if mask & bit and row != query_row:
                d = float(dists_to_q[row])
                if d < best_d:
                    best_d = d
                    best_row = row
        if best_row < 0:
            return None, float("inf")
        rows.append(best_row)
        covered |= ctx.masks[best_row] & required_mask
        missing = required_mask & ~covered
    cost = ctx.group_diameter_rows([query_row] + rows)
    return rows, cost
