"""bR — the original bR*-tree exact method (Zhang et al., ICDE 2009 [21]).

The predecessor of VirbR (§2.2): the same exhaustive node-combination
search, but over the *full* dataset-wide bR*-tree instead of a per-query
virtual tree.  Every subtree of the big tree must be considered (pruned
only by bitmaps and distance bounds), which is why [22] introduced the
virtual tree — the experiments in both papers show the full-tree variant
losing by a wide margin on large datasets.

The keyword bitmaps of the full tree are global-vocabulary masks; this
adapter intersects them with the query's global mask and remaps to
query-local bits on the fly.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core.common import Deadline
from ..core.query import QueryContext
from ..core.result import Group
from ._treesearch import TreeCombinationSearch

__all__ = ["brtree_method"]


def brtree_method(ctx: QueryContext, deadline: Optional[Deadline] = None) -> Group:
    """Run the original full-tree bR*-tree method; returns the optimal group."""
    deadline = deadline or Deadline.unlimited("bR")
    full = ctx.full_mask

    for row, mask in enumerate(ctx.masks):
        if mask == full:
            return Group.from_rows(ctx, [row], algorithm="bR")

    dataset = ctx.dataset
    tree = dataset.brtree()

    # Map global term ids to query-local bit positions.
    local_bit: Dict[int, int] = {
        tid: 1 << pos for pos, tid in enumerate(ctx.term_ids)
    }
    global_query_mask = 0
    for tid in ctx.term_ids:
        global_query_mask |= 1 << tid

    def to_local(global_mask: int) -> int:
        relevant = global_mask & global_query_mask
        local = 0
        while relevant:
            low = relevant & -relevant
            local |= local_bit[low.bit_length() - 1]
            relevant ^= low
        return local

    search = TreeCombinationSearch(
        root=tree.root,
        node_mask=lambda node: to_local(tree.node_mask(node)),
        item_mask=lambda oid: to_local(tree.item_mask(oid)),
        full_mask=full,
        deadline=deadline,
    )
    search.run()

    group = Group.from_object_ids(dataset, search.best_items, algorithm="bR")
    group.diameter = min(group.diameter, search.best_diameter)
    group.stats["combinations"] = float(search.combinations)
    group.stats["groups_evaluated"] = float(search.groups_evaluated)
    return group
