"""Exhaustive optimal mCK solver for ground truth in tests.

Enumerates groups over O' by depth-first search with the same incremental
diameter bound as EXACT's inner search, but without the circle-based
space reduction — exponential, usable only for small relevant sets, and
deliberately independent of the circleScan machinery so the test suite can
cross-validate EXACT against a structurally different implementation.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..core.common import Deadline
from ..core.query import QueryContext
from ..core.result import Group

__all__ = ["brute_force_optimal"]


def brute_force_optimal(
    ctx: QueryContext, deadline: Optional[Deadline] = None
) -> Group:
    """Optimal group by exhaustive enumeration over O'."""
    deadline = deadline or Deadline.unlimited("BRUTE")
    n = len(ctx.relevant_ids)
    masks = ctx.masks
    full = ctx.full_mask

    for row in range(n):
        if masks[row] == full:
            return Group.from_rows(ctx, [row], algorithm="BRUTE")

    coords = ctx.coords
    delta = coords[:, None, :] - coords[None, :, :]
    dist = np.hypot(delta[:, :, 0], delta[:, :, 1])

    suffix = [0] * (n + 1)
    for i in range(n - 1, -1, -1):
        suffix[i] = suffix[i + 1] | masks[i]

    best_rows: List[int] = []
    best_diameter = float("inf")

    def recurse(selected: List[int], covered: int, diameter: float, start: int) -> None:
        nonlocal best_rows, best_diameter
        deadline.check()
        if covered == full:
            if diameter < best_diameter:
                best_diameter = diameter
                best_rows = list(selected)
            return
        if (covered | suffix[start]) != full:
            return
        for idx in range(start, n):
            mask = masks[idx]
            if mask & ~covered == 0:
                continue
            new_diameter = diameter
            too_far = False
            for s in selected:
                d = dist[s, idx]
                if d >= best_diameter:
                    too_far = True
                    break
                if d > new_diameter:
                    new_diameter = d
            if too_far:
                continue
            selected.append(idx)
            recurse(selected, covered | mask, new_diameter, idx + 1)
            selected.pop()

    # Every group must contain at least one holder of each keyword; anchor
    # the search on the least frequent keyword's holders to cut the root
    # branching factor, mirroring GKG's t_inf trick.
    anchor_bit = ctx.t_inf_bit
    for row in range(n):
        if masks[row] & anchor_bit:
            recurse([row], masks[row], 0.0, 0)
    # Re-run unanchored start positions is unnecessary: any feasible group
    # contains a t_inf holder, and recurse() from that holder enumerates all
    # of its supersets with larger/smaller row indices via start=0.
    # (start=0 with the duplicate guard below keeps enumeration sound.)

    group = Group.from_rows(ctx, best_rows, algorithm="BRUTE")
    group.diameter = min(group.diameter, best_diameter)
    return group
