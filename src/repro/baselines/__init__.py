"""Comparator algorithms: the prior art the paper evaluates against."""

from .asgk import asgk, asgka, dia_coskq_exact, dia_coskq_greedy
from .brtree_method import brtree_method
from .bruteforce import brute_force_optimal
from .virbr import virbr

__all__ = [
    "asgk",
    "brtree_method",
    "asgka",
    "dia_coskq_exact",
    "dia_coskq_greedy",
    "brute_force_optimal",
    "virbr",
]
