"""Shared top-down node-combination search used by the bR*-tree baselines.

Both the original bR*-tree method of Zhang et al. [21] (full dataset-wide
tree) and its virtual-tree successor [22] perform the same exhaustive
enumeration; they differ only in which tree they walk and how keyword
masks are obtained.  This module hosts the search engine; the public
baselines instantiate it with the right tree adapters.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

from ..core.common import Deadline
from ..geometry.point import dist
from ..index.mbr import MBR, min_dist
from ..index.rstar import LeafEntry, Node

__all__ = ["TreeCombinationSearch"]


class TreeCombinationSearch:
    """Exhaustive top-down search over keyword-annotated tree nodes.

    Parameters
    ----------
    root:
        Tree root node.
    node_mask / item_mask:
        Callbacks producing query-local keyword masks for internal nodes
        and leaf items.
    full_mask:
        Coverage target; ``m`` = its bit length bounds combination size.
    deadline:
        Cooperative time budget.
    """

    def __init__(
        self,
        root: Node,
        node_mask: Callable[[Node], int],
        item_mask: Callable[[object], int],
        full_mask: int,
        deadline: Deadline,
    ):
        self._root = root
        self._node_mask = node_mask
        self._item_mask = item_mask
        self._full = full_mask
        self._m = full_mask.bit_length()
        self._deadline = deadline
        self.best_diameter = float("inf")
        self.best_items: List = []
        self.combinations = 0
        self.groups_evaluated = 0

    # ------------------------------------------------------------------ #

    def run(self) -> None:
        """Execute the search; results land in best_items / best_diameter."""
        if self._root.is_leaf:
            self._enumerate_groups(list(self._root.entries))
        else:
            self._expand([self._root])

    def _expand(self, combo: Sequence[Node]) -> None:
        """Replace a node combination by combinations of its children."""
        self._deadline.check()
        pool: List = []
        for node in combo:
            pool.extend(node.entries)
        if not pool:
            return
        if isinstance(pool[0], LeafEntry):
            self._enumerate_groups(pool)
            return
        self._enumerate_node_combos(pool)

    # ------------------------------------------------------------------ #
    # Node-level combinations: redundancy allowed — a member adding no new
    # keyword may still hold the optimal object for a keyword another
    # member merely *promises* (its bitmap has it, its best holder of it is
    # far away).  For the same reason a combination must keep growing past
    # first coverage: {N1} may cover the query while the optimal group
    # spans N1 and N3.  Combinations are therefore all subsets of size
    # <= m passing the MinDist pruning whose union covers the query, and
    # the expansion happens at the *terminal* ones (size m reached or no
    # extension explored) — every covering subset is contained in a
    # terminal superset, whose expansion pool subsumes its own.
    # ------------------------------------------------------------------ #

    def _enumerate_node_combos(self, pool: List[Node]) -> None:
        masks = [self._node_mask(nd) for nd in pool]
        boxes = [nd.box for nd in pool]
        n = len(pool)
        suffix = [0] * (n + 1)
        for i in range(n - 1, -1, -1):
            suffix[i] = suffix[i + 1] | masks[i]
        if suffix[0] != self._full:
            return

        chosen: List[int] = []
        full = self._full

        def recurse(covered: int, start: int) -> None:
            self._deadline.check()
            if len(chosen) >= self._m:
                if covered == full:
                    self.combinations += 1
                    self._expand([pool[i] for i in chosen])
                return
            extended = False
            for idx in range(start, n):
                if covered != full and (covered | suffix[idx]) != full:
                    # Still uncovered and the tail cannot complete: no
                    # extension from here on can ever become a combination.
                    break
                if self._node_too_far(boxes, chosen, idx):
                    continue
                chosen.append(idx)
                recurse(covered | masks[idx], idx + 1)
                chosen.pop()
                extended = True
            if covered == full and not extended:
                self.combinations += 1
                self._expand([pool[i] for i in chosen])

        recurse(0, 0)

    def _node_too_far(self, boxes: List[MBR], chosen: List[int], idx: int) -> bool:
        box = boxes[idx]
        bound = self.best_diameter
        for c in chosen:
            if min_dist(boxes[c], box) >= bound:
                return True
        return False

    # ------------------------------------------------------------------ #
    # Object-level enumeration: irredundant, branch and bound on diameter.
    # ------------------------------------------------------------------ #

    def _enumerate_groups(self, entries: List[LeafEntry]) -> None:
        masks = [self._item_mask(e.item) for e in entries]
        pts = [(e.x, e.y) for e in entries]
        n = len(entries)
        suffix = [0] * (n + 1)
        for i in range(n - 1, -1, -1):
            suffix[i] = suffix[i + 1] | masks[i]
        if suffix[0] != self._full:
            return

        chosen: List[int] = []
        full = self._full

        def recurse(covered: int, diameter: float, start: int) -> None:
            self._deadline.check()
            if covered == full:
                self.groups_evaluated += 1
                if diameter < self.best_diameter:
                    self.best_diameter = diameter
                    self.best_items = [entries[i].item for i in chosen]
                return
            if (covered | suffix[start]) != full:
                return
            for idx in range(start, n):
                mask = masks[idx]
                if mask & ~covered == 0:
                    continue
                new_diameter = diameter
                too_far = False
                for c in chosen:
                    d = dist(pts[c], pts[idx])
                    if d >= self.best_diameter:
                        too_far = True
                        break
                    if d > new_diameter:
                        new_diameter = d
                if too_far:
                    continue
                chosen.append(idx)
                recurse(covered | mask, new_diameter, idx + 1)
                chosen.pop()

        recurse(0, 0.0, 0)
