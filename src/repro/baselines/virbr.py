"""VirbR — the virtual bR*-tree exact baseline (Zhang et al., ICDE 2010 [22]).

The best previously known mCK algorithm and the paper's main exact
comparator.  It performs a top-down exhaustive search over the per-query
*virtual* bR*-tree: starting from {root}, every combination of nodes whose
keyword bitmaps jointly cover the query is expanded into combinations of
their children, level by level, until object-level groups are enumerated;
the smallest-diameter group wins.  Pruning:

* pairwise MinDist between combination members must stay below the current
  best diameter;
* combinations have at most m members (an optimal group never needs more
  than one object per query keyword);
* partial combinations whose members plus the remaining pool cannot cover
  the query are abandoned.

Node-level combinations may include members that add no *new* keyword,
and keep growing past first bitmap coverage — dropping either case would
discard subtrees that contain the optimal objects for keywords another
member merely promises (its bitmap has the keyword, but its own holders
are far away).  Object-level enumeration is irredundant (every object
must contribute a new keyword), which is safe because objects are final.

Worst-case O(|O'|^|q|), the complexity the paper quotes for the baseline.
The search engine itself is shared with the original full-tree method of
[21] (see :mod:`repro.baselines.brtree_method`).
"""

from __future__ import annotations

from typing import Optional

from ..core.common import Deadline
from ..core.query import QueryContext
from ..core.result import Group
from ._treesearch import TreeCombinationSearch

__all__ = ["virbr"]


def virbr(ctx: QueryContext, deadline: Optional[Deadline] = None) -> Group:
    """Run the VirbR baseline; returns the optimal group."""
    deadline = deadline or Deadline.unlimited("VirbR")
    full = ctx.full_mask

    for row, mask in enumerate(ctx.masks):
        if mask == full:
            return Group.from_rows(ctx, [row], algorithm="VirbR")

    tree = ctx.virtual_tree.tree
    search = TreeCombinationSearch(
        root=tree.root,
        node_mask=tree.node_mask,
        item_mask=tree.item_mask,
        full_mask=full,
        deadline=deadline,
    )
    search.run()
    rows = [ctx.row_of(oid) for oid in search.best_items]
    group = Group.from_rows(ctx, rows, algorithm="VirbR")
    group.diameter = min(group.diameter, search.best_diameter)
    group.stats["combinations"] = float(search.combinations)
    group.stats["groups_evaluated"] = float(search.groups_evaluated)
    return group
