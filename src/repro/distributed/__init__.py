"""Simulated distributed mCK processing — the paper's §8 future work."""

from .coordinator import DistributedMCKEngine, DistributedResult
from .partition import GridPartitioner, Partition
from .worker import LocalAnswer, Worker

__all__ = [
    "DistributedMCKEngine",
    "DistributedResult",
    "GridPartitioner",
    "Partition",
    "LocalAnswer",
    "Worker",
]
