"""Spatial partitioning for the simulated distributed setting (paper §8).

The dataset's extent is tiled into a ``cells x cells`` grid; each cell is
a worker's *core* region, and a *halo* of width ``h`` around the cell is
replicated to the worker.  The key property driving the distributed mCK
protocol: any group of diameter at most ``h`` that contains an object in
a worker's core lies entirely inside that worker's core+halo view, so a
global optimum with a diameter bound of ``h`` can be found by purely
local searches.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..core.objects import Dataset
from ..exceptions import ExperimentError

__all__ = ["GridPartitioner", "Partition"]


@dataclass
class Partition:
    """One worker's share of the data."""

    worker_id: int
    #: Core rectangle (x1, y1, x2, y2): this worker owns objects inside it.
    core: Tuple[float, float, float, float]
    #: Object ids inside the core.
    core_ids: List[int] = field(default_factory=list)
    #: Object ids in the halo ring (replicated, not owned).
    halo_ids: List[int] = field(default_factory=list)

    @property
    def all_ids(self) -> List[int]:
        return self.core_ids + self.halo_ids

    def __len__(self) -> int:
        return len(self.core_ids) + len(self.halo_ids)


class GridPartitioner:
    """Tile a dataset into a square grid of core cells with halos."""

    def __init__(self, dataset: Dataset, n_workers: int):
        if n_workers < 1:
            raise ExperimentError("need at least one worker")
        self.dataset = dataset
        self.cells = max(1, int(math.floor(math.sqrt(n_workers))))
        coords = dataset.coords
        if len(coords) == 0:
            raise ExperimentError("cannot partition an empty dataset")
        self._min_xy = coords.min(axis=0)
        self._max_xy = coords.max(axis=0)
        span = np.maximum(self._max_xy - self._min_xy, 1e-9)
        self._cell_w = float(span[0]) / self.cells
        self._cell_h = float(span[1]) / self.cells

    @property
    def n_workers(self) -> int:
        return self.cells * self.cells

    def cell_of(self, x: float, y: float) -> Tuple[int, int]:
        """The grid cell owning a point (clamped to the grid)."""
        cx = min(int((x - self._min_xy[0]) / self._cell_w), self.cells - 1)
        cy = min(int((y - self._min_xy[1]) / self._cell_h), self.cells - 1)
        return (max(cx, 0), max(cy, 0))

    def worker_for(self, x: float, y: float) -> int:
        """The worker id owning a point (row-major over the grid).

        Used by the live layer to route mutations: the object's core cell
        decides which shard's engine applies the insert or delete.
        """
        cx, cy = self.cell_of(x, y)
        return cy * self.cells + cx

    def partitions(self, halo: float) -> List[Partition]:
        """Assign every object to one core cell, replicate into halos."""
        if halo < 0:
            raise ExperimentError("halo width must be non-negative")
        cells = self.cells
        parts: Dict[Tuple[int, int], Partition] = {}
        for cy in range(cells):
            for cx in range(cells):
                x1 = self._min_xy[0] + cx * self._cell_w
                y1 = self._min_xy[1] + cy * self._cell_h
                parts[(cx, cy)] = Partition(
                    worker_id=cy * cells + cx,
                    core=(x1, y1, x1 + self._cell_w, y1 + self._cell_h),
                )

        coords = self.dataset.coords
        for oid in range(len(self.dataset)):
            x, y = float(coords[oid, 0]), float(coords[oid, 1])
            home = self.cell_of(x, y)
            parts[home].core_ids.append(oid)
            # Halo membership: every other cell whose rectangle expanded by
            # the halo width contains the point.
            lo_cx, lo_cy = self.cell_of(x - halo, y - halo)
            hi_cx, hi_cy = self.cell_of(x + halo, y + halo)
            for cy in range(lo_cy, hi_cy + 1):
                for cx in range(lo_cx, hi_cx + 1):
                    if (cx, cy) != home:
                        parts[(cx, cy)].halo_ids.append(oid)
        return [parts[key] for key in sorted(parts)]
