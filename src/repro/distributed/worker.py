"""A simulated worker node: a partition-local mCK solver.

Each worker owns a sub-dataset (its partition's core + halo objects),
answers mCK queries on it with any of the library's algorithms, and
accounts its own compute time so the coordinator can report a simulated
makespan (the distributed wall-clock is the slowest worker, since workers
run in parallel).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.engine import MCKEngine
from ..core.objects import Dataset
from ..core.result import Group
from ..exceptions import InfeasibleQueryError
from ..observability.logging import correlation_scope, get_logger
from ..observability.tracer import span as _trace_span
from ..testing import faults as _faults
from .partition import Partition

__all__ = ["Worker", "LocalAnswer"]

_log = get_logger("distributed.worker")


@dataclass
class LocalAnswer:
    """One worker's reply to a query round."""

    worker_id: int
    #: Group in *global* object ids, or None when locally infeasible.
    group: Optional[Group]
    compute_seconds: float

    @property
    def diameter(self) -> float:
        return self.group.diameter if self.group is not None else float("inf")


class Worker:
    """Holds a partition's objects and answers queries locally."""

    def __init__(self, partition: Partition, dataset: Dataset):
        self.worker_id = partition.worker_id
        self.partition = partition
        #: local oid -> global oid
        self._global_ids: List[int] = list(partition.all_ids)
        records = [
            (
                dataset.coords[oid, 0],
                dataset.coords[oid, 1],
                dataset[oid].keywords,
            )
            for oid in self._global_ids
        ]
        if records:
            self.local_dataset: Optional[Dataset] = Dataset.from_records(
                records, name=f"worker-{self.worker_id}"
            )
            self.engine: Optional[MCKEngine] = MCKEngine(self.local_dataset)
        else:
            self.local_dataset = None
            self.engine = None

    def __len__(self) -> int:
        return len(self._global_ids)

    def answer(
        self,
        keywords: Sequence[str],
        algorithm: str,
        epsilon: float = 0.01,
        timeout: Optional[float] = None,
        correlation_id: str = "",
    ) -> LocalAnswer:
        """Run one local query; infeasible partitions answer 'no group'.

        ``correlation_id`` models the id a real RPC would carry: the
        worker re-enters the coordinator's correlation scope so its log
        events and spans join the originating query.
        """
        # Fault site: a crash here models the worker process dying before
        # (or while) computing — the coordinator sees the raised error
        # exactly as it would see a dead RPC peer.
        _faults.fire(
            "distributed.worker.answer",
            worker_id=self.worker_id,
            algorithm=algorithm,
        )
        started = time.perf_counter()
        if self.engine is None:
            return LocalAnswer(self.worker_id, None, 0.0)
        with correlation_scope(correlation_id or None):
            with _trace_span(
                "dist.worker", worker_id=self.worker_id, algorithm=algorithm
            ):
                try:
                    local_group = self.engine.query(
                        keywords,
                        algorithm=algorithm,
                        epsilon=epsilon,
                        timeout=timeout,
                    )
                except InfeasibleQueryError:
                    _log.debug(
                        "worker.infeasible",
                        worker_id=self.worker_id,
                        algorithm=algorithm,
                    )
                    return LocalAnswer(
                        self.worker_id, None, time.perf_counter() - started
                    )
        global_group = Group(
            object_ids=tuple(
                sorted(self._global_ids[oid] for oid in local_group.object_ids)
            ),
            diameter=local_group.diameter,
            algorithm=f"{local_group.algorithm}@w{self.worker_id}",
            enclosing_circle=local_group.enclosing_circle,
        )
        return LocalAnswer(
            self.worker_id, global_group, time.perf_counter() - started
        )
