"""Coordinator for the simulated distributed mCK setting (paper §8).

The paper closes with "it would be of interest to investigate the problem
of answering the mCK query in a distributed setting"; this module builds
that setting as a single-process simulation with explicit communication
accounting, so the protocol's behaviour (rounds, bytes, makespan,
speed-up) can be studied without a cluster.

Protocol (two rounds):

1. **Bound round.** Every worker runs the cheap GKG on its core+halo view
   and reports its local feasible diameter.  The minimum reported value
   ``d_ub`` upper-bounds the global optimum *if* some worker is feasible;
   when every partition misses a keyword, the coordinator falls back to a
   centralized solve (counted in the stats).
2. **Exact round.** The dataset is re-partitioned with halo width
   ``d_ub``.  Any group with diameter <= d_ub containing an object in a
   worker's core then lies entirely inside that worker's view, so every
   worker solves EXACT locally and the minimum over workers is the global
   optimum.  Workers run in parallel; the simulated makespan per round is
   the slowest worker's compute time.

Communication accounting: one message per worker per round plus the query
broadcast; replicated objects are charged per (x, y, keywords) record.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.engine import MCKEngine
from ..core.objects import Dataset
from ..core.result import Group
from ..exceptions import InfeasibleQueryError, QueryRejected, WorkerCrashed
from ..observability import tracer as _tracing
from ..observability.flight import FlightRecorder
from ..observability.logging import correlation_scope, get_logger
from ..observability.tracer import span as _trace_span
from ..serving.stats import MetricsRegistry
from .partition import GridPartitioner
from .worker import LocalAnswer, Worker

__all__ = ["DistributedMCKEngine", "DistributedResult"]

_log = get_logger("distributed.coordinator")

#: Charged bytes per shipped object record (two float64 + small keyword set).
_BYTES_PER_OBJECT = 48
#: Charged bytes per control/answer message.
_BYTES_PER_MESSAGE = 64


@dataclass
class DistributedResult:
    """Outcome of one distributed query with its cost accounting."""

    group: Group
    rounds: int
    messages: int
    bytes_shipped: int
    #: Simulated parallel wall-clock: sum over rounds of the slowest worker.
    makespan_seconds: float
    #: Total compute across all workers (the "cluster seconds").
    total_compute_seconds: float
    #: True when the coordinator had to solve centrally (no feasible local
    #: bound); the distributed protocol then adds no benefit.
    fell_back_to_central: bool = False
    worker_answers: List[LocalAnswer] = field(default_factory=list)
    #: Worker crashes observed across both rounds.
    worker_crashes: int = 0
    #: Respawn-and-resubmit attempts that followed those crashes.
    worker_retries: int = 0


class DistributedMCKEngine:
    """Answer mCK queries over a dataset split across simulated workers."""

    def __init__(
        self,
        dataset: Dataset,
        n_workers: int = 4,
        epsilon: float = 0.01,
        max_worker_retries: int = 2,
        retry_backoff_seconds: float = 0.05,
        retry_backoff_cap: float = 1.0,
        sleep=time.sleep,
        metrics: Optional[MetricsRegistry] = None,
        worker_queue_capacity: Optional[int] = None,
        flight: Optional[FlightRecorder] = None,
    ):
        dataset.finalize()
        self.dataset = dataset
        self.partitioner = GridPartitioner(dataset, n_workers)
        self.epsilon = epsilon
        #: Respawn-and-resubmit budget per worker per round; a worker that
        #: exhausts it is abandoned and contributes an infeasible answer
        #: (the protocol degrades, it does not fail).
        self.max_worker_retries = max(0, max_worker_retries)
        self.retry_backoff_seconds = retry_backoff_seconds
        self.retry_backoff_cap = retry_backoff_cap
        self._sleep = sleep
        self.metrics = metrics if metrics is not None else MetricsRegistry.default()
        self._crash_counter = self.metrics.counter(
            "mck_worker_crashes_total",
            help="Distributed worker crashes observed by the coordinator.",
            label_names=("round",),
        )
        self._worker_retry_counter = self.metrics.counter(
            "mck_worker_retries_total",
            help="Worker respawn-and-resubmit attempts after a crash.",
            label_names=("round",),
        )
        #: Backpressure: max outstanding tasks a single worker will accept
        #: before the coordinator refuses further submissions with
        #: :class:`~repro.exceptions.QueryRejected` (reason
        #: ``worker_backpressure``).  ``None`` = unbounded (the seed
        #: behaviour).  Depth is tracked per worker id so respawned workers
        #: inherit the slot accounting of the shard they replaced.
        if worker_queue_capacity is not None and worker_queue_capacity < 1:
            raise ValueError(
                "worker_queue_capacity must be >= 1 or None, got "
                f"{worker_queue_capacity!r}"
            )
        self.worker_queue_capacity = worker_queue_capacity
        self._pending: Dict[int, int] = {}
        self._pending_lock = threading.Lock()
        self._central_engine: Optional[MCKEngine] = None
        #: Optional tail-latency flight recorder.  The coordinator spans go
        #: through the process-global tracer, so attach the recorder there;
        #: worker-crash rounds are retained as fault-hit traces.
        self.flight = flight
        self._flight_tracer: Optional[_tracing.Tracer] = None
        if flight is not None:
            tracer = _tracing.get_tracer()
            if tracer is not None:
                # Remember only attachments *we* made: a recorder shared
                # with sibling services may already be wired to this
                # tracer, and close() must not sever their sink.
                if not flight.is_attached(tracer):
                    self._flight_tracer = tracer
                flight.attach(tracer)

    def close(self) -> None:
        """Detach the flight-recorder sink this coordinator attached.

        Idempotent.  Without this, every short-lived coordinator sharing
        the process-global tracer leaks a span sink — the same lifecycle
        bug as a :class:`~repro.serving.QueryService` that never detaches
        its mutation listener.
        """
        if self.flight is not None and self._flight_tracer is not None:
            self.flight.detach(self._flight_tracer)
            self._flight_tracer = None

    def __enter__(self) -> "DistributedMCKEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def n_workers(self) -> int:
        return self.partitioner.n_workers

    # ------------------------------------------------------------------ #
    # Worker backpressure: bounded per-worker outstanding-task queues.
    # ------------------------------------------------------------------ #

    def pending_tasks(self, worker_id: int) -> int:
        """Outstanding (submitted, unanswered) tasks at ``worker_id``."""
        with self._pending_lock:
            return self._pending.get(worker_id, 0)

    def _acquire_worker_slot(self, worker_id: int, round_label: str) -> None:
        with self._pending_lock:
            depth = self._pending.get(worker_id, 0)
            cap = self.worker_queue_capacity
            if cap is not None and depth >= cap:
                self.metrics.admission_rejected_counter.inc(
                    1.0, reason="worker_backpressure"
                )
                _log.warning(
                    "dist.worker_backpressure",
                    worker_id=worker_id,
                    round=round_label,
                    depth=depth,
                    capacity=cap,
                )
                raise QueryRejected(
                    "worker_backpressure",
                    f"worker {worker_id} queue full "
                    f"({depth} pending >= capacity {cap})",
                )
            self._pending[worker_id] = depth + 1
            self.metrics.queue_depth_gauge.set(
                float(depth + 1), queue=f"worker-{worker_id}"
            )

    def _release_worker_slot(self, worker_id: int) -> None:
        with self._pending_lock:
            depth = max(0, self._pending.get(worker_id, 0) - 1)
            self._pending[worker_id] = depth
            self.metrics.queue_depth_gauge.set(
                float(depth), queue=f"worker-{worker_id}"
            )

    # ------------------------------------------------------------------ #

    def query(
        self,
        keywords: Sequence[str],
        bound_algorithm: str = "GKG",
        exact_algorithm: str = "EXACT",
    ) -> DistributedResult:
        """Run the two-round distributed protocol."""
        started = time.perf_counter()
        with correlation_scope() as cid:
            result = None
            error: Optional[str] = None
            root = None
            try:
                with _trace_span(
                    "dist.query", workers=self.n_workers, m=len(list(keywords))
                ) as root:
                    result = self._query_traced(
                        keywords, bound_algorithm, exact_algorithm, cid
                    )
            except Exception as err:  # noqa: BLE001 - recorded, then re-raised
                error = str(err) or type(err).__name__
                raise
            finally:
                self._complete_flight(
                    getattr(root, "trace_id", None) or "",
                    cid,
                    exact_algorithm,
                    result,
                    error,
                    time.perf_counter() - started,
                )
        return result

    def _complete_flight(
        self,
        trace_id: str,
        cid: str,
        algorithm: str,
        result: Optional[DistributedResult],
        error: Optional[str],
        latency_seconds: float,
    ) -> None:
        """Hand the finished distributed trace to the flight recorder.

        Worker crashes count as fault hits so crash-and-respawn rounds are
        always retained, exactly like injected faults in the serving path.
        """
        if self.flight is None or not trace_id:
            return
        crashes = result.worker_crashes if result is not None else 0
        degraded = bool(result is not None and result.fell_back_to_central)
        self.flight.complete(
            trace_id,
            algorithm=algorithm,
            correlation_id=cid,
            latency_seconds=latency_seconds,
            degraded=degraded,
            error=error,
            fault_hits=crashes,
        )

    def _query_traced(
        self,
        keywords: Sequence[str],
        bound_algorithm: str,
        exact_algorithm: str,
        cid: str,
    ) -> DistributedResult:
        messages = 0
        bytes_shipped = 0
        makespan = 0.0
        total_compute = 0.0

        # Round 1: local bounds on a halo-less partitioning.
        with _trace_span("dist.bound_round", algorithm=bound_algorithm):
            bound_workers = self._spawn_workers(halo=0.0)
            messages += len(bound_workers)  # query broadcast
            bytes_shipped += len(bound_workers) * _BYTES_PER_MESSAGE
            bound_answers, crashes, retries = self._gather(
                bound_workers, keywords, bound_algorithm, cid, "bound"
            )
        messages += len(bound_answers)
        bytes_shipped += len(bound_answers) * _BYTES_PER_MESSAGE
        round_times = [a.compute_seconds for a in bound_answers]
        makespan += max(round_times, default=0.0)
        total_compute += sum(round_times)

        feasible = [a for a in bound_answers if a.group is not None]
        if not feasible:
            # No single partition covers the query: the optimum spans cell
            # borders wider than any local view.  Solve centrally.
            _log.info(
                "dist.central_fallback",
                workers=len(bound_workers),
                algorithm=exact_algorithm,
            )
            with _trace_span("dist.central_solve", algorithm=exact_algorithm):
                central_group, central_time = self._central_solve(
                    keywords, exact_algorithm
                )
            return DistributedResult(
                group=central_group,
                rounds=1,
                messages=messages,
                bytes_shipped=bytes_shipped,
                makespan_seconds=makespan + central_time,
                total_compute_seconds=total_compute + central_time,
                fell_back_to_central=True,
                worker_answers=bound_answers,
                worker_crashes=crashes,
                worker_retries=retries,
            )

        d_ub = min(a.diameter for a in feasible)
        best_bound = min(feasible, key=lambda a: a.diameter)
        _log.debug(
            "dist.bound_round_done", d_ub=d_ub, feasible_workers=len(feasible)
        )

        if d_ub == 0.0:
            # A single object covers the query: already optimal.
            return DistributedResult(
                group=best_bound.group,
                rounds=1,
                messages=messages,
                bytes_shipped=bytes_shipped,
                makespan_seconds=makespan,
                total_compute_seconds=total_compute,
                worker_answers=bound_answers,
                worker_crashes=crashes,
                worker_retries=retries,
            )

        # Round 2: re-partition with halo = d_ub and solve exactly.
        with _trace_span(
            "dist.exact_round", algorithm=exact_algorithm, halo=d_ub
        ):
            exact_workers = self._spawn_workers(halo=d_ub)
            replicated = sum(len(w.partition.halo_ids) for w in exact_workers)
            shipped = sum(len(w) for w in exact_workers)
            bytes_shipped += shipped * _BYTES_PER_OBJECT
            messages += 2 * len(exact_workers)  # query out, answer back
            bytes_shipped += 2 * len(exact_workers) * _BYTES_PER_MESSAGE

            exact_answers, exact_crashes, exact_retries = self._gather(
                exact_workers, keywords, exact_algorithm, cid, "exact"
            )
            crashes += exact_crashes
            retries += exact_retries
        round_times = [a.compute_seconds for a in exact_answers]
        makespan += max(round_times, default=0.0)
        total_compute += sum(round_times)

        candidates = [a for a in exact_answers if a.group is not None]
        best = min(candidates, key=lambda a: a.diameter, default=None)
        if best is None or best.diameter > d_ub:
            winner = best_bound.group
        else:
            winner = best.group

        result = DistributedResult(
            group=winner,
            rounds=2,
            messages=messages,
            bytes_shipped=bytes_shipped,
            makespan_seconds=makespan,
            total_compute_seconds=total_compute,
            worker_answers=bound_answers + exact_answers,
            worker_crashes=crashes,
            worker_retries=retries,
        )
        result.group.stats["replicated_objects"] = float(replicated)
        return result

    # ------------------------------------------------------------------ #

    #: Failures treated as a dead worker rather than a query error.
    _WORKER_FAILURES = (WorkerCrashed, BrokenPipeError, EOFError)

    def _gather(
        self,
        workers: List[Worker],
        keywords: Sequence[str],
        algorithm: str,
        cid: str,
        round_label: str,
    ):
        """Collect every worker's answer, respawning crashed workers.

        A crash (dead process, torn pipe) is retried up to
        ``max_worker_retries`` times with capped exponential backoff; each
        retry rebuilds the worker from its partition (the simulated
        equivalent of restarting the process on its shard) and resubmits.
        A worker that keeps dying is abandoned with an infeasible answer —
        round 1 then bounds from the surviving workers, and round 2's
        minimum is taken over the survivors, so the query still completes.

        Returns ``(answers, crashes, retries)``; ``workers`` is updated in
        place with any respawned instances.
        """
        answers: List[LocalAnswer] = []
        crashes = 0
        retries = 0
        for i, worker in enumerate(workers):
            attempt = 0
            while True:
                try:
                    self._acquire_worker_slot(worker.worker_id, round_label)
                    try:
                        answers.append(
                            worker.answer(
                                keywords,
                                algorithm=algorithm,
                                epsilon=self.epsilon,
                                correlation_id=cid,
                            )
                        )
                    finally:
                        self._release_worker_slot(worker.worker_id)
                    break
                except self._WORKER_FAILURES as err:
                    crashes += 1
                    self._crash_counter.inc(1.0, round=round_label)
                    _log.warning(
                        "dist.worker_crashed",
                        worker_id=worker.worker_id,
                        round=round_label,
                        attempt=attempt,
                        error=str(err),
                    )
                    if attempt >= self.max_worker_retries:
                        _log.warning(
                            "dist.worker_abandoned",
                            worker_id=worker.worker_id,
                            round=round_label,
                            attempts=attempt + 1,
                        )
                        answers.append(LocalAnswer(worker.worker_id, None, 0.0))
                        break
                    backoff = min(
                        self.retry_backoff_cap,
                        self.retry_backoff_seconds * (2.0 ** attempt),
                    )
                    if backoff > 0.0:
                        self._sleep(backoff)
                    worker = Worker(worker.partition, self.dataset)
                    workers[i] = worker
                    retries += 1
                    self._worker_retry_counter.inc(1.0, round=round_label)
                    attempt += 1
        return answers, crashes, retries

    def _spawn_workers(self, halo: float) -> List[Worker]:
        return [
            Worker(p, self.dataset) for p in self.partitioner.partitions(halo)
        ]

    def _central_solve(self, keywords, algorithm):
        if self._central_engine is None:
            self._central_engine = MCKEngine(self.dataset)
        started = time.perf_counter()
        group = self._central_engine.query(
            keywords, algorithm=algorithm, epsilon=self.epsilon
        )
        return group, time.perf_counter() - started
