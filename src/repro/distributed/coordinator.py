"""Coordinator for the simulated distributed mCK setting (paper §8).

The paper closes with "it would be of interest to investigate the problem
of answering the mCK query in a distributed setting"; this module builds
that setting as a single-process simulation with explicit communication
accounting, so the protocol's behaviour (rounds, bytes, makespan,
speed-up) can be studied without a cluster.

Protocol (two rounds):

1. **Bound round.** Every worker runs the cheap GKG on its core+halo view
   and reports its local feasible diameter.  The minimum reported value
   ``d_ub`` upper-bounds the global optimum *if* some worker is feasible;
   when every partition misses a keyword, the coordinator falls back to a
   centralized solve (counted in the stats).
2. **Exact round.** The dataset is re-partitioned with halo width
   ``d_ub``.  Any group with diameter <= d_ub containing an object in a
   worker's core then lies entirely inside that worker's view, so every
   worker solves EXACT locally and the minimum over workers is the global
   optimum.  Workers run in parallel; the simulated makespan per round is
   the slowest worker's compute time.

Communication accounting: one message per worker per round plus the query
broadcast; replicated objects are charged per (x, y, keywords) record.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..core.engine import MCKEngine
from ..core.objects import Dataset
from ..core.result import Group
from ..exceptions import InfeasibleQueryError
from ..observability.logging import correlation_scope, get_logger
from ..observability.tracer import span as _trace_span
from .partition import GridPartitioner
from .worker import LocalAnswer, Worker

__all__ = ["DistributedMCKEngine", "DistributedResult"]

_log = get_logger("distributed.coordinator")

#: Charged bytes per shipped object record (two float64 + small keyword set).
_BYTES_PER_OBJECT = 48
#: Charged bytes per control/answer message.
_BYTES_PER_MESSAGE = 64


@dataclass
class DistributedResult:
    """Outcome of one distributed query with its cost accounting."""

    group: Group
    rounds: int
    messages: int
    bytes_shipped: int
    #: Simulated parallel wall-clock: sum over rounds of the slowest worker.
    makespan_seconds: float
    #: Total compute across all workers (the "cluster seconds").
    total_compute_seconds: float
    #: True when the coordinator had to solve centrally (no feasible local
    #: bound); the distributed protocol then adds no benefit.
    fell_back_to_central: bool = False
    worker_answers: List[LocalAnswer] = field(default_factory=list)


class DistributedMCKEngine:
    """Answer mCK queries over a dataset split across simulated workers."""

    def __init__(self, dataset: Dataset, n_workers: int = 4, epsilon: float = 0.01):
        dataset.finalize()
        self.dataset = dataset
        self.partitioner = GridPartitioner(dataset, n_workers)
        self.epsilon = epsilon
        self._central_engine: Optional[MCKEngine] = None

    @property
    def n_workers(self) -> int:
        return self.partitioner.n_workers

    # ------------------------------------------------------------------ #

    def query(
        self,
        keywords: Sequence[str],
        bound_algorithm: str = "GKG",
        exact_algorithm: str = "EXACT",
    ) -> DistributedResult:
        """Run the two-round distributed protocol."""
        with correlation_scope() as cid:
            with _trace_span(
                "dist.query", workers=self.n_workers, m=len(list(keywords))
            ):
                return self._query_traced(
                    keywords, bound_algorithm, exact_algorithm, cid
                )

    def _query_traced(
        self,
        keywords: Sequence[str],
        bound_algorithm: str,
        exact_algorithm: str,
        cid: str,
    ) -> DistributedResult:
        messages = 0
        bytes_shipped = 0
        makespan = 0.0
        total_compute = 0.0

        # Round 1: local bounds on a halo-less partitioning.
        with _trace_span("dist.bound_round", algorithm=bound_algorithm):
            bound_workers = self._spawn_workers(halo=0.0)
            messages += len(bound_workers)  # query broadcast
            bytes_shipped += len(bound_workers) * _BYTES_PER_MESSAGE
            bound_answers = [
                w.answer(
                    keywords,
                    algorithm=bound_algorithm,
                    epsilon=self.epsilon,
                    correlation_id=cid,
                )
                for w in bound_workers
            ]
        messages += len(bound_answers)
        bytes_shipped += len(bound_answers) * _BYTES_PER_MESSAGE
        round_times = [a.compute_seconds for a in bound_answers]
        makespan += max(round_times, default=0.0)
        total_compute += sum(round_times)

        feasible = [a for a in bound_answers if a.group is not None]
        if not feasible:
            # No single partition covers the query: the optimum spans cell
            # borders wider than any local view.  Solve centrally.
            _log.info(
                "dist.central_fallback",
                workers=len(bound_workers),
                algorithm=exact_algorithm,
            )
            with _trace_span("dist.central_solve", algorithm=exact_algorithm):
                central_group, central_time = self._central_solve(
                    keywords, exact_algorithm
                )
            return DistributedResult(
                group=central_group,
                rounds=1,
                messages=messages,
                bytes_shipped=bytes_shipped,
                makespan_seconds=makespan + central_time,
                total_compute_seconds=total_compute + central_time,
                fell_back_to_central=True,
                worker_answers=bound_answers,
            )

        d_ub = min(a.diameter for a in feasible)
        best_bound = min(feasible, key=lambda a: a.diameter)
        _log.debug(
            "dist.bound_round_done", d_ub=d_ub, feasible_workers=len(feasible)
        )

        if d_ub == 0.0:
            # A single object covers the query: already optimal.
            return DistributedResult(
                group=best_bound.group,
                rounds=1,
                messages=messages,
                bytes_shipped=bytes_shipped,
                makespan_seconds=makespan,
                total_compute_seconds=total_compute,
                worker_answers=bound_answers,
            )

        # Round 2: re-partition with halo = d_ub and solve exactly.
        with _trace_span(
            "dist.exact_round", algorithm=exact_algorithm, halo=d_ub
        ):
            exact_workers = self._spawn_workers(halo=d_ub)
            replicated = sum(len(w.partition.halo_ids) for w in exact_workers)
            shipped = sum(len(w) for w in exact_workers)
            bytes_shipped += shipped * _BYTES_PER_OBJECT
            messages += 2 * len(exact_workers)  # query out, answer back
            bytes_shipped += 2 * len(exact_workers) * _BYTES_PER_MESSAGE

            exact_answers = [
                w.answer(
                    keywords,
                    algorithm=exact_algorithm,
                    epsilon=self.epsilon,
                    correlation_id=cid,
                )
                for w in exact_workers
            ]
        round_times = [a.compute_seconds for a in exact_answers]
        makespan += max(round_times, default=0.0)
        total_compute += sum(round_times)

        candidates = [a for a in exact_answers if a.group is not None]
        best = min(candidates, key=lambda a: a.diameter, default=None)
        if best is None or best.diameter > d_ub:
            winner = best_bound.group
        else:
            winner = best.group

        result = DistributedResult(
            group=winner,
            rounds=2,
            messages=messages,
            bytes_shipped=bytes_shipped,
            makespan_seconds=makespan,
            total_compute_seconds=total_compute,
            worker_answers=bound_answers + exact_answers,
        )
        result.group.stats["replicated_objects"] = float(replicated)
        return result

    # ------------------------------------------------------------------ #

    def _spawn_workers(self, halo: float) -> List[Worker]:
        return [
            Worker(p, self.dataset) for p in self.partitioner.partitions(halo)
        ]

    def _central_solve(self, keywords, algorithm):
        if self._central_engine is None:
            self._central_engine = MCKEngine(self.dataset)
        started = time.perf_counter()
        group = self._central_engine.query(
            keywords, algorithm=algorithm, epsilon=self.epsilon
        )
        return group, time.perf_counter() - started
