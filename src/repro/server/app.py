"""Async HTTP/JSON serving tier over the query service.

:class:`MCKServer` is the network front end the ROADMAP's "millions of
users" need: a stdlib-``asyncio`` HTTP/1.1 server (see
:mod:`repro.server.http`) fronting a :class:`~repro.serving.QueryService`
whose worker-*process* pool (``process_algorithms=...``) runs the
CPU-bound EXACT / SKECa+ hot loops off the GIL.  The event loop only
parses frames and awaits futures; queries execute on the service's
admission-controlled worker pool, so one slow query never blocks the
accept loop.

Endpoints
---------
``POST /query``
    One mCK query.  Body: ``{"keywords": [...], "algorithm", "epsilon",
    "timeout", "explain"}``.  Degraded (anytime) answers return 200 with
    ``"degraded": true`` and their certified ``"quality"`` tag; admission
    rejections return 429 with a ``Retry-After`` header.
``POST /mutate``
    Atomic mutation batch (live engines only; 409 otherwise).
``GET /topk``
    Diversified top-k answers (``?keywords=a,b&k=3``).
``GET /healthz`` / ``GET /readyz``
    Liveness vs. readiness.  Readiness flips *before* overload: once the
    admission queue passes ``ready_fraction`` of its capacity the server
    answers 503 so a load balancer sheds first, while requests already
    arriving are still admitted until the queue is actually full.
``GET /metrics``
    Prometheus text exposition of the service's metric families.
``GET /flightz``
    Flight-recorder stats plus retained-trace summaries (when a
    :class:`~repro.observability.flight.FlightRecorder` is wired).

Overload contract: the existing :class:`~repro.serving.admission
.AdmissionController` and :class:`~repro.serving.breaker.CircuitBreaker`
sit unchanged at the edge — the HTTP layer only *translates* their typed
:class:`~repro.exceptions.QueryRejected` refusals into 429 responses
whose ``Retry-After`` is estimated from the observed p95 service time
and current queue depth.
"""

from __future__ import annotations

import asyncio
import math
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Tuple

from ..exceptions import (
    DatasetError,
    QueryError,
    QueryRejected,
    ReproError,
)
from ..observability.logging import get_logger
from ..serving.service import QueryService, ServedResult
from .http import HTTPError, HTTPRequest, read_request, render_response

__all__ = ["MCKServer", "ServerHandle"]

_log = get_logger("server")


class ServerHandle:
    """A running server's address plus its stop switch (thread mode)."""

    def __init__(self, server: "MCKServer", thread: threading.Thread):
        self._server = server
        self._thread = thread

    @property
    def host(self) -> str:
        return self._server.host

    @property
    def port(self) -> int:
        return self._server.port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def stop(self, timeout: float = 10.0) -> None:
        """Drain and stop the server; joins the serving thread."""
        self._server.request_stop()
        self._thread.join(timeout)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


class MCKServer:
    """Asyncio HTTP front end over one :class:`QueryService`.

    Parameters
    ----------
    service:
        The (already constructed) query service.  For off-GIL execution
        build it with ``process_algorithms=(...)``; for mutability build
        it over a :class:`~repro.live.LiveMCKEngine`.
    host / port:
        Bind address; ``port=0`` picks a free port (read :attr:`port`
        after :meth:`start`).
    ready_fraction:
        Queue-depth fraction of the admission capacity at which
        ``/readyz`` flips unready (default 0.8) — strictly below 1.0 so
        load balancers stop routing *before* admission starts rejecting.
    max_body_bytes:
        Request-body cap (413 beyond it).
    topk_limit:
        Upper bound on the ``k`` the /topk endpoint accepts.
    owns_service:
        When true, :meth:`close`/shutdown also closes the service (the
        CLI uses this; embedders usually manage the service themselves).
    """

    def __init__(
        self,
        service: QueryService,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        ready_fraction: float = 0.8,
        max_body_bytes: int = 1024 * 1024,
        topk_limit: int = 16,
        owns_service: bool = False,
    ):
        if not 0.0 < ready_fraction <= 1.0:
            raise ValueError("ready_fraction must be in (0, 1]")
        self.service = service
        self.host = host
        self.port = port
        self.ready_fraction = float(ready_fraction)
        self.max_body_bytes = int(max_body_bytes)
        self.topk_limit = int(topk_limit)
        self.owns_service = owns_service
        self._server: Optional[asyncio.base_events.Server] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stopping = asyncio.Event()
        self._draining = False
        #: Blocking endpoints (top-k, metrics rendering) run here so the
        #: event loop never stalls on CPU-bound work.
        self._aux = ThreadPoolExecutor(
            max_workers=2, thread_name_prefix="mck-http-aux"
        )
        metrics = service.metrics
        self._http_counter = metrics.counter(
            "mck_http_requests_total",
            help="HTTP requests served, by route and status code.",
            label_names=("route", "status"),
        )
        self._ready_gauge = metrics.gauge(
            "mck_server_ready",
            help="1 while /readyz answers ready, 0 while shedding.",
        )
        self._ready_gauge.set(1.0)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    async def start(self) -> None:
        """Bind and start accepting connections."""
        self._loop = asyncio.get_running_loop()
        self._stopping = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        _log.info("server.listening", host=self.host, port=self.port)

    async def serve_until_stopped(self) -> None:
        """Serve until :meth:`request_stop`; drains, then closes."""
        if self._server is None:
            await self.start()
        async with self._server:
            await self._stopping.wait()
        if self.owns_service:
            await asyncio.get_running_loop().run_in_executor(
                None, self.service.close
            )
        self._aux.shutdown(wait=False)

    def request_stop(self) -> None:
        """Thread-safe: flip unready, stop accepting, release the loop."""
        self._draining = True
        self._ready_gauge.set(0.0)
        loop = self._loop
        if loop is not None and not loop.is_closed():
            loop.call_soon_threadsafe(self._stopping.set)

    def run_in_thread(self) -> ServerHandle:
        """Start in a dedicated event-loop thread; returns the handle.

        The pattern tests, smoke scripts and ``mck serve-bench --http``
        share: the caller keeps its (synchronous) thread and talks to the
        server over a real socket.
        """
        started = threading.Event()
        failure: List[BaseException] = []

        def _runner() -> None:
            async def _main() -> None:
                try:
                    await self.start()
                except BaseException as err:  # bind failure -> caller
                    failure.append(err)
                    return
                finally:
                    started.set()
                await self.serve_until_stopped()

            asyncio.run(_main())

        thread = threading.Thread(
            target=_runner, name="mck-http-server", daemon=True
        )
        thread.start()
        started.wait()
        if failure:
            raise failure[0]
        return ServerHandle(self, thread)

    # ------------------------------------------------------------------ #
    # Readiness
    # ------------------------------------------------------------------ #

    def readiness(self) -> Tuple[bool, Dict[str, Any]]:
        """Current readiness plus the JSON detail /readyz reports."""
        admission = self.service.admission
        capacity = admission.capacity
        depth = admission.queue_depth
        threshold = (
            max(1, math.ceil(self.ready_fraction * capacity))
            if capacity is not None
            else None
        )
        recovery = getattr(self.service.engine, "recovery_report", None)
        if self._draining:
            ready, reason = False, "draining"
        elif recovery is not None and not recovery.complete:
            # A checkpointed engine still recovering (segment load / WAL
            # tail replay in progress) serves queries over a partial view;
            # stay unready so load balancers hold traffic until the store
            # reaches its restored state.
            ready, reason = False, f"recovering ({recovery.state})"
        elif threshold is not None and depth >= threshold:
            ready, reason = False, "admission queue beyond ready fraction"
        else:
            ready, reason = True, "ok"
        detail = {
            "ready": ready,
            "reason": reason,
            "queue_depth": depth,
            "capacity": capacity,
            "ready_threshold": threshold,
            "inflight": admission.inflight,
        }
        if recovery is not None:
            detail["recovery"] = recovery.as_dict()
        self._ready_gauge.set(1.0 if ready else 0.0)
        return ready, detail

    def _retry_after_seconds(self) -> int:
        """Estimated queue drain time, clamped to [1, 30] whole seconds."""
        est = self.service.metrics.service_time_p95() or 0.0
        depth = self.service.admission.queue_depth
        workers = max(1, self.service.max_workers)
        drain = est * (depth + 1) / workers
        return int(min(30, max(1, math.ceil(drain))))

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await read_request(
                        reader, max_body=self.max_body_bytes
                    )
                except HTTPError as err:
                    writer.write(
                        render_response(
                            err.status,
                            {"error": err.message},
                            keep_alive=False,
                        )
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                status, payload = await self._dispatch(request)
                writer.write(payload)
                await writer.drain()
                if not request.keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away; nothing to answer
        except asyncio.CancelledError:
            pass  # loop shutdown with a keep-alive connection parked here
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (
                ConnectionResetError,
                BrokenPipeError,
                asyncio.CancelledError,
            ):
                # The close waiter may itself be cancelled when the event
                # loop tears down mid-wait; finishing normally here keeps
                # asyncio's stream machinery from logging the cancelled
                # handler task.
                pass

    async def _dispatch(self, request: HTTPRequest) -> Tuple[int, bytes]:
        route = f"{request.method} {request.path}"
        try:
            status, body, extra = await self._route(request)
        except HTTPError as err:
            status, body, extra = err.status, {"error": err.message}, []
        except QueryRejected as err:
            status = 429
            body = {
                "error": str(err),
                "reason": err.reason,
                "trace_id": getattr(err, "trace_id", "") or "",
            }
            extra = [("Retry-After", str(self._retry_after_seconds()))]
        except ReproError as err:
            status, body, extra = 422, {"error": str(err)}, []
        except Exception as err:  # noqa: BLE001 - last-resort 500
            _log.warning("server.internal_error", route=route, error=str(err))
            status, body, extra = 500, {"error": f"internal error: {err}"}, []
        content_type = (
            "text/plain; version=0.0.4; charset=utf-8"
            if isinstance(body, str)
            else "application/json"
        )
        self._http_counter.inc(1.0, route=request.path, status=str(status))
        return status, render_response(
            status,
            body,
            content_type=content_type,
            headers=extra,
            keep_alive=request.keep_alive,
        )

    async def _route(
        self, request: HTTPRequest
    ) -> Tuple[int, Any, List[Tuple[str, str]]]:
        method, path = request.method, request.path
        if path == "/healthz":
            self._require(method, "GET")
            return 200, {"status": "ok"}, []
        if path == "/readyz":
            self._require(method, "GET")
            ready, detail = self.readiness()
            return (200 if ready else 503), detail, []
        if path == "/metrics":
            self._require(method, "GET")
            text = await self._in_aux(self.service.metrics.to_prometheus)
            return 200, text, []
        if path == "/flightz":
            self._require(method, "GET")
            return 200, self._flight_document(), []
        if path == "/query":
            self._require(method, "POST")
            return await self._handle_query(request)
        if path == "/mutate":
            self._require(method, "POST")
            return await self._handle_mutate(request)
        if path == "/topk":
            self._require(method, "GET")
            return await self._handle_topk(request)
        raise HTTPError(404, f"no route for {path}")

    @staticmethod
    def _require(method: str, expected: str) -> None:
        if method != expected:
            raise HTTPError(405, f"use {expected}")

    async def _in_aux(self, fn, *args):
        return await asyncio.get_running_loop().run_in_executor(
            self._aux, fn, *args
        )

    # ------------------------------------------------------------------ #
    # Endpoints
    # ------------------------------------------------------------------ #

    async def _handle_query(
        self, request: HTTPRequest
    ) -> Tuple[int, dict, List[Tuple[str, str]]]:
        if self._draining:
            raise QueryRejected("shutdown", "server is draining")
        body = request.json()
        keywords = body.get("keywords")
        if not isinstance(keywords, (list, str)) or not keywords:
            raise HTTPError(400, "body needs a non-empty 'keywords' list")
        try:
            future = self.service.submit(
                keywords,
                algorithm=str(body.get("algorithm", "SKECa+")),
                epsilon=body.get("epsilon", 0.01),
                timeout=body.get("timeout"),
                explain=bool(body.get("explain", False)),
            )
        except QueryError as err:
            # Anything wrong with the request itself (bad keywords, an
            # unknown algorithm, a bad epsilon) is the client's fault.
            raise HTTPError(400, str(err)) from err
        # QueryRejected propagates to _dispatch's 429 translation — both
        # the immediate refusal above and a post-admission shed below.
        result = await asyncio.wrap_future(future)
        return self._result_document(result)

    def _result_document(
        self, result: ServedResult
    ) -> Tuple[int, dict, List[Tuple[str, str]]]:
        stats = result.stats
        document: Dict[str, Any] = {
            "keywords": list(result.request.keywords),
            "algorithm": stats.algorithm,
            "epsilon": result.request.epsilon,
            "cache_hit": stats.cache_hit,
            "degraded": stats.degraded,
            "quality": stats.quality,
            "elapsed_seconds": stats.total_seconds,
            "correlation_id": stats.correlation_id,
            "trace_id": stats.trace_id,
        }
        if result.explain is not None:
            document["explain"] = result.explain
        if result.group is None:
            document["status"] = "error"
            document["error"] = result.error or "query failed"
            status = 504 if "time budget" in (result.error or "") else 422
            return status, document, []
        group = result.group
        document["status"] = "degraded" if stats.degraded else "ok"
        document["diameter"] = group.diameter
        document["object_ids"] = list(group.object_ids)
        document["objects"] = self._object_details(group.object_ids)
        return 200, document, []

    def _object_details(self, oids) -> List[dict]:
        """Best-effort object records; a concurrently deleted oid is skipped."""
        view = self.service.engine.dataset
        details = []
        for oid in oids:
            try:
                obj = view[oid]
            except (KeyError, IndexError):
                continue
            details.append(
                {
                    "oid": obj.oid,
                    "x": obj.x,
                    "y": obj.y,
                    "keywords": sorted(obj.keywords),
                }
            )
        return details

    async def _handle_mutate(
        self, request: HTTPRequest
    ) -> Tuple[int, dict, List[Tuple[str, str]]]:
        if self._draining:
            raise QueryRejected("shutdown", "server is draining")
        body = request.json()
        inserts = self._parse_inserts(body.get("inserts", []))
        deletes = body.get("deletes", [])
        if not isinstance(deletes, list) or not all(
            isinstance(o, int) for o in deletes
        ):
            raise HTTPError(400, "'deletes' must be a list of integer oids")
        if not inserts and not deletes:
            raise HTTPError(400, "mutation body is empty")
        try:
            future = self.service.submit_mutation(
                inserts=inserts, deletes=deletes
            )
        except TypeError as err:
            raise HTTPError(
                409, "this server fronts an immutable (sealed) dataset"
            ) from err
        try:
            oids = await asyncio.wrap_future(future)
        except DatasetError as err:
            raise HTTPError(422, str(err)) from err
        return (
            200,
            {
                "oids": list(oids),
                "epoch": self.service.engine.epoch,
                "inserted": len(inserts),
                "deleted": len(deletes),
            },
            [],
        )

    @staticmethod
    def _parse_inserts(raw: Any) -> List[Tuple[float, float, List[str]]]:
        if not isinstance(raw, list):
            raise HTTPError(400, "'inserts' must be a list")
        inserts: List[Tuple[float, float, List[str]]] = []
        for item in raw:
            if isinstance(item, dict):
                triple = (item.get("x"), item.get("y"), item.get("keywords"))
            elif isinstance(item, (list, tuple)) and len(item) == 3:
                triple = tuple(item)
            else:
                raise HTTPError(
                    400,
                    "each insert must be [x, y, [keywords...]] or "
                    "{x, y, keywords}",
                )
            x, y, keywords = triple
            if (
                not isinstance(x, (int, float))
                or not isinstance(y, (int, float))
                or isinstance(x, bool)
                or isinstance(y, bool)
                or not isinstance(keywords, list)
                or not keywords
            ):
                raise HTTPError(
                    400, "insert needs numeric x, y and non-empty keywords"
                )
            inserts.append((float(x), float(y), [str(k) for k in keywords]))
        return inserts

    async def _handle_topk(
        self, request: HTTPRequest
    ) -> Tuple[int, dict, List[Tuple[str, str]]]:
        raw_keywords = request.query.get("keywords", [])
        keywords = [
            part.strip()
            for chunk in raw_keywords
            for part in chunk.split(",")
            if part.strip()
        ]
        if not keywords:
            raise HTTPError(400, "need ?keywords=a,b,...")
        try:
            k = int(request.param("k", "3"))
            epsilon = float(request.param("epsilon", "0.01"))
        except ValueError as err:
            raise HTTPError(400, f"bad numeric parameter: {err}") from err
        if not 1 <= k <= self.topk_limit:
            raise HTTPError(400, f"k must be in [1, {self.topk_limit}]")
        algorithm = request.param("algorithm", "SKECa+")
        policy = request.param("policy", "disjoint")
        if not hasattr(self.service.engine.dataset, "columns"):
            # A scatter-gather router's cross-shard view has no columnar
            # compile surface; top-k would need a per-shard merge that
            # the extension does not implement yet.
            raise HTTPError(
                501, "top-k is not available on a sharded (scatter) engine"
            )

        def _solve():
            from ..extensions.topk import top_k_mck

            # A live engine's .dataset is the current merged view; top-k
            # compiles against it exactly like the algorithms do.
            return top_k_mck(
                self.service.engine.dataset,
                keywords,
                k,
                policy=policy,
                algorithm=algorithm,
                epsilon=epsilon,
            )

        try:
            groups = await self._in_aux(_solve)
        except QueryError as err:
            raise HTTPError(400, str(err)) from err
        return (
            200,
            {
                "keywords": keywords,
                "k": k,
                "policy": policy,
                "groups": [
                    {
                        "rank": rank,
                        "diameter": group.diameter,
                        "object_ids": list(group.object_ids),
                        "objects": self._object_details(group.object_ids),
                    }
                    for rank, group in enumerate(groups, start=1)
                ],
            },
            [],
        )

    def _flight_document(self) -> dict:
        flight = self.service.flight
        if flight is None:
            raise HTTPError(404, "no flight recorder is wired on this server")
        return {
            "stats": flight.stats(),
            "traces": [trace.as_dict() for trace in flight.traces()],
        }
