"""Minimal HTTP/1.1 framing over asyncio streams.

The serving tier stays dependency-light on purpose (stdlib only), so the
wire protocol is hand-rolled here rather than pulled from a framework:
request-line + headers + ``Content-Length`` body parsing on the way in,
status line + headers + body rendering on the way out, with keep-alive
connection reuse.  The subset implemented is exactly what a JSON API
needs — no chunked transfer encoding (answered with 411), no multipart,
no TLS (terminate upstream).

Limits are enforced while *reading*, so an abusive client cannot balloon
memory: an oversized request line, header block or declared body tears
the connection down with a 4xx before the bytes are buffered.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple
from urllib.parse import parse_qs, unquote, urlsplit

__all__ = [
    "HTTPError",
    "HTTPRequest",
    "read_request",
    "render_response",
    "STATUS_PHRASES",
]

#: Reason phrases for every status the server emits.
STATUS_PHRASES = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    411: "Length Required",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Hard caps, generous for a JSON API but fatal for abuse.
MAX_REQUEST_LINE = 8 * 1024
MAX_HEADER_BYTES = 32 * 1024
DEFAULT_MAX_BODY = 1024 * 1024


class HTTPError(Exception):
    """A protocol-level failure mapped straight to a status code."""

    def __init__(self, status: int, message: str):
        self.status = status
        self.message = message
        super().__init__(f"{status}: {message}")


@dataclass
class HTTPRequest:
    """One parsed request."""

    method: str
    #: Decoded path component (no query string).
    path: str
    #: Raw request target as sent.
    target: str
    #: Query-string parameters (``parse_qs`` semantics: list values).
    query: Dict[str, List[str]] = field(default_factory=dict)
    #: Headers with lower-cased names; duplicates joined with ``", "``.
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"

    def param(self, name: str, default: Optional[str] = None) -> Optional[str]:
        values = self.query.get(name)
        return values[0] if values else default

    def json(self) -> dict:
        """Decode the body as a JSON object (empty body = ``{}``)."""
        if not self.body:
            return {}
        try:
            document = json.loads(self.body)
        except ValueError as err:
            raise HTTPError(400, f"invalid JSON body: {err}") from err
        if not isinstance(document, dict):
            raise HTTPError(400, "JSON body must be an object")
        return document


async def _read_line(reader: asyncio.StreamReader, limit: int) -> bytes:
    try:
        line = await reader.readuntil(b"\n")
    except asyncio.IncompleteReadError as err:
        if not err.partial:
            return b""  # clean EOF between requests
        raise HTTPError(400, "connection closed mid-request") from err
    except asyncio.LimitOverrunError as err:
        raise HTTPError(413, "line too long") from err
    if len(line) > limit:
        raise HTTPError(413, "line too long")
    return line.rstrip(b"\r\n")


async def read_request(
    reader: asyncio.StreamReader, max_body: int = DEFAULT_MAX_BODY
) -> Optional[HTTPRequest]:
    """Parse one request off the stream; ``None`` on clean EOF.

    Raises :class:`HTTPError` on malformed input — the caller answers
    with the error's status and closes the connection.
    """
    raw_line = await _read_line(reader, MAX_REQUEST_LINE)
    if not raw_line:
        return None
    try:
        line = raw_line.decode("ascii")
    except UnicodeDecodeError as err:
        raise HTTPError(400, "non-ASCII request line") from err
    parts = line.split(" ")
    if len(parts) != 3:
        raise HTTPError(400, f"malformed request line: {line!r}")
    method, target, version = parts
    if not version.startswith("HTTP/1."):
        raise HTTPError(400, f"unsupported protocol {version!r}")

    headers: Dict[str, str] = {}
    header_bytes = 0
    while True:
        raw = await _read_line(reader, MAX_HEADER_BYTES)
        if not raw:
            break
        header_bytes += len(raw)
        if header_bytes > MAX_HEADER_BYTES:
            raise HTTPError(413, "header block too large")
        try:
            text = raw.decode("latin-1")
        except UnicodeDecodeError as err:  # pragma: no cover - latin-1 total
            raise HTTPError(400, "undecodable header") from err
        name, sep, value = text.partition(":")
        if not sep or not name.strip():
            raise HTTPError(400, f"malformed header line: {text!r}")
        key = name.strip().lower()
        value = value.strip()
        if key in headers:
            headers[key] = f"{headers[key]}, {value}"
        else:
            headers[key] = value

    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise HTTPError(411, "chunked transfer encoding is not supported")
    body = b""
    length_header = headers.get("content-length")
    if length_header is not None:
        try:
            length = int(length_header)
        except ValueError as err:
            raise HTTPError(400, "invalid Content-Length") from err
        if length < 0:
            raise HTTPError(400, "negative Content-Length")
        if length > max_body:
            raise HTTPError(413, f"body exceeds {max_body} bytes")
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError as err:
                raise HTTPError(400, "connection closed mid-body") from err

    split = urlsplit(target)
    request = HTTPRequest(
        method=method.upper(),
        path=unquote(split.path) or "/",
        target=target,
        query=parse_qs(split.query, keep_blank_values=True),
        headers=headers,
        body=body,
    )
    if version == "HTTP/1.0" and headers.get("connection", "").lower() != "keep-alive":
        request.headers["connection"] = "close"
    return request


def render_response(
    status: int,
    body: object = b"",
    *,
    content_type: str = "application/json",
    headers: Optional[List[Tuple[str, str]]] = None,
    keep_alive: bool = True,
) -> bytes:
    """Serialize one response (dict bodies are JSON-encoded)."""
    if isinstance(body, (dict, list)):
        payload = (
            json.dumps(body, sort_keys=True, allow_nan=False) + "\n"
        ).encode("utf-8")
    elif isinstance(body, str):
        payload = body.encode("utf-8")
    else:
        payload = bytes(body)
    phrase = STATUS_PHRASES.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {phrase}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(payload)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in headers or ():
        lines.append(f"{name}: {value}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + payload
