"""Network serving tier: asyncio HTTP/JSON API over the query service.

The package is dependency-light by design — :mod:`repro.server.http`
hand-rolls the HTTP/1.1 subset a JSON API needs over asyncio streams,
:mod:`repro.server.app` mounts the query/mutate/top-k/health/metrics
routes on a :class:`~repro.serving.QueryService`, and
:mod:`repro.server.loadgen` drives it with open-loop Poisson traffic
for benchmarks and smoke tests.
"""

from .app import MCKServer, ServerHandle
from .http import HTTPError, HTTPRequest, read_request, render_response
from .loadgen import HTTPLoadResult, run_http_load

__all__ = [
    "MCKServer",
    "ServerHandle",
    "HTTPError",
    "HTTPRequest",
    "read_request",
    "render_response",
    "HTTPLoadResult",
    "run_http_load",
]
