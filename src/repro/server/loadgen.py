"""Open-loop Poisson load generator for the HTTP serving tier.

Closed-loop benchmarks (issue, wait, repeat) hide overload: the clients
slow down with the server, so the arrival rate politely tracks capacity
and the queue never grows.  Real traffic does not wait.  This generator
is **open-loop**: arrival times are drawn from a Poisson process
(exponential inter-arrival gaps) *up front* and each request fires at
its appointed time on a worker thread whether or not earlier requests
have come back — exactly the regime where admission control, 429s and
readiness shedding earn their keep.

Transport is stdlib :mod:`http.client` over real sockets with one
persistent keep-alive connection per worker thread, so measured
latencies include wire framing but not per-request TCP handshakes.
"""

from __future__ import annotations

import http.client
import json
import random
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

__all__ = ["HTTPLoadResult", "run_http_load"]


@dataclass
class HTTPLoadResult:
    """Aggregate outcome of one open-loop run."""

    offered: int
    duration_seconds: float
    #: HTTP status code -> count (0 for transport errors).
    status_counts: Dict[int, int] = field(default_factory=dict)
    #: Wire latencies (seconds) of 200-family responses, sorted.
    latencies: List[float] = field(default_factory=list)
    #: Count of 200 responses whose body carried ``degraded: true``.
    degraded: int = 0
    #: Retry-After values observed on 429 responses.
    retry_after: List[int] = field(default_factory=list)

    @property
    def completed(self) -> int:
        return sum(
            count for status, count in self.status_counts.items()
            if 200 <= status < 300
        )

    @property
    def rejected(self) -> int:
        return self.status_counts.get(429, 0)

    @property
    def errors(self) -> int:
        return sum(
            count for status, count in self.status_counts.items()
            if status == 0 or status >= 500
        )

    def percentile(self, q: float) -> Optional[float]:
        if not self.latencies:
            return None
        idx = min(len(self.latencies) - 1, int(q * len(self.latencies)))
        return self.latencies[idx]

    @property
    def achieved_rate(self) -> float:
        return self.offered / self.duration_seconds if self.duration_seconds else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "offered": self.offered,
            "completed": self.completed,
            "rejected": self.rejected,
            "errors": self.errors,
            "degraded": self.degraded,
            "duration_seconds": self.duration_seconds,
            "achieved_rate_qps": self.achieved_rate,
            "latency_p50_seconds": self.percentile(0.50),
            "latency_p95_seconds": self.percentile(0.95),
            "latency_p99_seconds": self.percentile(0.99),
            "status_counts": {
                str(status): count
                for status, count in sorted(self.status_counts.items())
            },
            "retry_after_max": max(self.retry_after, default=None),
        }


class _Client(threading.local):
    """One keep-alive connection per worker thread."""

    connection: Optional[http.client.HTTPConnection] = None


def _post_query(
    client: _Client,
    host: str,
    port: int,
    body: bytes,
    timeout: float,
) -> Tuple[int, Optional[float], Optional[int], bool]:
    """Returns (status, latency or None, retry_after or None, degraded)."""
    start = time.perf_counter()
    try:
        conn = client.connection
        if conn is None:
            conn = client.connection = http.client.HTTPConnection(
                host, port, timeout=timeout
            )
        conn.request(
            "POST",
            "/query",
            body=body,
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        payload = response.read()
        latency = time.perf_counter() - start
        status = response.status
        if 200 <= status < 300:
            degraded = False
            try:
                degraded = bool(json.loads(payload).get("degraded"))
            except ValueError:
                pass
            return status, latency, None, degraded
        retry_after: Optional[int] = None
        if status == 429:
            header = response.getheader("Retry-After")
            if header is not None and header.isdigit():
                retry_after = int(header)
        return status, None, retry_after, False
    except (OSError, http.client.HTTPException):
        # Transport failure: drop the connection so the next request on
        # this thread reconnects instead of inheriting a poisoned socket.
        if client.connection is not None:
            try:
                client.connection.close()
            except OSError:
                pass
            client.connection = None
        return 0, None, None, False


def run_http_load(
    host: str,
    port: int,
    keyword_pool: Sequence[Sequence[str]],
    *,
    rate: float = 50.0,
    duration: float = 5.0,
    algorithm: Union[str, Sequence[str]] = "SKECa+",
    epsilon: float = 0.01,
    timeout: Optional[float] = None,
    request_timeout: float = 30.0,
    client_threads: int = 32,
    seed: int = 0,
) -> HTTPLoadResult:
    """Drive ``rate`` req/s of Poisson arrivals at the server for ``duration``.

    ``keyword_pool`` supplies the query mix — each arrival picks one
    keyword set uniformly; ``algorithm`` may be a single name or a
    sequence sampled the same way.  ``timeout`` (the per-query time
    budget) rides inside the request body; ``request_timeout`` bounds
    the socket.
    """
    if rate <= 0:
        raise ValueError("rate must be positive")
    if not keyword_pool:
        raise ValueError("keyword_pool must not be empty")
    algorithms = [algorithm] if isinstance(algorithm, str) else list(algorithm)
    if not algorithms:
        raise ValueError("need at least one algorithm")
    rng = random.Random(seed)

    # Draw the full arrival schedule up front: the schedule must not
    # depend on how the server responds (that is what "open loop" means).
    arrivals: List[float] = []
    t = 0.0
    while True:
        t += rng.expovariate(rate)
        if t >= duration:
            break
        arrivals.append(t)

    bodies = [
        json.dumps(
            {
                "keywords": list(rng.choice(keyword_pool)),
                "algorithm": rng.choice(algorithms),
                "epsilon": epsilon,
                **({"timeout": timeout} if timeout is not None else {}),
            }
        ).encode("utf-8")
        for _ in arrivals
    ]

    client = _Client()
    result = HTTPLoadResult(offered=len(arrivals), duration_seconds=duration)
    lock = threading.Lock()

    def _fire(body: bytes) -> None:
        status, latency, retry_after, degraded = _post_query(
            client, host, port, body, request_timeout
        )
        with lock:
            result.status_counts[status] = (
                result.status_counts.get(status, 0) + 1
            )
            if latency is not None:
                result.latencies.append(latency)
            if retry_after is not None:
                result.retry_after.append(retry_after)
            if degraded:
                result.degraded += 1

    start = time.perf_counter()
    with ThreadPoolExecutor(
        max_workers=client_threads, thread_name_prefix="mck-loadgen"
    ) as pool:
        futures = []
        for offset, body in zip(arrivals, bodies):
            delay = start + offset - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            futures.append(pool.submit(_fire, body))
        for future in futures:
            future.result()
    result.duration_seconds = time.perf_counter() - start
    result.latencies.sort()
    return result
