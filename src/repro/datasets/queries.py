"""Query-set generation following the paper's methodology (§6.1, §6.2.4).

For each query the generator:

1. draws a random circle whose diameter is at most a given fraction of
   the dataset diameter ("to set the upper bound diameter at 20% ... we
   first randomly draw a circle with diameter no larger than 20% of the
   diameter of all objects");
2. collects the terms of the objects inside the circle, optionally
   restricted to the lower-x% frequency pool of the whole dataset
   (the §6.2.4 frequency experiment);
3. samples m distinct terms from that set weighted by their in-circle
   frequencies ("we randomly select the terms that appear in this circle
   according to their frequencies").

The construction guarantees the optimal group's diameter cannot exceed the
bound, since the sampled circle itself encloses a feasible group.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.objects import Dataset
from ..core.query import MCKQuery
from ..exceptions import DatasetError

__all__ = ["QueryWorkload", "generate_queries", "generate_workload"]


@dataclass
class QueryWorkload:
    """A generated query set plus the parameters that produced it."""

    dataset_name: str
    m: int
    diameter_fraction: float
    term_pool_fraction: float
    seed: int
    queries: List[MCKQuery] = field(default_factory=list)

    def __iter__(self):
        return iter(self.queries)

    def __len__(self) -> int:
        return len(self.queries)


def generate_queries(
    dataset: Dataset,
    m: int,
    count: int,
    diameter_fraction: float = 0.2,
    term_pool_fraction: float = 1.0,
    seed: int = 0,
    max_attempts_per_query: int = 200,
) -> List[MCKQuery]:
    """Generate ``count`` m-keyword queries per the paper's recipe."""
    if m < 1:
        raise DatasetError("m must be positive")
    if not 0.0 < diameter_fraction <= 1.0:
        raise DatasetError("diameter_fraction must be in (0, 1]")
    if not 0.0 < term_pool_fraction <= 1.0:
        raise DatasetError("term_pool_fraction must be in (0, 1]")

    rng = random.Random(seed)
    coords = dataset.coords
    if len(coords) == 0:
        raise DatasetError("cannot generate queries over an empty dataset")
    extent_diam = dataset.extent_diameter()
    min_xy = coords.min(axis=0)
    max_xy = coords.max(axis=0)

    allowed_terms = _term_pool(dataset, term_pool_fraction)

    queries: List[MCKQuery] = []
    attempts = 0
    budget = count * max_attempts_per_query
    while len(queries) < count:
        attempts += 1
        if attempts > budget:
            raise DatasetError(
                f"could not generate {count} feasible queries "
                f"(m={m}, diameter_fraction={diameter_fraction}, "
                f"term_pool_fraction={term_pool_fraction}) — pool too small"
            )
        diameter = rng.uniform(0.3, 1.0) * diameter_fraction * extent_diam
        cx = rng.uniform(min_xy[0], max_xy[0])
        cy = rng.uniform(min_xy[1], max_xy[1])
        terms = _sample_terms_in_circle(
            dataset, coords, cx, cy, diameter / 2.0, m, allowed_terms, rng
        )
        if terms is not None:
            queries.append(MCKQuery(terms))
    return queries


def generate_workload(
    dataset: Dataset,
    m: int,
    count: int,
    diameter_fraction: float = 0.2,
    term_pool_fraction: float = 1.0,
    seed: int = 0,
) -> QueryWorkload:
    """Generate a :class:`QueryWorkload` (queries plus provenance)."""
    queries = generate_queries(
        dataset,
        m,
        count,
        diameter_fraction=diameter_fraction,
        term_pool_fraction=term_pool_fraction,
        seed=seed,
    )
    return QueryWorkload(
        dataset_name=dataset.name,
        m=m,
        diameter_fraction=diameter_fraction,
        term_pool_fraction=term_pool_fraction,
        seed=seed,
        queries=queries,
    )


# ---------------------------------------------------------------------- #


def _term_pool(dataset: Dataset, fraction: float) -> Optional[frozenset]:
    """The lower-``fraction`` term pool by ascending document frequency.

    Returns ``None`` for the full pool (fraction == 1.0), which skips the
    membership filter in the hot loop.
    """
    if fraction >= 1.0:
        return None
    ranked = dataset.vocabulary.terms_by_frequency()
    keep = max(1, int(len(ranked) * fraction))
    return frozenset(ranked[:keep])


def _sample_terms_in_circle(
    dataset: Dataset,
    coords: np.ndarray,
    cx: float,
    cy: float,
    radius: float,
    m: int,
    allowed_terms: Optional[frozenset],
    rng: random.Random,
) -> Optional[List[str]]:
    dx = coords[:, 0] - cx
    dy = coords[:, 1] - cy
    inside = np.nonzero(dx * dx + dy * dy <= radius * radius)[0]
    if len(inside) < 1:
        return None

    local_freq: Dict[str, int] = {}
    for oid in inside:
        # Sorted iteration: frozenset order is hash-seed dependent and the
        # weighted draw below must be reproducible across processes.
        for term in sorted(dataset[int(oid)].keywords):
            if allowed_terms is not None and term not in allowed_terms:
                continue
            local_freq[term] = local_freq.get(term, 0) + 1
    if len(local_freq) < m:
        return None

    # Weighted sampling of m distinct terms by local frequency.
    terms = sorted(local_freq)
    weights = [float(local_freq[t]) for t in terms]
    chosen: List[str] = []
    for _ in range(m):
        total = sum(weights)
        pick = rng.uniform(0.0, total)
        acc = 0.0
        idx = 0
        for i, w in enumerate(weights):
            acc += w
            if pick <= acc:
                idx = i
                break
        chosen.append(terms[idx])
        del terms[idx]
        del weights[idx]
    return chosen
