"""Dataset serialization: JSON-lines and CSV, plus lat/lon import.

JSON-lines is the canonical format (one object per line: ``x``, ``y``,
``keywords``); CSV is provided for interoperability with spreadsheet-style
POI exports.  :func:`load_latlon_records` converts WGS-84 records to UTM on
the way in, matching the paper's §6.1 preprocessing.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from ..core.objects import Dataset
from ..exceptions import DatasetError
from .utm import latlon_to_utm

__all__ = [
    "save_jsonl",
    "load_jsonl",
    "save_csv",
    "load_csv",
    "load_latlon_records",
]

_PathLike = Union[str, Path]


def save_jsonl(dataset: Dataset, path: _PathLike) -> None:
    """Write a dataset to JSON-lines."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        header = {"format": "repro-mck-v1", "name": dataset.name}
        fh.write(json.dumps(header) + "\n")
        for obj in dataset:
            record = {"x": obj.x, "y": obj.y, "keywords": sorted(obj.keywords)}
            fh.write(json.dumps(record) + "\n")


def load_jsonl(path: _PathLike) -> Dataset:
    """Read a dataset written by :func:`save_jsonl`."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as fh:
        first = fh.readline()
        if not first:
            raise DatasetError(f"{path}: empty file")
        header = _parse_line(first, path, 1)
        name = "dataset"
        records: List[Tuple[float, float, List[str]]] = []
        if header.get("format") == "repro-mck-v1":
            name = str(header.get("name", name))
        else:
            records.append(_record_from(header, path, 1))
        for lineno, line in enumerate(fh, start=2):
            if not line.strip():
                continue
            payload = _parse_line(line, path, lineno)
            records.append(_record_from(payload, path, lineno))
    return Dataset.from_records(records, name=name)


def _parse_line(line: str, path: Path, lineno: int) -> dict:
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise DatasetError(f"{path}:{lineno}: invalid JSON ({exc})") from exc
    if not isinstance(payload, dict):
        raise DatasetError(f"{path}:{lineno}: expected a JSON object")
    return payload


def _record_from(payload: dict, path: Path, lineno: int):
    try:
        x = float(payload["x"])
        y = float(payload["y"])
        keywords = payload["keywords"]
    except (KeyError, TypeError, ValueError) as exc:
        raise DatasetError(f"{path}:{lineno}: malformed record ({exc})") from exc
    if not isinstance(keywords, (list, tuple)) or not keywords:
        raise DatasetError(f"{path}:{lineno}: keywords must be a non-empty list")
    return (x, y, [str(k) for k in keywords])


def save_csv(dataset: Dataset, path: _PathLike, delimiter: str = ",") -> None:
    """Write a dataset to CSV with a ``x,y,keywords`` header.

    Keywords are joined with ``;`` inside the third column.
    """
    path = Path(path)
    with path.open("w", encoding="utf-8", newline="") as fh:
        writer = csv.writer(fh, delimiter=delimiter)
        writer.writerow(["x", "y", "keywords"])
        for obj in dataset:
            writer.writerow([obj.x, obj.y, ";".join(sorted(obj.keywords))])


def load_csv(path: _PathLike, delimiter: str = ",", name: str = "dataset") -> Dataset:
    """Read a CSV written by :func:`save_csv`."""
    path = Path(path)
    records: List[Tuple[float, float, List[str]]] = []
    with path.open("r", encoding="utf-8", newline="") as fh:
        reader = csv.reader(fh, delimiter=delimiter)
        header = next(reader, None)
        if header is None:
            raise DatasetError(f"{path}: empty file")
        for lineno, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) != 3:
                raise DatasetError(f"{path}:{lineno}: expected 3 columns")
            try:
                x = float(row[0])
                y = float(row[1])
            except ValueError as exc:
                raise DatasetError(f"{path}:{lineno}: bad coordinates") from exc
            keywords = [k for k in row[2].split(";") if k]
            if not keywords:
                raise DatasetError(f"{path}:{lineno}: no keywords")
            records.append((x, y, keywords))
    return Dataset.from_records(records, name=name)


def load_latlon_records(
    records: Iterable[Tuple[float, float, Sequence[str]]],
    name: str = "dataset",
    zone: int = 0,
) -> Dataset:
    """Build a dataset from WGS-84 ``(lat, lon, keywords)`` records.

    All records are projected into one UTM zone — the zone of the first
    record unless ``zone`` forces one — so Euclidean distances are metres,
    exactly the paper's preprocessing (§6.1).
    """
    ds = Dataset(name=name)
    fixed_zone = zone
    fixed_south = None
    for lat, lon, keywords in records:
        if fixed_zone == 0:
            _e, _n, fixed_zone = latlon_to_utm(lat, lon)
        if fixed_south is None:
            fixed_south = lat < 0.0
        easting, northing, _z = latlon_to_utm(
            lat, lon, zone=fixed_zone, south=fixed_south
        )
        ds.add(easting, northing, keywords)
    ds.finalize()
    return ds
