"""WGS-84 latitude/longitude to UTM conversion, from scratch.

The paper (§6.1) converts all crawled coordinates to the Universal
Transverse Mercator system under the World Geodetic System 84 ellipsoid so
that Euclidean distances approximate ground distances in metres.  We
implement the standard Krüger series expansion used by USGS/Snyder,
accurate to well under a metre inside a zone — more than enough for
city-scale diameters.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

__all__ = ["latlon_to_utm", "utm_zone", "UTM_SCALE_FACTOR"]

# WGS-84 ellipsoid constants.
_WGS84_A = 6378137.0  # semi-major axis (m)
_WGS84_F = 1.0 / 298.257223563  # flattening
_WGS84_E2 = _WGS84_F * (2.0 - _WGS84_F)  # first eccentricity squared
_WGS84_EP2 = _WGS84_E2 / (1.0 - _WGS84_E2)  # second eccentricity squared

UTM_SCALE_FACTOR = 0.9996
_FALSE_EASTING = 500000.0
_FALSE_NORTHING_SOUTH = 10000000.0


def utm_zone(lon: float) -> int:
    """UTM zone number (1..60) of a longitude in degrees."""
    lon = ((lon + 180.0) % 360.0) - 180.0
    zone = int((lon + 180.0) / 6.0) + 1
    return min(zone, 60)


def latlon_to_utm(
    lat: float, lon: float, zone: int = 0, south: Optional[bool] = None
) -> Tuple[float, float, int]:
    """Convert WGS-84 ``(lat, lon)`` in degrees to UTM ``(easting, northing, zone)``.

    ``zone`` may be forced (e.g. to keep a dataset spanning a zone border
    in one planar frame, as location crawls of a single city need); 0 picks
    the natural zone of the longitude.  ``south`` likewise forces the
    hemisphere convention (whether the 10,000 km false northing is
    applied): a dataset straddling the equator must use one convention for
    all records or cross-equator distances jump by the false northing.
    ``None`` picks the point's own hemisphere.
    """
    if not (-80.0 <= lat <= 84.0):
        raise ValueError(f"latitude {lat} outside UTM validity band [-80, 84]")
    if zone == 0:
        zone = utm_zone(lon)
    if not (1 <= zone <= 60):
        raise ValueError(f"invalid UTM zone {zone}")

    lat_rad = math.radians(lat)
    lon_rad = math.radians(lon)
    lon0 = math.radians((zone - 1) * 6.0 - 180.0 + 3.0)

    sin_lat = math.sin(lat_rad)
    cos_lat = math.cos(lat_rad)
    tan_lat = math.tan(lat_rad)

    n = _WGS84_A / math.sqrt(1.0 - _WGS84_E2 * sin_lat * sin_lat)
    t = tan_lat * tan_lat
    c = _WGS84_EP2 * cos_lat * cos_lat
    a_coef = cos_lat * (lon_rad - lon0)

    # Meridian arc length (Snyder 3-21).
    e2 = _WGS84_E2
    e4 = e2 * e2
    e6 = e4 * e2
    m = _WGS84_A * (
        (1.0 - e2 / 4.0 - 3.0 * e4 / 64.0 - 5.0 * e6 / 256.0) * lat_rad
        - (3.0 * e2 / 8.0 + 3.0 * e4 / 32.0 + 45.0 * e6 / 1024.0)
        * math.sin(2.0 * lat_rad)
        + (15.0 * e4 / 256.0 + 45.0 * e6 / 1024.0) * math.sin(4.0 * lat_rad)
        - (35.0 * e6 / 3072.0) * math.sin(6.0 * lat_rad)
    )

    k0 = UTM_SCALE_FACTOR
    easting = (
        k0
        * n
        * (
            a_coef
            + (1.0 - t + c) * a_coef**3 / 6.0
            + (5.0 - 18.0 * t + t * t + 72.0 * c - 58.0 * _WGS84_EP2)
            * a_coef**5
            / 120.0
        )
        + _FALSE_EASTING
    )
    northing = k0 * (
        m
        + n
        * tan_lat
        * (
            a_coef**2 / 2.0
            + (5.0 - t + 9.0 * c + 4.0 * c * c) * a_coef**4 / 24.0
            + (61.0 - 58.0 * t + t * t + 600.0 * c - 330.0 * _WGS84_EP2)
            * a_coef**6
            / 720.0
        )
    )
    apply_false_northing = lat < 0.0 if south is None else south
    if apply_false_northing:
        northing += _FALSE_NORTHING_SOUTH
    return easting, northing, zone
