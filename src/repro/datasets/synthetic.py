"""Synthetic geo-textual dataset generators.

The paper evaluates on three crawled datasets (Table 1): NY and LA
(Google-Places POIs) and TW (geo-tweets).  Those crawls are not
redistributable, so we generate synthetic datasets with the same
*structure* — the properties the algorithms are actually sensitive to:

* **spatial clustering**: city data concentrates around neighbourhoods;
  we draw a Gaussian-mixture over a city-scale UTM extent with a uniform
  background fraction;
* **keyword skew**: term frequencies in POI names and tweets are heavy-
  tailed; we sample from a Zipf distribution whose exponent and vocabulary
  size are tuned per preset to match Table 1's unique-words/total-words
  ratios;
* **description length**: POIs carry few terms (NY ≈ 2.4, LA ≈ 2.5 words
  per object), tweets many (TW ≈ 5.2).

Presets :func:`make_ny_like`, :func:`make_la_like` and :func:`make_tw_like`
default to scaled-down sizes (pure-Python algorithms run ~100x slower than
the authors' C++), with a ``scale`` knob to grow them; the experiment
harness states the sizes it used next to every reproduced figure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..core.objects import Dataset

__all__ = [
    "SyntheticConfig",
    "generate_city",
    "make_ny_like",
    "make_la_like",
    "make_tw_like",
    "PRESETS",
]


@dataclass(frozen=True)
class SyntheticConfig:
    """Parameters of one synthetic city crawl."""

    name: str
    n_objects: int
    vocab_size: int
    #: Mean keywords per object; actual counts are 1 + Poisson(mean - 1).
    words_per_object: float
    #: Zipf exponent of the term-frequency distribution.
    zipf_exponent: float = 1.0
    #: Square extent side in metres (city scale).
    extent: float = 50_000.0
    n_clusters: int = 40
    #: Std-dev of each spatial cluster, metres.
    cluster_spread: float = 1_200.0
    #: Fraction of objects scattered uniformly instead of clustered.
    background_fraction: float = 0.15
    seed: int = 7

    def scaled(self, scale: float) -> "SyntheticConfig":
        """A proportionally larger/smaller variant of this configuration."""
        return SyntheticConfig(
            name=self.name,
            n_objects=max(1, int(self.n_objects * scale)),
            vocab_size=max(8, int(self.vocab_size * scale)),
            words_per_object=self.words_per_object,
            zipf_exponent=self.zipf_exponent,
            extent=self.extent,
            n_clusters=self.n_clusters,
            cluster_spread=self.cluster_spread,
            background_fraction=self.background_fraction,
            seed=self.seed,
        )


def generate_city(config: SyntheticConfig) -> Dataset:
    """Generate one synthetic dataset from a configuration."""
    rng = np.random.default_rng(config.seed)
    xy = _sample_locations(config, rng)
    keyword_lists = _sample_keywords(config, rng)
    ds = Dataset(name=config.name)
    for row in range(config.n_objects):
        ds.add(float(xy[row, 0]), float(xy[row, 1]), keyword_lists[row])
    ds.finalize()
    return ds


def _sample_locations(config: SyntheticConfig, rng: np.random.Generator) -> np.ndarray:
    n = config.n_objects
    n_background = int(n * config.background_fraction)
    n_clustered = n - n_background

    centers = rng.uniform(0.0, config.extent, size=(config.n_clusters, 2))
    # Uneven cluster popularity, like real neighbourhoods.
    weights = rng.dirichlet(np.full(config.n_clusters, 0.7))
    assignment = rng.choice(config.n_clusters, size=n_clustered, p=weights)
    clustered = centers[assignment] + rng.normal(
        0.0, config.cluster_spread, size=(n_clustered, 2)
    )
    background = rng.uniform(0.0, config.extent, size=(n_background, 2))
    xy = np.vstack([clustered, background])
    np.clip(xy, 0.0, config.extent, out=xy)
    rng.shuffle(xy, axis=0)
    return xy


def _sample_keywords(
    config: SyntheticConfig, rng: np.random.Generator
) -> List[List[str]]:
    v = config.vocab_size
    ranks = np.arange(1, v + 1, dtype=np.float64)
    probs = ranks ** (-config.zipf_exponent)
    probs /= probs.sum()

    extra_mean = max(config.words_per_object - 1.0, 0.0)
    counts = 1 + rng.poisson(extra_mean, size=config.n_objects)
    total = int(counts.sum())
    draws = rng.choice(v, size=total, p=probs)

    keyword_lists: List[List[str]] = []
    cursor = 0
    for c in counts:
        chunk = draws[cursor : cursor + int(c)]
        cursor += int(c)
        # Deduplicate while keeping at least one keyword.
        terms = sorted(set(int(t) for t in chunk))
        keyword_lists.append([f"t{t}" for t in terms])
    return keyword_lists


# ------------------------------------------------------------------ #
# Presets mirroring Table 1's structure at reduced scale.
#
# Table 1 ratios: NY 0.24 unique words per object, 2.36 words/object;
# LA 0.22 and 2.53; TW 0.49 and 5.17.  The presets keep those ratios.
# ------------------------------------------------------------------ #

_NY = SyntheticConfig(
    name="NY-like",
    n_objects=20_000,
    vocab_size=4_800,
    words_per_object=2.36,
    zipf_exponent=1.0,
    extent=40_000.0,
    n_clusters=45,
    cluster_spread=900.0,
    seed=11,
)

_LA = SyntheticConfig(
    name="LA-like",
    n_objects=30_000,
    vocab_size=6_700,
    words_per_object=2.53,
    zipf_exponent=1.0,
    extent=60_000.0,
    n_clusters=60,
    cluster_spread=1_400.0,
    seed=22,
)

_TW = SyntheticConfig(
    name="TW-like",
    n_objects=40_000,
    vocab_size=19_600,
    words_per_object=5.17,
    zipf_exponent=1.05,
    extent=80_000.0,
    n_clusters=80,
    cluster_spread=2_000.0,
    background_fraction=0.25,
    seed=33,
)

PRESETS = {"NY": _NY, "LA": _LA, "TW": _TW}


def make_ny_like(scale: float = 1.0, seed: Optional[int] = None) -> Dataset:
    """NY-like POI dataset (clustered, short descriptions)."""
    return _make_preset(_NY, scale, seed)


def make_la_like(scale: float = 1.0, seed: Optional[int] = None) -> Dataset:
    """LA-like POI dataset (larger extent, more clusters)."""
    return _make_preset(_LA, scale, seed)


def make_tw_like(scale: float = 1.0, seed: Optional[int] = None) -> Dataset:
    """TW-like geo-tweet dataset (long texts, huge vocabulary)."""
    return _make_preset(_TW, scale, seed)


def _make_preset(base: SyntheticConfig, scale: float, seed: Optional[int]) -> Dataset:
    config = base.scaled(scale) if scale != 1.0 else base
    if seed is not None:
        config = SyntheticConfig(
            **{**config.__dict__, "seed": seed}  # dataclass is frozen; rebuild
        )
    return generate_city(config)
