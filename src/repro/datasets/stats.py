"""Dataset statistics in the shape of the paper's Table 1."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from ..core.objects import Dataset

__all__ = ["DatasetStats", "table1_stats"]


@dataclass(frozen=True)
class DatasetStats:
    """One row of Table 1."""

    name: str
    n_objects: int
    unique_words: int
    total_words: int

    @property
    def words_per_object(self) -> float:
        return self.total_words / self.n_objects if self.n_objects else 0.0

    @property
    def unique_ratio(self) -> float:
        return self.unique_words / self.n_objects if self.n_objects else 0.0


def table1_stats(datasets: Iterable[Dataset]) -> List[DatasetStats]:
    """Compute Table-1 rows for the given datasets."""
    rows = []
    for ds in datasets:
        rows.append(
            DatasetStats(
                name=ds.name,
                n_objects=len(ds),
                unique_words=ds.unique_word_count(),
                total_words=ds.total_word_count(),
            )
        )
    return rows
