"""Workload persistence: save/load query sets with their provenance.

A benchmark run is only comparable across versions if the *workload* is
identical; persisting the generated queries (plus the parameters that
produced them) makes runs reproducible even across generator changes.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Union

from ..core.query import MCKQuery
from ..exceptions import DatasetError
from .queries import QueryWorkload

__all__ = ["save_workload", "load_workload"]

_FORMAT = "repro-workload-v1"


def save_workload(workload: QueryWorkload, path: Union[str, Path]) -> None:
    """Write a workload to one JSON document."""
    document = {
        "format": _FORMAT,
        "dataset_name": workload.dataset_name,
        "m": workload.m,
        "diameter_fraction": workload.diameter_fraction,
        "term_pool_fraction": workload.term_pool_fraction,
        "seed": workload.seed,
        "queries": [list(q.keywords) for q in workload.queries],
    }
    Path(path).write_text(json.dumps(document, indent=2), encoding="utf-8")


def load_workload(path: Union[str, Path]) -> QueryWorkload:
    """Read a workload written by :func:`save_workload`."""
    try:
        document = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise DatasetError(f"{path}: invalid JSON ({exc})") from exc
    if not isinstance(document, dict) or document.get("format") != _FORMAT:
        raise DatasetError(f"{path}: not a {_FORMAT} document")
    try:
        return QueryWorkload(
            dataset_name=str(document["dataset_name"]),
            m=int(document["m"]),
            diameter_fraction=float(document["diameter_fraction"]),
            term_pool_fraction=float(document["term_pool_fraction"]),
            seed=int(document["seed"]),
            queries=[MCKQuery(q) for q in document["queries"]],
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise DatasetError(f"{path}: malformed workload ({exc})") from exc
