"""Data substrate: synthetic city generators, serialization, UTM, queries."""

from .io import load_csv, load_jsonl, load_latlon_records, save_csv, save_jsonl
from .queries import QueryWorkload, generate_queries, generate_workload
from .stats import DatasetStats, table1_stats
from .synthetic import (
    PRESETS,
    SyntheticConfig,
    generate_city,
    make_la_like,
    make_ny_like,
    make_tw_like,
)
from .workloads import load_workload, save_workload
from .utm import UTM_SCALE_FACTOR, latlon_to_utm, utm_zone

__all__ = [
    "load_csv",
    "load_jsonl",
    "load_latlon_records",
    "save_csv",
    "save_jsonl",
    "QueryWorkload",
    "generate_queries",
    "generate_workload",
    "DatasetStats",
    "table1_stats",
    "PRESETS",
    "SyntheticConfig",
    "generate_city",
    "make_la_like",
    "make_ny_like",
    "make_tw_like",
    "save_workload",
    "load_workload",
    "UTM_SCALE_FACTOR",
    "latlon_to_utm",
    "utm_zone",
]
