"""Inverted keyword file: term id -> posting list of object ids.

The virtual bR*-tree method [22] reads the relevant objects for a query
from an inverted file before building its per-query tree; GKG and the
SKEC-family algorithms use the same posting lists to materialise ``O'``,
the set of objects containing at least one query keyword (paper §4).

Posting lists are kept sorted by object id, which makes the set algebra
columnar: the ``O'`` union and the all-terms intersection both run as
sorted-array merges over contiguous int64 columns when the vectorized
kernels are enabled (falling back to Python sets on the object path).
Dense intersections can also route through a bitmap — one boolean column
over the id space — which beats the k-way merge when the lists are large
relative to the universe.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set

import numpy as np

from ..kernels import vectorized_enabled

__all__ = ["InvertedIndex"]

#: Intersection strategy flips to a bitmap when the smallest posting list
#: covers at least this fraction of the id universe — below that, the
#: sorted-merge touches far less memory than a universe-wide column.
_BITMAP_DENSITY = 0.05


class InvertedIndex:
    """Posting lists over integer term ids.

    Lists are kept sorted by object id, which makes unions (the ``O'``
    computation) cheap and the output deterministic.
    """

    def __init__(self) -> None:
        self._postings: Dict[int, List[int]] = {}
        #: Sorted int64 posting columns, materialised lazily per term and
        #: dropped whenever the term's list changes.
        self._columns: Dict[int, np.ndarray] = {}

    def add_object(self, object_id: int, term_ids: Iterable[int]) -> None:
        for tid in term_ids:
            self._postings.setdefault(tid, []).append(object_id)
            self._columns.pop(tid, None)

    def finalize(self) -> None:
        """Sort and deduplicate all posting lists (idempotent)."""
        for tid, lst in self._postings.items():
            if len(lst) > 1:
                self._postings[tid] = sorted(set(lst))

    def posting(self, term_id: int) -> List[int]:
        """Object ids containing ``term_id`` (empty list when unseen)."""
        return self._postings.get(term_id, [])

    def posting_column(self, term_id: int) -> np.ndarray:
        """The posting list as a sorted, deduplicated int64 column."""
        col = self._columns.get(term_id)
        if col is None:
            lst = self._postings.get(term_id, ())
            col = np.unique(np.asarray(lst, dtype=np.int64))
            self._columns[term_id] = col
        return col

    def document_frequency(self, term_id: int) -> int:
        return len(self._postings.get(term_id, ()))

    def relevant_objects(self, term_ids: Sequence[int]) -> List[int]:
        """Sorted union of posting lists: the paper's ``O'`` for a query."""
        if vectorized_enabled():
            cols = [self.posting_column(tid) for tid in set(term_ids)]
            cols = [c for c in cols if len(c)]
            if not cols:
                return []
            if len(cols) == 1:
                return cols[0].tolist()
            merged = np.unique(np.concatenate(cols))
            return merged.tolist()
        merged_set: Set[int] = set()
        for tid in term_ids:
            merged_set.update(self._postings.get(tid, ()))
        return sorted(merged_set)

    def objects_with_all_terms(self, term_ids: Sequence[int]) -> List[int]:
        """Sorted intersection of posting lists: objects holding every term.

        An object here covers the whole query alone (the degenerate
        optimal answer with diameter 0).  Two columnar strategies:

        * **sorted-array merge** — successive ``np.intersect1d`` starting
          from the shortest list, so the working set only shrinks;
        * **bitmap** — when the shortest list is dense in the id universe,
          one boolean column per remaining term, AND-ed in place.

        Both produce the identical sorted id list; the object path uses
        Python sets.
        """
        wanted = list(dict.fromkeys(term_ids))
        if not wanted:
            return []
        if not vectorized_enabled():
            acc: Optional[Set[int]] = None
            for tid in wanted:
                holders = set(self._postings.get(tid, ()))
                acc = holders if acc is None else (acc & holders)
                if not acc:
                    return []
            return sorted(acc or ())
        cols = sorted(
            (self.posting_column(tid) for tid in wanted), key=len
        )
        smallest = cols[0]
        if len(smallest) == 0:
            return []
        universe = int(smallest[-1]) + 1
        if len(cols) > 1 and len(smallest) >= universe * _BITMAP_DENSITY:
            alive = np.zeros(universe, dtype=bool)
            alive[smallest] = True
            for col in cols[1:]:
                mask = np.zeros(universe, dtype=bool)
                inside = col[col < universe]
                mask[inside] = True
                alive &= mask
                if not alive.any():
                    return []
            return np.flatnonzero(alive).tolist()
        acc_col = smallest
        for col in cols[1:]:
            acc_col = np.intersect1d(acc_col, col, assume_unique=True)
            if len(acc_col) == 0:
                return []
        return acc_col.tolist()

    def uncoverable_terms(self, term_ids: Sequence[int]) -> List[int]:
        """Query term ids with empty posting lists (query infeasible)."""
        return [tid for tid in term_ids if not self._postings.get(tid)]

    def __len__(self) -> int:
        return len(self._postings)

    def __contains__(self, term_id: int) -> bool:
        return term_id in self._postings
