"""Inverted keyword file: term id -> posting list of object ids.

The virtual bR*-tree method [22] reads the relevant objects for a query
from an inverted file before building its per-query tree; GKG and the
SKEC-family algorithms use the same posting lists to materialise ``O'``,
the set of objects containing at least one query keyword (paper §4).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set

from ..exceptions import DatasetError

__all__ = ["InvertedIndex"]


class InvertedIndex:
    """Posting lists over integer term ids.

    Lists are kept sorted by object id, which makes unions (the ``O'``
    computation) cheap and the output deterministic.
    """

    def __init__(self) -> None:
        self._postings: Dict[int, List[int]] = {}

    def add_object(self, object_id: int, term_ids: Iterable[int]) -> None:
        for tid in term_ids:
            self._postings.setdefault(tid, []).append(object_id)

    def finalize(self) -> None:
        """Sort and deduplicate all posting lists (idempotent)."""
        for tid, lst in self._postings.items():
            if len(lst) > 1:
                self._postings[tid] = sorted(set(lst))

    def posting(self, term_id: int) -> List[int]:
        """Object ids containing ``term_id`` (empty list when unseen)."""
        return self._postings.get(term_id, [])

    def document_frequency(self, term_id: int) -> int:
        return len(self._postings.get(term_id, ()))

    def relevant_objects(self, term_ids: Sequence[int]) -> List[int]:
        """Sorted union of posting lists: the paper's ``O'`` for a query."""
        merged: Set[int] = set()
        for tid in term_ids:
            merged.update(self._postings.get(tid, ()))
        return sorted(merged)

    def uncoverable_terms(self, term_ids: Sequence[int]) -> List[int]:
        """Query term ids with empty posting lists (query infeasible)."""
        return [tid for tid in term_ids if not self._postings.get(tid)]

    def __len__(self) -> int:
        return len(self._postings)

    def __contains__(self, term_id: int) -> bool:
        return term_id in self._postings
