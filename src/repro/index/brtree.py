"""bR*-tree: an R*-tree whose nodes carry keyword bitmaps (Zhang et al. [21]).

Every node stores the union of the keyword bitmaps of the objects below it.
Subtrees whose bitmap lacks a wanted keyword are pruned during search —
this is the index primitive behind GKG's "nearest object containing term t"
and behind the VirbR baseline's node-combination enumeration.

Bitmaps are whole-vocabulary integer masks (see :mod:`repro.index.bitmap`).
The tree is built once per dataset via STR bulk loading; dynamic inserts are
supported and refresh the bitmap annotations along the affected paths by a
full bottom-up recomputation (documented trade-off: the library's workload
is build-once / query-many, matching the paper's disk-resident index).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from .mbr import MBR
from .rstar import LeafEntry, Node, RStarTree

__all__ = ["BRStarTree"]


class BRStarTree:
    """Keyword-augmented R*-tree over ``(object_id, x, y, keyword_mask)``."""

    def __init__(self, max_entries: int = 100):
        self._tree = RStarTree(max_entries=max_entries)
        self._item_mask: Dict[object, int] = {}
        self._node_mask: Dict[int, int] = {}
        self._masks_fresh = True

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def build(
        cls,
        records: Iterable[Tuple[object, float, float, int]],
        max_entries: int = 100,
    ) -> "BRStarTree":
        """Bulk load from ``(item, x, y, keyword_mask)`` records."""
        index = cls(max_entries=max_entries)
        plain = []
        for item, x, y, mask in records:
            index._item_mask[item] = mask
            plain.append((item, x, y))
        index._tree = RStarTree.bulk_load(plain, max_entries=max_entries)
        index._recompute_masks()
        return index

    def insert(self, item, x: float, y: float, mask: int) -> None:
        """Insert one record, maintaining bitmaps incrementally when safe.

        When the insert triggered no restructuring (no forced reinsert,
        split, or root growth — the common case, roughly ``1 - 1/fanout``
        of inserts), the new record's leaf→root parent chain is the only
        set of nodes whose subtree changed, and OR-ing the new mask along
        it keeps every bitmap exact.  A restructured insert (entries
        moved between nodes) falls back to marking the annotations stale;
        the next read triggers one full bottom-up recomputation.
        """
        # Re-registering an item can *change* its mask; bits of the old
        # mask may linger on other paths, so only a full recompute is safe.
        rebound = item in self._item_mask and self._item_mask[item] != mask
        self._item_mask[item] = mask
        tree = self._tree
        before = tree.restructures
        old_root = tree.root
        tree.insert(item, x, y)
        if (
            rebound
            or not self._masks_fresh
            or tree.restructures != before
            or tree.root is not old_root
        ):
            self._masks_fresh = False
            return
        leaf = tree._find_leaf(tree.root, item, float(x), float(y))
        if leaf is None:  # pragma: no cover - defensive; should not happen
            self._masks_fresh = False
            return
        node: Optional[Node] = leaf
        while node is not None:
            self._node_mask[id(node)] = self._node_mask.get(id(node), 0) | mask
            node = node.parent

    def _recompute_masks(self) -> None:
        self._node_mask.clear()
        self._compute_node_mask(self._tree.root)
        self._masks_fresh = True

    def _compute_node_mask(self, node: Node) -> int:
        mask = 0
        if node.is_leaf:
            for e in node.entries:
                mask |= self._item_mask.get(e.item, 0)
        else:
            for child in node.entries:
                mask |= self._compute_node_mask(child)
        self._node_mask[id(node)] = mask
        return mask

    def _ensure_fresh(self) -> None:
        if not self._masks_fresh:
            self._recompute_masks()

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #

    @property
    def root(self) -> Node:
        self._ensure_fresh()
        return self._tree.root

    def node_mask(self, node: Node) -> int:
        """Keyword bitmap of a node (union over its subtree)."""
        self._ensure_fresh()
        return self._node_mask[id(node)]

    def item_mask(self, item) -> int:
        return self._item_mask.get(item, 0)

    def __len__(self) -> int:
        return len(self._tree)

    def height(self) -> int:
        return self._tree.height()

    def check_invariants(self) -> None:
        """Structural R*-tree invariants plus bitmap consistency."""
        self._ensure_fresh()
        self._tree.check_invariants()
        self._check_mask(self._tree.root)

    def _check_mask(self, node: Node) -> None:
        expected = 0
        if node.is_leaf:
            for e in node.entries:
                expected |= self._item_mask.get(e.item, 0)
        else:
            for child in node.entries:
                self._check_mask(child)
                expected |= self._node_mask[id(child)]
        assert self._node_mask[id(node)] == expected, "stale node bitmap"

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def range_circle(self, cx: float, cy: float, r: float) -> Iterator[LeafEntry]:
        return self._tree.range_circle(cx, cy, r)

    def range_rect(self, box: MBR) -> Iterator[LeafEntry]:
        return self._tree.range_rect(box)

    def nearest_with_mask(
        self, x: float, y: float, required_mask: int
    ) -> Optional[LeafEntry]:
        """Nearest entry whose keyword mask intersects ``required_mask``.

        Subtrees whose bitmap is disjoint from ``required_mask`` are pruned
        — the bR*-tree's raison d'être, and the primitive Algorithm 4 (GKG)
        calls once per uncovered keyword.
        """
        self._ensure_fresh()
        node_mask = self._node_mask
        item_mask = self._item_mask
        return self._tree.nearest(
            x,
            y,
            predicate=lambda e: item_mask.get(e.item, 0) & required_mask != 0,
            prune=lambda nd: node_mask[id(nd)] & required_mask == 0,
        )

    def nearest_iter_with_mask(
        self, x: float, y: float, required_mask: int
    ) -> Iterator[Tuple[LeafEntry, float]]:
        """Increasing-distance iterator filtered to ``required_mask`` holders."""
        self._ensure_fresh()
        node_mask = self._node_mask
        item_mask = self._item_mask
        return self._tree.nearest_iter(
            x,
            y,
            predicate=lambda e: item_mask.get(e.item, 0) & required_mask != 0,
            prune=lambda nd: node_mask[id(nd)] & required_mask == 0,
        )

    def iter_leaf_entries(self) -> Iterator[LeafEntry]:
        return self._tree.iter_leaf_entries()
