"""CRC-checksummed on-disk segments for sealed bases.

A *segment* is the durable twin of a :class:`~repro.live.base.SealedBase`:
the PR 6 columnar layout serialized section by section — the sorted oid
column, the x/y coordinate columns, the CSR keyword term lists
(``term_indptr`` / ``term_ids``), and the packed keyword-mask matrix
(:func:`~repro.index.bitmap.pack_masks` over every object's global mask).
Loading a segment rebuilds the identical sealed base — same term ids,
same posting lists, same columns — without replaying a single WAL record
or re-interning a single keyword, which is what makes restart-from-
checkpoint a load instead of a rebuild.

Layout (little-endian throughout)::

    MCKSEG1\\n                                   8-byte magic
    <crc32 hex8> <json header>\\n                WAL-style framed header
    <section bytes> ...                         raw arrays, header order

The header records every section's dtype, shape, byte length, and CRC32,
plus the base name and the vocabulary's terms in id order.  Any torn
write, bit flip, or truncation fails verification with
:class:`~repro.exceptions.SegmentError` — loaders never guess.

Writes are atomic: the segment is written to ``<path>.tmp``, fsynced,
and renamed into place; callers (the checkpoint manager) fsync the
directory so the rename itself survives a crash.
"""

from __future__ import annotations

import json
import os
import zlib
from typing import Dict, List, Tuple

import numpy as np

from ..exceptions import SegmentError
from .bitmap import pack_masks, unpack_mask_row
from .columns import ColumnarStore

__all__ = ["write_segment", "load_segment", "segment_info", "fsync_dir"]

MAGIC = b"MCKSEG1\n"

#: Section name -> numpy dtype string, in on-disk order.
_SECTIONS: Tuple[Tuple[str, str], ...] = (
    ("oids", "<i8"),
    ("xs", "<f8"),
    ("ys", "<f8"),
    ("term_indptr", "<i8"),
    ("term_ids", "<i8"),
    ("masks", "<u8"),
)


def fsync_dir(path: str) -> None:
    """fsync a directory so a rename/creation inside it is durable."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _frame(body: bytes) -> bytes:
    return b"%08x %s\n" % (zlib.crc32(body) & 0xFFFFFFFF, body)


def _unframe(line: bytes, what: str) -> bytes:
    if not line.endswith(b"\n"):
        raise SegmentError(f"{what}: truncated header line")
    line = line[:-1]
    if len(line) < 10 or line[8:9] != b" ":
        raise SegmentError(f"{what}: malformed header framing")
    try:
        want = int(line[:8], 16)
    except ValueError:
        raise SegmentError(f"{what}: malformed header CRC field") from None
    body = line[9:]
    if zlib.crc32(body) & 0xFFFFFFFF != want:
        raise SegmentError(f"{what}: header CRC mismatch")
    return body


def write_segment(base, path: str) -> Dict:
    """Serialize a sealed base to ``path`` atomically; returns the header.

    ``base`` is any :class:`~repro.live.base.SealedBase`-shaped object
    (``name``, ``vocabulary``, ``columns``).  The file appears at ``path``
    fully written or not at all (write-temp, fsync, rename); the caller
    is responsible for fsyncing the containing directory.
    """
    cols = base.columns
    vocab = base.vocabulary
    terms = [vocab.term_of(tid) for tid in range(len(vocab))]
    # Masks are rebuilt row-wise from the CSR lists (arbitrary-width ints
    # survive any vocabulary size); pack_masks flattens them to uint64
    # words for the on-disk matrix.
    row_masks: List[int] = []
    indptr = cols.term_indptr
    tids = cols.term_ids
    for row in range(len(cols)):
        mask = 0
        for t in tids[indptr[row] : indptr[row + 1]]:
            mask |= 1 << int(t)
        row_masks.append(mask)
    masks = pack_masks(row_masks, max(1, len(vocab)))

    arrays = {
        "oids": np.ascontiguousarray(cols.oids, dtype="<i8"),
        "xs": np.ascontiguousarray(cols.xs, dtype="<f8"),
        "ys": np.ascontiguousarray(cols.ys, dtype="<f8"),
        "term_indptr": np.ascontiguousarray(cols.term_indptr, dtype="<i8"),
        "term_ids": np.ascontiguousarray(cols.term_ids, dtype="<i8"),
        "masks": np.ascontiguousarray(masks, dtype="<u8"),
    }
    sections = []
    for name, dtype in _SECTIONS:
        arr = arrays[name]
        raw = arr.tobytes()
        sections.append(
            {
                "name": name,
                "dtype": dtype,
                "shape": list(arr.shape),
                "bytes": len(raw),
                "crc": zlib.crc32(raw) & 0xFFFFFFFF,
            }
        )
    header = {
        "version": 1,
        "name": base.name,
        "objects": int(len(cols)),
        "terms": terms,
        "sections": sections,
    }
    body = json.dumps(header, sort_keys=True).encode("utf-8")

    tmp = path + ".tmp"
    with open(tmp, "wb") as fh:
        fh.write(MAGIC)
        fh.write(_frame(body))
        for name, _dtype in _SECTIONS:
            fh.write(arrays[name].tobytes())
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    return header


def segment_info(path: str) -> Dict:
    """Read and verify only a segment's header (cheap integrity peek)."""
    with open(path, "rb") as fh:
        magic = fh.read(len(MAGIC))
        if magic != MAGIC:
            raise SegmentError(f"{path}: bad segment magic")
        return json.loads(_unframe(fh.readline(), path).decode("utf-8"))


def load_segment(path: str):
    """Load and fully verify a segment; returns the rebuilt sealed base.

    Every section is CRC-checked against the header and the packed mask
    matrix is cross-validated against the CSR term lists row by row, so a
    segment that loads is internally consistent — a corrupt or torn file
    raises :class:`~repro.exceptions.SegmentError` instead of producing a
    silently wrong index.
    """
    from ..live.base import SealedBase  # deferred: live imports index

    with open(path, "rb") as fh:
        magic = fh.read(len(MAGIC))
        if magic != MAGIC:
            raise SegmentError(f"{path}: bad segment magic")
        try:
            header = json.loads(_unframe(fh.readline(), path).decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as err:
            raise SegmentError(f"{path}: undecodable header: {err}") from None
        if header.get("version") != 1:
            raise SegmentError(
                f"{path}: unsupported segment version {header.get('version')!r}"
            )
        arrays: Dict[str, np.ndarray] = {}
        declared = {s["name"]: s for s in header.get("sections", ())}
        for name, dtype in _SECTIONS:
            section = declared.get(name)
            if section is None:
                raise SegmentError(f"{path}: missing section {name!r}")
            raw = fh.read(int(section["bytes"]))
            if len(raw) != int(section["bytes"]):
                raise SegmentError(f"{path}: section {name!r} truncated")
            if zlib.crc32(raw) & 0xFFFFFFFF != int(section["crc"]):
                raise SegmentError(f"{path}: section {name!r} CRC mismatch")
            arr = np.frombuffer(raw, dtype=dtype).reshape(section["shape"])
            arrays[name] = arr

    oids = arrays["oids"].astype(np.int64)
    xs = arrays["xs"].astype(np.float64)
    ys = arrays["ys"].astype(np.float64)
    indptr = arrays["term_indptr"].astype(np.int64)
    term_ids = arrays["term_ids"].astype(np.int64)
    masks = arrays["masks"].astype(np.uint64)
    n = int(header["objects"])
    terms = [str(t) for t in header["terms"]]

    if len(oids) != n or len(xs) != n or len(ys) != n:
        raise SegmentError(f"{path}: column lengths disagree with header")
    if len(indptr) != n + 1 or (n and indptr[0] != 0):
        raise SegmentError(f"{path}: malformed CSR row pointers")
    if n and int(indptr[-1]) != len(term_ids):
        raise SegmentError(f"{path}: CSR term column length mismatch")
    if n and not np.all(np.diff(oids) > 0):
        raise SegmentError(f"{path}: oid column is not strictly ascending")
    if len(term_ids) and (
        int(term_ids.min()) < 0 or int(term_ids.max()) >= len(terms)
    ):
        raise SegmentError(f"{path}: term id outside vocabulary")
    if n and len(masks) != n:
        raise SegmentError(f"{path}: mask matrix row count mismatch")

    base = SealedBase(name=str(header.get("name", "live-base")))
    vocab = base.vocabulary
    for term in terms:
        vocab.add(term)
    if len(term_ids):
        freq = np.bincount(term_ids, minlength=len(terms))
        vocab._frequency = [int(f) for f in freq]

    from ..core.objects import GeoObject

    for row in range(n):
        oid = int(oids[row])
        row_tids = tuple(
            int(t) for t in term_ids[int(indptr[row]) : int(indptr[row + 1])]
        )
        if not row_tids:
            raise SegmentError(f"{path}: object {oid} has no keywords")
        want_mask = 0
        for t in row_tids:
            want_mask |= 1 << t
        if unpack_mask_row(masks[row]) != want_mask:
            raise SegmentError(
                f"{path}: mask matrix disagrees with CSR terms at oid {oid}"
            )
        kw = frozenset(vocab.term_of(t) for t in row_tids)
        base.objects[oid] = GeoObject(oid, float(xs[row]), float(ys[row]), kw)
        base._term_ids[oid] = row_tids
        base.inverted.add_object(oid, row_tids)
    base.inverted.finalize()
    # The columns were serialized oid-sorted, exactly the layout
    # SealedBase.columns would lazily build — install them directly.
    base._columns = ColumnarStore(oids, xs, ys, indptr, term_ids)
    return base
