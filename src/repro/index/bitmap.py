"""Keyword bitmaps.

The bR*-tree (Zhang et al. [21]) augments every R*-tree node with a bitmap
of the keywords appearing below it.  We encode bitmaps as arbitrary-width
Python ints: union is ``|``, coverage testing is a mask comparison, and the
representation is exact for vocabularies of any size.

Two granularities are used:

* *global* bitmaps over the whole vocabulary (one bit per term id) stored in
  the bR*-tree nodes, and
* *query-local* masks over the m query keywords (bits 0..m-1) used inside
  the algorithms, produced by :meth:`KeywordVocabulary.query_mask`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Sequence

import numpy as np

from ..exceptions import DatasetError

__all__ = [
    "KeywordVocabulary",
    "mask_of",
    "iter_bits",
    "popcount",
    "pack_masks",
    "unpack_mask_row",
    "bits_matrix",
]


def mask_of(term_ids: Iterable[int]) -> int:
    """Bitmap with the given bit positions set."""
    mask = 0
    for t in term_ids:
        mask |= 1 << t
    return mask


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the set bit positions of ``mask`` in increasing order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def popcount(mask: int) -> int:
    """Number of set bits."""
    return mask.bit_count()


# ---------------------------------------------------------------------- #
# Packed mask columns (struct-of-arrays storage for the columnar kernels)
# ---------------------------------------------------------------------- #

def pack_masks(masks: Sequence[int], width: int) -> np.ndarray:
    """Pack ``n`` arbitrary-width int bitmaps into an ``(n, W)`` uint64 array.

    ``W = ceil(width / 64)`` words per row, little-endian (word 0 holds
    bits 0..63).  This is the columnar twin of a ``List[int]`` mask column:
    contiguous, gather-friendly, and consumed batch-wise by the vectorized
    kernels.  For ``width <= 64`` the result is a single word per row and
    ``packed[:, 0]`` is a flat ``uint64`` mask column.
    """
    words = max(1, (int(width) + 63) // 64)
    packed = np.zeros((len(masks), words), dtype=np.uint64)
    low64 = (1 << 64) - 1
    for row, mask in enumerate(masks):
        mask = int(mask)
        w = 0
        while mask and w < words:
            packed[row, w] = mask & low64
            mask >>= 64
            w += 1
    return packed


def unpack_mask_row(packed_row: np.ndarray) -> int:
    """Rebuild the arbitrary-width Python int mask of one packed row."""
    mask = 0
    for w in range(len(packed_row) - 1, -1, -1):
        mask = (mask << 64) | int(packed_row[w])
    return mask


def bits_matrix(masks: Sequence[int], width: int) -> np.ndarray:
    """Expand masks into an ``(n, width)`` uint8 0/1 matrix.

    Column ``i`` flags which rows carry bit ``i`` — the representation the
    batched circleScan event walk consumes (per-keyword count updates
    become column-wise cumulative sums).
    """
    packed = masks if isinstance(masks, np.ndarray) else pack_masks(masks, width)
    if packed.ndim == 1:
        packed = packed[:, None]
    width = int(width)
    out = np.empty((packed.shape[0], width), dtype=np.uint8)
    for w in range((width + 63) // 64):
        lo = w * 64
        span = min(64, width - lo)
        shifts = np.arange(span, dtype=np.uint64)
        out[:, lo : lo + span] = (
            (packed[:, w, None] >> shifts[None, :]) & np.uint64(1)
        ).astype(np.uint8)
    return out


class KeywordVocabulary:
    """Bidirectional term <-> integer-id mapping with frequency counts.

    Term frequencies (number of objects containing the term) drive both the
    GKG least-frequent-keyword selection and the paper's §6.2.4
    frequency-bounded query generation.
    """

    def __init__(self) -> None:
        self._term_to_id: Dict[str, int] = {}
        self._id_to_term: List[str] = []
        self._frequency: List[int] = []

    def __len__(self) -> int:
        return len(self._id_to_term)

    def __contains__(self, term: str) -> bool:
        return term in self._term_to_id

    def add(self, term: str) -> int:
        """Intern ``term``; returns its id. Does not touch frequencies."""
        tid = self._term_to_id.get(term)
        if tid is None:
            tid = len(self._id_to_term)
            self._term_to_id[term] = tid
            self._id_to_term.append(term)
            self._frequency.append(0)
        return tid

    def observe(self, term: str) -> int:
        """Intern ``term`` and count one containing object."""
        tid = self.add(term)
        self._frequency[tid] += 1
        return tid

    def id_of(self, term: str) -> int:
        """The id of a known term; raises DatasetError when unseen."""
        try:
            return self._term_to_id[term]
        except KeyError:
            raise DatasetError(f"unknown keyword: {term!r}") from None

    def term_of(self, tid: int) -> str:
        """The term string for an id."""
        return self._id_to_term[tid]

    def frequency(self, term_or_id) -> int:
        """Document frequency of a term (by string or id)."""
        tid = term_or_id if isinstance(term_or_id, int) else self.id_of(term_or_id)
        return self._frequency[tid]

    def terms_by_frequency(self) -> List[str]:
        """All terms, least frequent first (the paper ranks ascending)."""
        order = sorted(range(len(self._id_to_term)), key=self._frequency.__getitem__)
        return [self._id_to_term[i] for i in order]

    def least_frequent(self, terms: Sequence[str]) -> str:
        """The least frequent of ``terms`` (GKG's ``t_inf``)."""
        if not terms:
            raise DatasetError("cannot pick least frequent of no terms")
        return min(terms, key=lambda t: self._frequency[self.id_of(t)])

    def global_mask(self, terms: Iterable[str]) -> int:
        """Whole-vocabulary bitmap of ``terms``."""
        return mask_of(self.id_of(t) for t in terms)

    def query_mask(self, query_terms: Sequence[str]) -> Dict[int, int]:
        """Map global term id -> query-local bit for the m query keywords."""
        return {self.id_of(t): 1 << pos for pos, t in enumerate(query_terms)}
