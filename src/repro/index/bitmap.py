"""Keyword bitmaps.

The bR*-tree (Zhang et al. [21]) augments every R*-tree node with a bitmap
of the keywords appearing below it.  We encode bitmaps as arbitrary-width
Python ints: union is ``|``, coverage testing is a mask comparison, and the
representation is exact for vocabularies of any size.

Two granularities are used:

* *global* bitmaps over the whole vocabulary (one bit per term id) stored in
  the bR*-tree nodes, and
* *query-local* masks over the m query keywords (bits 0..m-1) used inside
  the algorithms, produced by :meth:`KeywordVocabulary.query_mask`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Sequence

from ..exceptions import DatasetError

__all__ = ["KeywordVocabulary", "mask_of", "iter_bits", "popcount"]


def mask_of(term_ids: Iterable[int]) -> int:
    """Bitmap with the given bit positions set."""
    mask = 0
    for t in term_ids:
        mask |= 1 << t
    return mask


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the set bit positions of ``mask`` in increasing order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def popcount(mask: int) -> int:
    """Number of set bits."""
    return mask.bit_count()


class KeywordVocabulary:
    """Bidirectional term <-> integer-id mapping with frequency counts.

    Term frequencies (number of objects containing the term) drive both the
    GKG least-frequent-keyword selection and the paper's §6.2.4
    frequency-bounded query generation.
    """

    def __init__(self) -> None:
        self._term_to_id: Dict[str, int] = {}
        self._id_to_term: List[str] = []
        self._frequency: List[int] = []

    def __len__(self) -> int:
        return len(self._id_to_term)

    def __contains__(self, term: str) -> bool:
        return term in self._term_to_id

    def add(self, term: str) -> int:
        """Intern ``term``; returns its id. Does not touch frequencies."""
        tid = self._term_to_id.get(term)
        if tid is None:
            tid = len(self._id_to_term)
            self._term_to_id[term] = tid
            self._id_to_term.append(term)
            self._frequency.append(0)
        return tid

    def observe(self, term: str) -> int:
        """Intern ``term`` and count one containing object."""
        tid = self.add(term)
        self._frequency[tid] += 1
        return tid

    def id_of(self, term: str) -> int:
        """The id of a known term; raises DatasetError when unseen."""
        try:
            return self._term_to_id[term]
        except KeyError:
            raise DatasetError(f"unknown keyword: {term!r}") from None

    def term_of(self, tid: int) -> str:
        """The term string for an id."""
        return self._id_to_term[tid]

    def frequency(self, term_or_id) -> int:
        """Document frequency of a term (by string or id)."""
        tid = term_or_id if isinstance(term_or_id, int) else self.id_of(term_or_id)
        return self._frequency[tid]

    def terms_by_frequency(self) -> List[str]:
        """All terms, least frequent first (the paper ranks ascending)."""
        order = sorted(range(len(self._id_to_term)), key=self._frequency.__getitem__)
        return [self._id_to_term[i] for i in order]

    def least_frequent(self, terms: Sequence[str]) -> str:
        """The least frequent of ``terms`` (GKG's ``t_inf``)."""
        if not terms:
            raise DatasetError("cannot pick least frequent of no terms")
        return min(terms, key=lambda t: self._frequency[self.id_of(t)])

    def global_mask(self, terms: Iterable[str]) -> int:
        """Whole-vocabulary bitmap of ``terms``."""
        return mask_of(self.id_of(t) for t in terms)

    def query_mask(self, query_terms: Sequence[str]) -> Dict[int, int]:
        """Map global term id -> query-local bit for the m query keywords."""
        return {self.id_of(t): 1 << pos for pos, t in enumerate(query_terms)}
