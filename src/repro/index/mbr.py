"""Minimum bounding rectangles and the MinDist / MaxDist bounds.

The R*-tree machinery and the VirbR baseline both reason about rectangles:
node MBRs, their areas/margins for the R* split heuristics, and the
MinDist / MaxDist distance bounds used to prune node combinations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = ["MBR", "min_dist", "max_dist", "mbr_of_points"]


@dataclass(slots=True)
class MBR:
    """Axis-aligned minimum bounding rectangle ``[x1, x2] x [y1, y2]``."""

    x1: float
    y1: float
    x2: float
    y2: float

    @classmethod
    def from_point(cls, p: Sequence[float]) -> "MBR":
        return cls(p[0], p[1], p[0], p[1])

    @classmethod
    def empty(cls) -> "MBR":
        inf = math.inf
        return cls(inf, inf, -inf, -inf)

    def is_empty(self) -> bool:
        return self.x1 > self.x2 or self.y1 > self.y2

    def copy(self) -> "MBR":
        return MBR(self.x1, self.y1, self.x2, self.y2)

    # ------------------------------------------------------------------ #
    # Measures used by the R*-tree heuristics.
    # ------------------------------------------------------------------ #

    def area(self) -> float:
        if self.is_empty():
            return 0.0
        return (self.x2 - self.x1) * (self.y2 - self.y1)

    def margin(self) -> float:
        """Perimeter half-sum; the R* split optimises summed margins."""
        if self.is_empty():
            return 0.0
        return (self.x2 - self.x1) + (self.y2 - self.y1)

    def center(self) -> tuple:
        return ((self.x1 + self.x2) / 2.0, (self.y1 + self.y2) / 2.0)

    # ------------------------------------------------------------------ #
    # Mutating combinators (hot path during bulk insertion).
    # ------------------------------------------------------------------ #

    def include_point(self, p: Sequence[float]) -> None:
        if p[0] < self.x1:
            self.x1 = p[0]
        if p[0] > self.x2:
            self.x2 = p[0]
        if p[1] < self.y1:
            self.y1 = p[1]
        if p[1] > self.y2:
            self.y2 = p[1]

    def include_mbr(self, other: "MBR") -> None:
        if other.x1 < self.x1:
            self.x1 = other.x1
        if other.x2 > self.x2:
            self.x2 = other.x2
        if other.y1 < self.y1:
            self.y1 = other.y1
        if other.y2 > self.y2:
            self.y2 = other.y2

    def union(self, other: "MBR") -> "MBR":
        merged = self.copy()
        merged.include_mbr(other)
        return merged

    def enlargement(self, other: "MBR") -> float:
        """Area growth needed to absorb ``other`` (ChooseSubtree metric)."""
        return self.union(other).area() - self.area()

    def intersection_area(self, other: "MBR") -> float:
        w = min(self.x2, other.x2) - max(self.x1, other.x1)
        h = min(self.y2, other.y2) - max(self.y1, other.y1)
        if w <= 0.0 or h <= 0.0:
            return 0.0
        return w * h

    # ------------------------------------------------------------------ #
    # Predicates and distance bounds.
    # ------------------------------------------------------------------ #

    def contains_point(self, p: Sequence[float]) -> bool:
        return self.x1 <= p[0] <= self.x2 and self.y1 <= p[1] <= self.y2

    def intersects(self, other: "MBR") -> bool:
        return not (
            other.x1 > self.x2
            or other.x2 < self.x1
            or other.y1 > self.y2
            or other.y2 < self.y1
        )

    def intersects_circle(self, cx: float, cy: float, r: float) -> bool:
        """True when the rectangle intersects the closed disc."""
        dx = max(self.x1 - cx, 0.0, cx - self.x2)
        dy = max(self.y1 - cy, 0.0, cy - self.y2)
        return dx * dx + dy * dy <= r * r


def min_dist(a: MBR, b: MBR) -> float:
    """Smallest possible distance between a point in ``a`` and one in ``b``."""
    dx = max(b.x1 - a.x2, 0.0, a.x1 - b.x2)
    dy = max(b.y1 - a.y2, 0.0, a.y1 - b.y2)
    return math.hypot(dx, dy)


def max_dist(a: MBR, b: MBR) -> float:
    """Largest possible distance between a point in ``a`` and one in ``b``."""
    dx = max(abs(b.x2 - a.x1), abs(a.x2 - b.x1))
    dy = max(abs(b.y2 - a.y1), abs(a.y2 - b.y1))
    return math.hypot(dx, dy)


def point_min_dist(p: Sequence[float], box: MBR) -> float:
    """Smallest distance from point ``p`` to rectangle ``box`` (0 inside)."""
    dx = max(box.x1 - p[0], 0.0, p[0] - box.x2)
    dy = max(box.y1 - p[1], 0.0, p[1] - box.y2)
    return math.hypot(dx, dy)


def mbr_of_points(points: Iterable[Sequence[float]]) -> MBR:
    """Tight MBR of an iterable of points."""
    box = MBR.empty()
    for p in points:
        box.include_point(p)
    return box
