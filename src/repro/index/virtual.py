"""Virtual bR*-tree: the per-query index of Zhang et al. [22].

The original proposal stores an inverted file from keywords to R*-tree
nodes and objects, and at query time assembles a small "virtual" bR*-tree
containing only the objects relevant to the query.  The decisive property —
the one the paper's experiments exercise — is that the tree seen by the
search algorithm covers *only* ``O'`` (objects holding at least one query
keyword), making it far smaller than the full index.

We reproduce that property directly: the posting lists of the query's terms
are unioned into ``O'`` and a compact bR*-tree is bulk-loaded bottom-up over
just those objects, with keyword bitmaps remapped to query-local bits
(bit ``i`` = query keyword ``i``), so coverage tests inside the algorithms
are single mask comparisons.

When the dataset exposes a :class:`~repro.index.columns.ColumnarStore`,
``O'`` is materialised batch-wise — coordinate gathers plus one
``bitwise_or.reduceat`` over the CSR keyword column — instead of the
per-object Python loop; the tree itself is bulk-loaded lazily on first
access, since the default algorithm paths never descend it (their range
scans run on the packed coordinate array).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..exceptions import InfeasibleQueryError
from ..kernels import vectorized_enabled
from .brtree import BRStarTree
from .columns import ColumnarStore
from .inverted import InvertedIndex

__all__ = ["VirtualBRTree"]


class VirtualBRTree:
    """A query-scoped bR*-tree over the relevant objects ``O'``.

    Attributes
    ----------
    object_ids:
        Sorted ids of the relevant objects (the paper's ``O'``).
    coords:
        ``(len(O'), 2)`` float64 array of their locations, row-aligned with
        ``object_ids`` — the algorithms vectorise their sweeping-area range
        queries over this array.
    masks:
        Query-local keyword masks, row-aligned with ``object_ids``.
    masks_np:
        The same masks as a flat uint64 column when ``m <= 64``, else None.
    full_mask:
        ``(1 << m) - 1``; a group covers the query iff the OR of its masks
        equals this value.
    """

    def __init__(
        self,
        object_ids: List[int],
        coords: np.ndarray,
        masks: List[int],
        full_mask: int,
        tree: Optional[BRStarTree] = None,
        masks_np: Optional[np.ndarray] = None,
        max_entries: int = 100,
    ):
        self.object_ids = object_ids
        self.coords = coords
        self.masks = masks
        self.full_mask = full_mask
        self.masks_np = masks_np
        self._tree = tree
        self._max_entries = max_entries
        self._row_of: Dict[int, int] = {oid: i for i, oid in enumerate(object_ids)}

    @property
    def tree(self) -> BRStarTree:
        """The bulk-loaded bR*-tree over O' (built lazily on first use).

        Only index-descending strategies (GKG ``method="brtree"``, the
        VirbR baseline) touch the tree; the default algorithm paths range-
        scan the packed arrays, so most queries never pay for the build.
        """
        if self._tree is None:
            records = (
                (oid, self.coords[row, 0], self.coords[row, 1], self.masks[row])
                for row, oid in enumerate(self.object_ids)
            )
            self._tree = BRStarTree.build(records, max_entries=self._max_entries)
        return self._tree

    # ------------------------------------------------------------------ #

    @classmethod
    def build(
        cls,
        inverted: InvertedIndex,
        query_term_ids: Sequence[int],
        locations,
        object_term_ids,
        max_entries: int = 100,
        query_terms: Optional[Sequence[str]] = None,
        exclude: Optional[frozenset] = None,
        columns: Optional[ColumnarStore] = None,
    ) -> "VirtualBRTree":
        """Assemble the virtual tree for one query.

        Parameters
        ----------
        inverted:
            Dataset-wide inverted file.
        query_term_ids:
            Global term ids of the m query keywords, in query order.
        locations:
            ``locations[oid] -> (x, y)`` for every object id.
        object_term_ids:
            ``object_term_ids[oid] -> iterable of global term ids``.
        query_terms:
            Optional keyword strings, used only to report infeasibility.
        exclude:
            Object ids to drop from O' (used by the top-k extension to
            forbid already-returned groups' members).
        columns:
            Optional struct-of-arrays store backing the same objects; when
            provided (and the columnar kernels are enabled) O' is
            materialised batch-wise.

        Raises
        ------
        InfeasibleQueryError
            When some query keyword appears in no (non-excluded) object.
        """
        missing = inverted.uncoverable_terms(query_term_ids)
        if missing:
            names: Sequence = missing
            if query_terms is not None:
                pos = {tid: i for i, tid in enumerate(query_term_ids)}
                names = [query_terms[pos[tid]] for tid in missing]
            raise InfeasibleQueryError(names)

        local_bit = {tid: 1 << i for i, tid in enumerate(query_term_ids)}
        object_ids = inverted.relevant_objects(query_term_ids)
        if exclude:
            object_ids = [oid for oid in object_ids if oid not in exclude]
            still_covered = set()
            for oid in object_ids:
                for tid in object_term_ids[oid]:
                    if tid in local_bit:
                        still_covered.add(tid)
            missing = [tid for tid in query_term_ids if tid not in still_covered]
            if missing:
                names = missing
                if query_terms is not None:
                    pos = {tid: i for i, tid in enumerate(query_term_ids)}
                    names = [query_terms[pos[tid]] for tid in missing]
                raise InfeasibleQueryError(names)

        full_mask = (1 << len(query_term_ids)) - 1

        if columns is not None and vectorized_enabled():
            positions = columns.positions_of(object_ids)
            masks_np = columns.query_masks(positions, local_bit)
            if masks_np is not None:
                coords = columns.coords_of(positions)
                masks = masks_np.tolist()
                return cls(
                    list(object_ids),
                    coords,
                    masks,
                    full_mask,
                    masks_np=masks_np,
                    max_entries=max_entries,
                )

        coords = np.empty((len(object_ids), 2), dtype=np.float64)
        masks: List[int] = []
        for row, oid in enumerate(object_ids):
            x, y = locations[oid]
            coords[row, 0] = x
            coords[row, 1] = y
            mask = 0
            for tid in object_term_ids[oid]:
                bit = local_bit.get(tid)
                if bit is not None:
                    mask |= bit
            masks.append(mask)

        tree = None
        if not vectorized_enabled():
            # The original object path bulk-loaded the tree on every
            # compile; reproduce that so the perf gate's object-path
            # baseline reflects the pre-columnar cost honestly.
            records = (
                (oid, coords[row, 0], coords[row, 1], masks[row])
                for row, oid in enumerate(object_ids)
            )
            tree = BRStarTree.build(records, max_entries=max_entries)

        return cls(
            list(object_ids),
            coords,
            masks,
            full_mask,
            tree=tree,
            max_entries=max_entries,
        )

    # ------------------------------------------------------------------ #
    # Row-level helpers used by the algorithms.
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self.object_ids)

    def row_of(self, object_id: int) -> int:
        """The O' row index of a relevant object id."""
        return self._row_of[object_id]

    def mask_of(self, object_id: int) -> int:
        """The query-local keyword mask of a relevant object."""
        return self.masks[self._row_of[object_id]]

    def location_of(self, object_id: int):
        """The (x, y) location of a relevant object."""
        row = self._row_of[object_id]
        return (self.coords[row, 0], self.coords[row, 1])

    def rows_within(self, cx: float, cy: float, r: float) -> np.ndarray:
        """Row indices of relevant objects in the closed disc (vectorised)."""
        dx = self.coords[:, 0] - cx
        dy = self.coords[:, 1] - cy
        limit = r * r * (1.0 + 1e-12) + 1e-18
        return np.nonzero(dx * dx + dy * dy <= limit)[0]

    def union_mask(self, rows) -> int:
        """The OR of the rows' query-local masks."""
        mask = 0
        masks = self.masks
        for row in rows:
            mask |= masks[row]
        return mask

    def covers_query(self, rows) -> bool:
        """True when the rows' keywords cover all m query keywords."""
        mask = 0
        full = self.full_mask
        masks = self.masks
        for row in rows:
            mask |= masks[row]
            if mask == full:
                return True
        return False
