"""Virtual bR*-tree: the per-query index of Zhang et al. [22].

The original proposal stores an inverted file from keywords to R*-tree
nodes and objects, and at query time assembles a small "virtual" bR*-tree
containing only the objects relevant to the query.  The decisive property —
the one the paper's experiments exercise — is that the tree seen by the
search algorithm covers *only* ``O'`` (objects holding at least one query
keyword), making it far smaller than the full index.

We reproduce that property directly: the posting lists of the query's terms
are unioned into ``O'`` and a compact bR*-tree is bulk-loaded bottom-up over
just those objects, with keyword bitmaps remapped to query-local bits
(bit ``i`` = query keyword ``i``), so coverage tests inside the algorithms
are single mask comparisons.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..exceptions import InfeasibleQueryError
from .brtree import BRStarTree
from .inverted import InvertedIndex

__all__ = ["VirtualBRTree"]


class VirtualBRTree:
    """A query-scoped bR*-tree over the relevant objects ``O'``.

    Attributes
    ----------
    object_ids:
        Sorted ids of the relevant objects (the paper's ``O'``).
    coords:
        ``(len(O'), 2)`` float64 array of their locations, row-aligned with
        ``object_ids`` — the algorithms vectorise their sweeping-area range
        queries over this array.
    masks:
        Query-local keyword masks, row-aligned with ``object_ids``.
    full_mask:
        ``(1 << m) - 1``; a group covers the query iff the OR of its masks
        equals this value.
    """

    def __init__(
        self,
        object_ids: List[int],
        coords: np.ndarray,
        masks: List[int],
        full_mask: int,
        tree: BRStarTree,
    ):
        self.object_ids = object_ids
        self.coords = coords
        self.masks = masks
        self.full_mask = full_mask
        self.tree = tree
        self._row_of: Dict[int, int] = {oid: i for i, oid in enumerate(object_ids)}

    # ------------------------------------------------------------------ #

    @classmethod
    def build(
        cls,
        inverted: InvertedIndex,
        query_term_ids: Sequence[int],
        locations,
        object_term_ids,
        max_entries: int = 100,
        query_terms: Optional[Sequence[str]] = None,
        exclude: Optional[frozenset] = None,
    ) -> "VirtualBRTree":
        """Assemble the virtual tree for one query.

        Parameters
        ----------
        inverted:
            Dataset-wide inverted file.
        query_term_ids:
            Global term ids of the m query keywords, in query order.
        locations:
            ``locations[oid] -> (x, y)`` for every object id.
        object_term_ids:
            ``object_term_ids[oid] -> iterable of global term ids``.
        query_terms:
            Optional keyword strings, used only to report infeasibility.
        exclude:
            Object ids to drop from O' (used by the top-k extension to
            forbid already-returned groups' members).

        Raises
        ------
        InfeasibleQueryError
            When some query keyword appears in no (non-excluded) object.
        """
        missing = inverted.uncoverable_terms(query_term_ids)
        if missing:
            names: Sequence = missing
            if query_terms is not None:
                pos = {tid: i for i, tid in enumerate(query_term_ids)}
                names = [query_terms[pos[tid]] for tid in missing]
            raise InfeasibleQueryError(names)

        local_bit = {tid: 1 << i for i, tid in enumerate(query_term_ids)}
        object_ids = inverted.relevant_objects(query_term_ids)
        if exclude:
            object_ids = [oid for oid in object_ids if oid not in exclude]
            still_covered = set()
            for oid in object_ids:
                for tid in object_term_ids[oid]:
                    if tid in local_bit:
                        still_covered.add(tid)
            missing = [tid for tid in query_term_ids if tid not in still_covered]
            if missing:
                names = missing
                if query_terms is not None:
                    pos = {tid: i for i, tid in enumerate(query_term_ids)}
                    names = [query_terms[pos[tid]] for tid in missing]
                raise InfeasibleQueryError(names)

        coords = np.empty((len(object_ids), 2), dtype=np.float64)
        masks: List[int] = []
        for row, oid in enumerate(object_ids):
            x, y = locations[oid]
            coords[row, 0] = x
            coords[row, 1] = y
            mask = 0
            for tid in object_term_ids[oid]:
                bit = local_bit.get(tid)
                if bit is not None:
                    mask |= bit
            masks.append(mask)

        records = (
            (oid, coords[row, 0], coords[row, 1], masks[row])
            for row, oid in enumerate(object_ids)
        )
        tree = BRStarTree.build(records, max_entries=max_entries)
        full_mask = (1 << len(query_term_ids)) - 1
        return cls(object_ids, coords, masks, full_mask, tree)

    # ------------------------------------------------------------------ #
    # Row-level helpers used by the algorithms.
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self.object_ids)

    def row_of(self, object_id: int) -> int:
        """The O' row index of a relevant object id."""
        return self._row_of[object_id]

    def mask_of(self, object_id: int) -> int:
        """The query-local keyword mask of a relevant object."""
        return self.masks[self._row_of[object_id]]

    def location_of(self, object_id: int):
        """The (x, y) location of a relevant object."""
        row = self._row_of[object_id]
        return (self.coords[row, 0], self.coords[row, 1])

    def rows_within(self, cx: float, cy: float, r: float) -> np.ndarray:
        """Row indices of relevant objects in the closed disc (vectorised)."""
        dx = self.coords[:, 0] - cx
        dy = self.coords[:, 1] - cy
        limit = r * r * (1.0 + 1e-12) + 1e-18
        return np.nonzero(dx * dx + dy * dy <= limit)[0]

    def union_mask(self, rows) -> int:
        """The OR of the rows' query-local masks."""
        mask = 0
        masks = self.masks
        for row in rows:
            mask |= masks[row]
        return mask

    def covers_query(self, rows) -> bool:
        """True when the rows' keywords cover all m query keywords."""
        mask = 0
        full = self.full_mask
        masks = self.masks
        for row in rows:
            mask |= masks[row]
            if mask == full:
                return True
        return False
