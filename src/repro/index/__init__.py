"""Spatial and textual index substrate.

* :class:`~repro.index.rstar.RStarTree` — a from-scratch R*-tree.
* :class:`~repro.index.brtree.BRStarTree` — the keyword-bitmap-augmented
  bR*-tree of Zhang et al. [21].
* :class:`~repro.index.virtual.VirtualBRTree` — the per-query virtual
  bR*-tree of Zhang et al. [22], the index shared by all algorithms in the
  paper's experiments.
* :class:`~repro.index.inverted.InvertedIndex` — keyword posting lists.
* :class:`~repro.index.grid.UniformGrid` — numpy-backed disc queries for
  the sweeping areas of the SKEC-family algorithms.
"""

from .bitmap import KeywordVocabulary, iter_bits, mask_of, popcount
from .brtree import BRStarTree
from .grid import UniformGrid
from .inverted import InvertedIndex
from .irtree import IRTree
from .mbr import MBR, max_dist, mbr_of_points, min_dist
from .rstar import LeafEntry, Node, RStarTree
from .virtual import VirtualBRTree

__all__ = [
    "KeywordVocabulary",
    "mask_of",
    "iter_bits",
    "popcount",
    "BRStarTree",
    "UniformGrid",
    "InvertedIndex",
    "IRTree",
    "MBR",
    "min_dist",
    "max_dist",
    "mbr_of_points",
    "RStarTree",
    "Node",
    "LeafEntry",
    "VirtualBRTree",
]
