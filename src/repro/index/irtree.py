"""IR-tree: an R-tree whose nodes carry per-node inverted files.

Cong et al. (VLDB 2009, the paper's reference [7]) attach to every tree
node an inverted file mapping each term to the child entries whose
subtrees contain it.  The paper notes (§3) that GKG works with any
geo-textual index and names the IR-tree as the alternative to the virtual
bR*-tree; this module provides it, sharing the R*-tree spatial structure
and exposing the same nearest-holder primitive.

Compared to the bR*-tree's bitmaps, per-node inverted files trade memory
for direct child lookup: descending for a term touches only the posting
list instead of testing every child's bitmap.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..kernels import vectorized_enabled
from .mbr import point_min_dist
from .rstar import (
    _BATCH_MIN_FANOUT,
    _leaf_frontier_dists,
    _node_frontier_dists,
    LeafEntry,
    Node,
    RStarTree,
)

__all__ = ["IRTree"]


class IRTree:
    """R*-tree + per-node inverted files over ``(item, x, y, term_ids)``."""

    def __init__(self, max_entries: int = 100):
        self._tree = RStarTree(max_entries=max_entries)
        self._item_terms: Dict[object, frozenset] = {}
        #: id(node) -> {term_id: [children holding the term]}
        self._node_inv: Dict[int, Dict[int, List]] = {}

    # ------------------------------------------------------------------ #

    @classmethod
    def build(
        cls,
        records: Iterable[Tuple[object, float, float, Iterable[int]]],
        max_entries: int = 100,
    ) -> "IRTree":
        """Bulk load from ``(item, x, y, term_ids)`` records."""
        index = cls(max_entries=max_entries)
        plain = []
        for item, x, y, term_ids in records:
            index._item_terms[item] = frozenset(int(t) for t in term_ids)
            plain.append((item, x, y))
        index._tree = RStarTree.bulk_load(plain, max_entries=max_entries)
        index._build_inverted(index._tree.root)
        return index

    def _build_inverted(self, node: Node) -> frozenset:
        """Bottom-up construction of the per-node inverted files."""
        inv: Dict[int, List] = {}
        if node.is_leaf:
            for entry in node.entries:
                for term in self._item_terms.get(entry.item, ()):
                    inv.setdefault(term, []).append(entry)
        else:
            for child in node.entries:
                child_terms = self._build_inverted(child)
                for term in child_terms:
                    inv.setdefault(term, []).append(child)
        self._node_inv[id(node)] = inv
        return frozenset(inv)

    # ------------------------------------------------------------------ #

    @property
    def root(self) -> Node:
        return self._tree.root

    def __len__(self) -> int:
        return len(self._tree)

    def node_terms(self, node: Node) -> frozenset:
        """Terms appearing somewhere below ``node``."""
        return frozenset(self._node_inv[id(node)])

    def posting(self, node: Node, term: int) -> List:
        """Children (or leaf entries) of ``node`` holding ``term``."""
        return self._node_inv[id(node)].get(term, [])

    def item_terms(self, item) -> frozenset:
        return self._item_terms.get(item, frozenset())

    # ------------------------------------------------------------------ #
    # The GKG primitive: nearest object containing a term.
    # ------------------------------------------------------------------ #

    def nearest_with_term(self, x: float, y: float, term: int) -> Optional[LeafEntry]:
        """Nearest entry whose keywords contain ``term``; best-first descent
        through the per-node posting lists."""
        for entry, _d in self.nearest_iter_with_term(x, y, term):
            return entry
        return None

    def nearest_iter_with_term(
        self, x: float, y: float, term: int
    ) -> Iterator[Tuple[LeafEntry, float]]:
        """Increasing-distance iterator over entries containing ``term``."""
        root = self._tree.root
        if len(self._tree) == 0 or term not in self._node_inv[id(root)]:
            return
        origin = (x, y)
        counter = 0
        heap: List[Tuple[float, int, object, bool]] = [
            (point_min_dist(origin, root.box), 0, root, False)
        ]
        while heap:
            d, _tie, element, is_entry = heapq.heappop(heap)
            if is_entry:
                yield element, d
                continue
            node: Node = element
            posting = self.posting(node, term)
            if vectorized_enabled() and len(posting) >= _BATCH_MIN_FANOUT:
                # Posting lists are homogeneous (leaf entries under leaf
                # nodes, child nodes otherwise), so one batched MinDist
                # pass covers the whole frontier expansion.
                if node.is_leaf:
                    dists = _leaf_frontier_dists(posting, x, y)
                else:
                    dists = _node_frontier_dists(posting, x, y)
                is_entry = node.is_leaf
                for dc, child in zip(dists, posting):
                    counter += 1
                    heapq.heappush(heap, (dc, counter, child, is_entry))
                continue
            for child in self.posting(node, term):
                counter += 1
                if isinstance(child, LeafEntry):
                    dc = math.hypot(child.x - x, child.y - y)
                    heapq.heappush(heap, (dc, counter, child, True))
                else:
                    dc = point_min_dist(origin, child.box)
                    heapq.heappush(heap, (dc, counter, child, False))

    # ------------------------------------------------------------------ #

    def check_invariants(self) -> None:
        """R*-tree invariants plus inverted-file consistency."""
        self._tree.check_invariants()
        self._check_node(self._tree.root)

    def _check_node(self, node: Node) -> None:
        inv = self._node_inv[id(node)]
        if node.is_leaf:
            expected: Dict[int, set] = {}
            for entry in node.entries:
                for term in self._item_terms.get(entry.item, ()):
                    expected.setdefault(term, set()).add(entry.item)
            assert set(inv) == set(expected), "leaf inverted file keys wrong"
            for term, posting in inv.items():
                assert {e.item for e in posting} == expected[term]
        else:
            for child in node.entries:
                self._check_node(child)
            for term, posting in inv.items():
                for child in posting:
                    assert term in self._node_inv[id(child)], (
                        "posting points to child without the term"
                    )
