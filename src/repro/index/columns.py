"""Struct-of-arrays columnar storage for geo-textual objects.

A :class:`ColumnarStore` is the hot-path twin of the row/object containers
(:class:`~repro.core.objects.Dataset`, the live store's sealed base and
overlay views): contiguous ``x`` / ``y`` coordinate columns, the object-id
column, and the keyword sets flattened to a CSR pair (``term_indptr``,
``term_ids``).  The compiled query surface gathers from these columns
batch-wise — materialising ``O'`` for a query becomes a handful of numpy
gathers and one ``bitwise_or.reduceat`` instead of a Python loop over
objects and their keyword tuples.

Stores are immutable once built.  Dense stores (object ids are exactly
``0..n-1``) resolve ids by direct indexing; sparse stores (a live store's
stable oid space with holes) keep the oid column sorted and resolve by
``searchsorted``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["ColumnarStore"]


class ColumnarStore:
    """Immutable SoA view: oid, x, y columns plus CSR keyword term ids."""

    __slots__ = (
        "oids",
        "xs",
        "ys",
        "term_indptr",
        "term_ids",
        "dense",
        "_term_nn",
    )

    def __init__(
        self,
        oids: np.ndarray,
        xs: np.ndarray,
        ys: np.ndarray,
        term_indptr: np.ndarray,
        term_ids: np.ndarray,
    ):
        self.oids = oids
        self.xs = xs
        self.ys = ys
        #: CSR row pointers: object ``i``'s term ids are
        #: ``term_ids[term_indptr[i]:term_indptr[i+1]]``.
        self.term_indptr = term_indptr
        self.term_ids = term_ids
        n = len(oids)
        self.dense = bool(n == 0 or (oids[0] == 0 and oids[n - 1] == n - 1))
        #: Lazy per-term nearest-holder distance columns (term id -> (n,)
        #: float64).  Shared by every query against this store; see
        #: :meth:`term_nn_dists`.
        self._term_nn: Dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def from_rows(
        cls, rows: Iterable[Tuple[int, float, float, Sequence[int]]]
    ) -> "ColumnarStore":
        """Build from ``(oid, x, y, term_ids)`` rows sorted by oid."""
        oid_list: List[int] = []
        x_list: List[float] = []
        y_list: List[float] = []
        indptr: List[int] = [0]
        flat_terms: List[int] = []
        for oid, x, y, terms in rows:
            oid_list.append(oid)
            x_list.append(x)
            y_list.append(y)
            flat_terms.extend(terms)
            indptr.append(len(flat_terms))
        return cls(
            np.asarray(oid_list, dtype=np.int64),
            np.asarray(x_list, dtype=np.float64),
            np.asarray(y_list, dtype=np.float64),
            np.asarray(indptr, dtype=np.int64),
            np.asarray(flat_terms, dtype=np.int64),
        )

    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self.oids)

    def holder_positions(self, term_id: int) -> np.ndarray:
        """Row positions of the objects carrying ``term_id`` (ascending)."""
        hits = np.flatnonzero(self.term_ids == term_id)
        rows = np.searchsorted(self.term_indptr, hits, side="right") - 1
        return np.unique(rows)

    def term_nn_dists(self, term_id: int) -> Optional[np.ndarray]:
        """Distance from every object to its nearest holder of ``term_id``.

        Computed once per (store, term) with one KD-tree query over the
        whole store and cached — a query's coverage radii then reduce to a
        row gather plus a running ``maximum``, instead of m KD-tree
        queries per compile.  The values are bit-identical to a per-query
        KD lookup restricted to O': every holder of a query keyword is in
        O' by definition, so both paths minimise the same distance set.

        Returns None when the term has no holders.
        """
        arr = self._term_nn.get(term_id)
        if arr is None:
            positions = self.holder_positions(term_id)
            if len(positions) == 0:
                return None
            from scipy.spatial import cKDTree

            tree = cKDTree(self.coords_of(positions))
            queries = np.empty((len(self.oids), 2), dtype=np.float64)
            queries[:, 0] = self.xs
            queries[:, 1] = self.ys
            arr, _idx = tree.query(queries, k=1)
            self._term_nn[term_id] = arr
        return arr

    def positions_of(self, oids) -> np.ndarray:
        """Row positions of the given oids (must all be present)."""
        wanted = np.asarray(oids, dtype=np.int64)
        if self.dense:
            return wanted
        return np.searchsorted(self.oids, wanted)

    def coords_of(self, positions: np.ndarray) -> np.ndarray:
        """C-contiguous ``(k, 2)`` coordinate block for the given rows."""
        out = np.empty((len(positions), 2), dtype=np.float64)
        out[:, 0] = self.xs[positions]
        out[:, 1] = self.ys[positions]
        return out

    def query_masks(
        self, positions: np.ndarray, bit_of_term: Dict[int, int]
    ) -> Optional[np.ndarray]:
        """Query-local uint64 masks for the given rows, built batch-wise.

        ``bit_of_term`` maps a global term id to its query-local bit value
        (``1 << i`` for query keyword ``i``); term ids outside the map
        contribute nothing.  Returns ``None`` when a bit exceeds 64 bits —
        the caller falls back to the arbitrary-width object path.
        """
        if any(bit > (1 << 63) for bit in bit_of_term.values()):
            return None
        k = len(positions)
        if k == 0:
            return np.empty(0, dtype=np.uint64)
        bitvals = np.zeros(int(self.term_ids.max(initial=-1)) + 2, dtype=np.uint64)
        for tid, bit in bit_of_term.items():
            if tid < len(bitvals):
                bitvals[tid] = bit
        starts = self.term_indptr[positions]
        counts = self.term_indptr[positions + 1] - starts
        offsets = np.concatenate(([0], np.cumsum(counts)))
        total = int(offsets[-1])
        if total == 0:
            return np.zeros(k, dtype=np.uint64)
        flat = np.arange(total, dtype=np.int64) + np.repeat(
            starts - offsets[:-1], counts
        )
        vals = bitvals[self.term_ids[flat]]
        # Every object carries >= 1 keyword, so no empty reduceat segment —
        # guard anyway for adversarial stores (empty segments would echo
        # the neighbour's value instead of 0).
        if counts.min(initial=1) == 0:
            masks = np.zeros(k, dtype=np.uint64)
            nonempty = counts > 0
            if nonempty.any():
                masks[nonempty] = np.bitwise_or.reduceat(
                    vals, offsets[:-1][nonempty]
                )
            return masks
        return np.bitwise_or.reduceat(vals, offsets[:-1])
