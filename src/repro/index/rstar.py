"""An R*-tree implemented from scratch (Beckmann et al. 1990).

This is the spatial substrate under the bR*-tree / virtual bR*-tree indexes
of the paper.  It supports:

* one-by-one insertion with the R* heuristics — ChooseSubtree with minimum
  overlap enlargement at the leaf level, forced reinsertion on first
  overflow per level, and the topological (margin-driven) split;
* STR (sort-tile-recursive) bulk loading, used to build per-query virtual
  trees bottom-up quickly;
* disc / rectangle range queries and best-first nearest-neighbour search.

Leaf entries carry an opaque ``item`` (the library stores object ids) plus
its point; the keyword augmentation lives in :mod:`repro.index.brtree`.
"""

from __future__ import annotations

import heapq
import math
from typing import Callable, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..kernels import vectorized_enabled
from .mbr import MBR, point_min_dist

__all__ = ["RStarTree", "Node", "LeafEntry"]

#: Below this fanout a Python loop beats the numpy gather set-up cost.
_BATCH_MIN_FANOUT = 8


def _leaf_frontier_dists(entries: List["LeafEntry"], x: float, y: float) -> List[float]:
    """Distances from ``(x, y)`` to each leaf entry, gathered batch-wise.

    The coordinate gather and subtraction vectorise; the final ``hypot``
    stays ``math.hypot`` per element because ``np.hypot`` rounds
    differently on some platforms and the heap order must match the
    scalar walk bit-for-bit.
    """
    k = len(entries)
    dx = np.fromiter((e.x for e in entries), np.float64, k)
    dy = np.fromiter((e.y for e in entries), np.float64, k)
    dx -= x
    dy -= y
    hyp = math.hypot
    return [hyp(dx[i], dy[i]) for i in range(k)]


def _node_frontier_dists(children: List["Node"], x: float, y: float) -> List[float]:
    """MinDist from ``(x, y)`` to each child MBR, clamped batch-wise."""
    k = len(children)
    x1 = np.fromiter((c.box.x1 for c in children), np.float64, k)
    y1 = np.fromiter((c.box.y1 for c in children), np.float64, k)
    x2 = np.fromiter((c.box.x2 for c in children), np.float64, k)
    y2 = np.fromiter((c.box.y2 for c in children), np.float64, k)
    x1 -= x
    y1 -= y
    np.subtract(x, x2, out=x2)
    np.subtract(y, y2, out=y2)
    dx = np.maximum(np.maximum(x1, 0.0), x2)
    dy = np.maximum(np.maximum(y1, 0.0), y2)
    hyp = math.hypot
    return [hyp(dx[i], dy[i]) for i in range(k)]

#: Fraction of entries forcibly reinserted on first overflow (R* paper: 30%).
_REINSERT_FRACTION = 0.3


class LeafEntry:
    """A data record stored at the leaf level: an item at a point."""

    __slots__ = ("item", "x", "y")

    def __init__(self, item, x: float, y: float):
        self.item = item
        self.x = x
        self.y = y

    @property
    def point(self) -> Tuple[float, float]:
        return (self.x, self.y)

    def mbr(self) -> MBR:
        """Degenerate point rectangle of this record."""
        return MBR(self.x, self.y, self.x, self.y)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LeafEntry({self.item!r}, {self.x}, {self.y})"


class Node:
    """A tree node.  ``level`` 0 is the leaf level."""

    __slots__ = ("level", "entries", "box", "parent")

    def __init__(self, level: int):
        self.level = level
        self.entries: List = []  # LeafEntry at level 0, Node above
        self.box = MBR.empty()
        self.parent: Optional["Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.level == 0

    def recompute_box(self) -> None:
        """Rebuild this node's MBR from its entries."""
        box = MBR.empty()
        if self.is_leaf:
            for e in self.entries:
                box.include_point((e.x, e.y))
        else:
            for child in self.entries:
                box.include_mbr(child.box)
        self.box = box

    def add(self, entry) -> None:
        """Append an entry and grow the MBR (sets parent for nodes)."""
        self.entries.append(entry)
        if self.is_leaf:
            self.box.include_point((entry.x, entry.y))
        else:
            entry.parent = self
            self.box.include_mbr(entry.box)

    def __len__(self) -> int:
        return len(self.entries)


class RStarTree:
    """R*-tree over 2-D points.

    Parameters
    ----------
    max_entries:
        Node fanout; the paper's experiments use 100 children per node.
    min_entries:
        Minimum fill; defaults to 40% of ``max_entries`` per the R* paper.
    """

    def __init__(self, max_entries: int = 100, min_entries: Optional[int] = None):
        if max_entries < 4:
            raise ValueError("max_entries must be at least 4")
        self.max_entries = max_entries
        self.min_entries = min_entries or max(2, int(round(max_entries * 0.4)))
        if self.min_entries > max_entries // 2:
            self.min_entries = max_entries // 2
        self.root = Node(0)
        self.size = 0
        #: Bumped whenever entries move between nodes (forced reinsert,
        #: split, delete-condense).  Annotation layers compare it across
        #: an insert to learn whether the insertion path is still exactly
        #: the leaf's parent chain (incremental update safe) or entries
        #: were shuffled (full recompute needed).
        self.restructures = 0

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    def insert(self, item, x: float, y: float) -> None:
        """Insert one item with R* overflow treatment."""
        self._insert_entry(LeafEntry(item, float(x), float(y)), 0, set())
        self.size += 1

    @classmethod
    def bulk_load(
        cls,
        records: Iterable[Tuple[object, float, float]],
        max_entries: int = 100,
        min_entries: Optional[int] = None,
    ) -> "RStarTree":
        """STR bulk loading: sort by x, tile into vertical slabs, sort each
        slab by y, pack leaves, then pack upper levels the same way."""
        tree = cls(max_entries=max_entries, min_entries=min_entries)
        entries = [LeafEntry(item, float(x), float(y)) for item, x, y in records]
        tree.size = len(entries)
        if not entries:
            return tree

        cap = tree.max_entries
        leaves = tree._pack_leaves(entries, cap)
        level = 0
        nodes = leaves
        while len(nodes) > 1:
            level += 1
            nodes = tree._pack_nodes(nodes, cap, level)
        tree.root = nodes[0]
        tree.root.parent = None
        return tree

    @staticmethod
    def _pack_leaves(entries: List[LeafEntry], cap: int) -> List[Node]:
        entries.sort(key=lambda e: e.x)
        n = len(entries)
        leaf_count = math.ceil(n / cap)
        slab_count = max(1, math.ceil(math.sqrt(leaf_count)))
        slab_size = math.ceil(n / slab_count)
        leaves: List[Node] = []
        for s in range(0, n, slab_size):
            slab = sorted(entries[s : s + slab_size], key=lambda e: e.y)
            for i in range(0, len(slab), cap):
                node = Node(0)
                for e in slab[i : i + cap]:
                    node.add(e)
                leaves.append(node)
        return leaves

    @staticmethod
    def _pack_nodes(nodes: List[Node], cap: int, level: int) -> List[Node]:
        nodes.sort(key=lambda nd: nd.box.center()[0])
        n = len(nodes)
        parent_count = math.ceil(n / cap)
        slab_count = max(1, math.ceil(math.sqrt(parent_count)))
        slab_size = math.ceil(n / slab_count)
        parents: List[Node] = []
        for s in range(0, n, slab_size):
            slab = sorted(nodes[s : s + slab_size], key=lambda nd: nd.box.center()[1])
            for i in range(0, len(slab), cap):
                parent = Node(level)
                for child in slab[i : i + cap]:
                    parent.add(child)
                parents.append(parent)
        return parents

    # ------------------------------------------------------------------ #
    # Insertion internals (R* heuristics)
    # ------------------------------------------------------------------ #

    def _insert_entry(self, entry, level: int, reinserted_levels: set) -> None:
        node = self._choose_subtree(entry, level)
        node.add(entry)
        self._propagate_box(node)
        if len(node) > self.max_entries:
            self._overflow_treatment(node, reinserted_levels)

    def _choose_subtree(self, entry, level: int) -> Node:
        entry_box = entry.mbr() if isinstance(entry, LeafEntry) else entry.box
        node = self.root
        while node.level > level:
            children: List[Node] = node.entries
            if node.level == level + 1 and node.level == 1:
                # Children are leaves: minimise overlap enlargement.
                best = self._least_overlap_child(children, entry_box)
            else:
                best = self._least_enlargement_child(children, entry_box)
            node = best
        return node

    @staticmethod
    def _least_enlargement_child(children: List[Node], box: MBR) -> Node:
        best = None
        best_key = None
        for child in children:
            key = (child.box.enlargement(box), child.box.area())
            if best_key is None or key < best_key:
                best_key = key
                best = child
        return best

    @staticmethod
    def _least_overlap_child(children: List[Node], box: MBR) -> Node:
        best = None
        best_key = None
        for child in children:
            grown = child.box.union(box)
            overlap_delta = 0.0
            for other in children:
                if other is child:
                    continue
                overlap_delta += grown.intersection_area(other.box)
                overlap_delta -= child.box.intersection_area(other.box)
            key = (overlap_delta, child.box.enlargement(box), child.box.area())
            if best_key is None or key < best_key:
                best_key = key
                best = child
        return best

    def _overflow_treatment(self, node: Node, reinserted_levels: set) -> None:
        self.restructures += 1
        if node is not self.root and node.level not in reinserted_levels:
            reinserted_levels.add(node.level)
            self._forced_reinsert(node, reinserted_levels)
        else:
            self._split(node)

    def _forced_reinsert(self, node: Node, reinserted_levels: set) -> None:
        cx, cy = node.box.center()

        def centre_dist(entry) -> float:
            if node.is_leaf:
                return (entry.x - cx) ** 2 + (entry.y - cy) ** 2
            ex, ey = entry.box.center()
            return (ex - cx) ** 2 + (ey - cy) ** 2

        node.entries.sort(key=centre_dist)
        count = max(1, int(len(node.entries) * _REINSERT_FRACTION))
        evicted = node.entries[-count:]
        del node.entries[-count:]
        node.recompute_box()
        self._propagate_box(node)
        for entry in evicted:
            self._insert_entry(entry, node.level, reinserted_levels)

    def _split(self, node: Node) -> None:
        group_a, group_b = self._rstar_split_groups(node)
        sibling = Node(node.level)
        node.entries = group_a
        for entry in group_b:
            sibling.add(entry)
        node.recompute_box()
        if not node.is_leaf:
            for child in node.entries:
                child.parent = node

        parent = node.parent
        if parent is None:
            new_root = Node(node.level + 1)
            new_root.add(node)
            new_root.add(sibling)
            self.root = new_root
        else:
            parent.add(sibling)
            self._propagate_box(parent)
            if len(parent) > self.max_entries:
                self._split(parent)

    def _rstar_split_groups(self, node: Node):
        """R* topological split: pick the axis with the smallest summed
        margin over all distributions, then the distribution with the least
        overlap (ties: least combined area)."""
        entries = node.entries

        def box_of(entry) -> MBR:
            return entry.mbr() if node.is_leaf else entry.box

        m = self.min_entries
        best_axis_margin = None
        best_axis_sorted = None
        for axis in (0, 1):
            if node.is_leaf:
                key_lo = (lambda e: e.x) if axis == 0 else (lambda e: e.y)
                ordered = sorted(entries, key=key_lo)
            else:
                ordered = sorted(
                    entries,
                    key=lambda e: (e.box.x1, e.box.x2)
                    if axis == 0
                    else (e.box.y1, e.box.y2),
                )
            margin_sum = 0.0
            for k in range(m, len(entries) - m + 1):
                left = _union_boxes(box_of(e) for e in ordered[:k])
                right = _union_boxes(box_of(e) for e in ordered[k:])
                margin_sum += left.margin() + right.margin()
            if best_axis_margin is None or margin_sum < best_axis_margin:
                best_axis_margin = margin_sum
                best_axis_sorted = ordered

        ordered = best_axis_sorted
        best_key = None
        best_k = m
        for k in range(m, len(entries) - m + 1):
            left = _union_boxes(box_of(e) for e in ordered[:k])
            right = _union_boxes(box_of(e) for e in ordered[k:])
            key = (left.intersection_area(right), left.area() + right.area())
            if best_key is None or key < best_key:
                best_key = key
                best_k = k
        return list(ordered[:best_k]), list(ordered[best_k:])

    @staticmethod
    def _propagate_box(node: Node) -> None:
        walker: Optional[Node] = node
        while walker is not None:
            walker.recompute_box()
            walker = walker.parent

    # ------------------------------------------------------------------ #
    # Deletion (R-tree CondenseTree: underfull nodes dissolve and their
    # entries reinsert at their original level).
    # ------------------------------------------------------------------ #

    def delete(self, item, x: float, y: float) -> bool:
        """Remove one entry matching ``(item, x, y)``; False when absent."""
        leaf = self._find_leaf(self.root, item, float(x), float(y))
        if leaf is None:
            return False
        for i, entry in enumerate(leaf.entries):
            if entry.item == item and entry.x == x and entry.y == y:
                del leaf.entries[i]
                break
        self.size -= 1
        # A removal shrinks subtree unions even without condensing, so any
        # annotation layer's cached aggregates are stale from here on.
        self.restructures += 1
        self._condense(leaf)
        # Shrink the root when it degenerates to a single internal child.
        while not self.root.is_leaf and len(self.root) == 1:
            self.root = self.root.entries[0]
            self.root.parent = None
        return True

    def _find_leaf(self, node: Node, item, x: float, y: float) -> Optional[Node]:
        if not node.box.contains_point((x, y)) and len(node.entries) > 0:
            return None
        if node.is_leaf:
            for entry in node.entries:
                if entry.item == item and entry.x == x and entry.y == y:
                    return node
            return None
        for child in node.entries:
            if child.box.contains_point((x, y)):
                found = self._find_leaf(child, item, x, y)
                if found is not None:
                    return found
        return None

    def _condense(self, node: Node) -> None:
        """Walk to the root, dissolving underfull non-root nodes.

        Orphaned entries reinsert at the level of the node that held them
        (LeafEntry records at level 0, whole subtrees at their level).
        """
        orphans: List[Tuple[object, int]] = []
        walker = node
        while walker.parent is not None:
            parent = walker.parent
            if len(walker) < self.min_entries:
                parent.entries.remove(walker)
                orphans.extend((entry, walker.level) for entry in walker.entries)
            else:
                walker.recompute_box()
            walker = parent
        walker.recompute_box()  # the root

        for entry, level in orphans:
            self._insert_entry(entry, level, set())

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def range_circle(self, cx: float, cy: float, r: float) -> Iterator[LeafEntry]:
        """All leaf entries within the closed disc of radius ``r``."""
        r_sq = r * r
        stack = [self.root]
        while stack:
            node = stack.pop()
            if not node.box.intersects_circle(cx, cy, r):
                continue
            if node.is_leaf:
                for e in node.entries:
                    dx = e.x - cx
                    dy = e.y - cy
                    if dx * dx + dy * dy <= r_sq:
                        yield e
            else:
                stack.extend(node.entries)

    def range_rect(self, box: MBR) -> Iterator[LeafEntry]:
        """All leaf entries inside the rectangle."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            if not node.box.intersects(box):
                continue
            if node.is_leaf:
                for e in node.entries:
                    if box.contains_point((e.x, e.y)):
                        yield e
            else:
                stack.extend(node.entries)

    def nearest(
        self,
        x: float,
        y: float,
        predicate: Optional[Callable[[LeafEntry], bool]] = None,
        prune: Optional[Callable[[Node], bool]] = None,
    ) -> Optional[LeafEntry]:
        """Best-first nearest neighbour, optionally filtered.

        ``predicate`` filters leaf entries; ``prune`` may reject whole
        subtrees (the bR*-tree passes a bitmap check here, which is exactly
        the paper's "find the nearest object containing term t" primitive).
        """
        for entry, _d in self.nearest_iter(x, y, predicate=predicate, prune=prune):
            return entry
        return None

    def nearest_iter(
        self,
        x: float,
        y: float,
        predicate: Optional[Callable[[LeafEntry], bool]] = None,
        prune: Optional[Callable[[Node], bool]] = None,
    ) -> Iterator[Tuple[LeafEntry, float]]:
        """Yield (entry, distance) pairs in increasing distance order."""
        origin = (x, y)
        counter = 0
        heap: List[Tuple[float, int, object, bool]] = []
        if self.size:
            heap.append((point_min_dist(origin, self.root.box), counter, self.root, False))
        while heap:
            d, _tie, element, is_entry = heapq.heappop(heap)
            if is_entry:
                yield element, d
                continue
            node: Node = element
            if prune is not None and prune(node):
                continue
            batched = vectorized_enabled() and len(node.entries) >= _BATCH_MIN_FANOUT
            if node.is_leaf:
                if batched and predicate is None:
                    for de, e in zip(_leaf_frontier_dists(node.entries, x, y), node.entries):
                        counter += 1
                        heapq.heappush(heap, (de, counter, e, True))
                    continue
                for e in node.entries:
                    if predicate is not None and not predicate(e):
                        continue
                    counter += 1
                    de = math.hypot(e.x - x, e.y - y)
                    heapq.heappush(heap, (de, counter, e, True))
            else:
                if batched:
                    for dc, child in zip(_node_frontier_dists(node.entries, x, y), node.entries):
                        counter += 1
                        heapq.heappush(heap, (dc, counter, child, False))
                    continue
                for child in node.entries:
                    counter += 1
                    dc = point_min_dist(origin, child.box)
                    heapq.heappush(heap, (dc, counter, child, False))

    # ------------------------------------------------------------------ #
    # Introspection (tests rely on these invariants)
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self.size

    def iter_leaf_entries(self) -> Iterator[LeafEntry]:
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                yield from node.entries
            else:
                stack.extend(node.entries)

    def height(self) -> int:
        """Number of levels (a lone root leaf has height 1)."""
        return self.root.level + 1

    def check_invariants(self) -> None:
        """Raise ``AssertionError`` when structural invariants are violated."""
        self._check_node(self.root, is_root=True)
        assert sum(1 for _ in self.iter_leaf_entries()) == self.size

    def _check_node(self, node: Node, is_root: bool = False) -> None:
        if not is_root:
            assert len(node) >= 1, "non-root node may not be empty"
        assert len(node) <= self.max_entries, "node overflow"
        box = MBR.empty()
        if node.is_leaf:
            for e in node.entries:
                box.include_point((e.x, e.y))
        else:
            for child in node.entries:
                assert child.parent is node, "broken parent pointer"
                assert child.level == node.level - 1, "broken level chain"
                box.include_mbr(child.box)
                self._check_node(child)
        if node.entries:
            assert abs(box.x1 - node.box.x1) < 1e-9
            assert abs(box.y1 - node.box.y1) < 1e-9
            assert abs(box.x2 - node.box.x2) < 1e-9
            assert abs(box.y2 - node.box.y2) < 1e-9


def _union_boxes(boxes: Iterable[MBR]) -> MBR:
    merged = MBR.empty()
    for b in boxes:
        merged.include_mbr(b)
    return merged
