"""Uniform grid over points with numpy-backed disc queries.

The SKEC-family algorithms repeatedly ask for "all relevant objects within
distance D of o" (the sweeping area, Figure 4).  A uniform grid answers
that in near-constant time per non-empty cell and vectorises the final
distance filter; it complements the R*-tree, which is kept for
keyword-pruned nearest-neighbour search and the VirbR baseline.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

import numpy as np

__all__ = ["UniformGrid"]


class UniformGrid:
    """Static grid over an ``(n, 2)`` coordinate array.

    ``cell_size`` defaults to a value that puts ~4 points per non-empty
    cell on uniformly scattered data, a robust general-purpose choice.
    """

    def __init__(self, coords: np.ndarray, cell_size: float = 0.0):
        coords = np.asarray(coords, dtype=np.float64)
        if coords.ndim != 2 or (coords.size and coords.shape[1] != 2):
            raise ValueError(f"expected (n, 2) coordinates, got {coords.shape}")
        self.coords = coords
        n = len(coords)
        if n == 0:
            self.cell_size = max(cell_size, 1.0)
            self._cells: Dict[Tuple[int, int], np.ndarray] = {}
            self._min_x = self._min_y = 0.0
            self._cell_lo = (0, 0)
            self._cell_hi = (-1, -1)
            return

        min_xy = coords.min(axis=0)
        max_xy = coords.max(axis=0)
        extent = float(max(max_xy[0] - min_xy[0], max_xy[1] - min_xy[1], 1e-9))
        if cell_size <= 0.0:
            cell_size = extent / max(1.0, math.sqrt(n / 4.0))
        self.cell_size = cell_size
        self._min_x = float(min_xy[0])
        self._min_y = float(min_xy[1])

        keys_x = np.floor((coords[:, 0] - self._min_x) / cell_size).astype(np.int64)
        keys_y = np.floor((coords[:, 1] - self._min_y) / cell_size).astype(np.int64)
        # Group rows by cell with one stable lexsort instead of a Python
        # loop: ties (rows in the same cell) keep their original ascending
        # row order, so each bucket is identical to what per-row appends
        # would have produced.
        order = np.lexsort((keys_y, keys_x)).astype(np.intp)
        sx = keys_x[order]
        sy = keys_y[order]
        changed = np.empty(n, dtype=bool)
        changed[0] = True
        np.logical_or(sx[1:] != sx[:-1], sy[1:] != sy[:-1], out=changed[1:])
        starts = np.flatnonzero(changed)
        bounds = np.append(starts, n)
        self._cells = {
            (int(sx[s]), int(sy[s])): order[s:e]
            for s, e in zip(bounds[:-1], bounds[1:])
        }
        # Occupied cell bounds: disc queries clamp their cell sweep to this
        # window, otherwise a huge radius over a degenerate (tiny-extent)
        # grid would iterate astronomically many empty cells.
        self._cell_lo = (int(keys_x.min()), int(keys_y.min()))
        self._cell_hi = (int(keys_x.max()), int(keys_y.max()))

    def __len__(self) -> int:
        return len(self.coords)

    def _cell_of(self, x: float, y: float) -> Tuple[int, int]:
        return (
            int(math.floor((x - self._min_x) / self.cell_size)),
            int(math.floor((y - self._min_y) / self.cell_size)),
        )

    def rows_within(self, cx: float, cy: float, r: float) -> np.ndarray:
        """Row indices within the closed disc of radius ``r`` around (cx, cy)."""
        if len(self.coords) == 0 or r < 0.0:
            return np.empty(0, dtype=np.intp)
        lo = self._cell_of(cx - r, cy - r)
        hi = self._cell_of(cx + r, cy + r)
        lo = (max(lo[0], self._cell_lo[0]), max(lo[1], self._cell_lo[1]))
        hi = (min(hi[0], self._cell_hi[0]), min(hi[1], self._cell_hi[1]))
        chunks: List[np.ndarray] = []
        for gx in range(lo[0], hi[0] + 1):
            for gy in range(lo[1], hi[1] + 1):
                rows = self._cells.get((gx, gy))
                if rows is not None:
                    chunks.append(rows)
        if not chunks:
            return np.empty(0, dtype=np.intp)
        candidates = np.concatenate(chunks)
        pts = self.coords[candidates]
        dx = pts[:, 0] - cx
        dy = pts[:, 1] - cy
        limit = r * r * (1.0 + 1e-12) + 1e-18
        return candidates[dx * dx + dy * dy <= limit]

    def count_within(self, cx: float, cy: float, r: float) -> int:
        """Number of points within the closed disc."""
        return int(len(self.rows_within(cx, cy, r)))
