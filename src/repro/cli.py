"""Command-line interface: ``python -m repro`` or the ``mck`` script.

Subcommands
-----------
``generate``    write a synthetic NY/LA/TW-like dataset to JSON-lines
``query``       answer one mCK query over a dataset file
``experiment``  regenerate a paper table/figure (table1, fig7 ... fig14)
``stats``       print Table-1-style statistics for a dataset file
``serve``       serve mCK queries over HTTP: the asyncio JSON API of
                :mod:`repro.server` over a :class:`~repro.serving.QueryService`
                with a worker-process pool for the hot loops
                (``--shards N`` scales out: a replicated shard router
                fans queries across N shard groups with WAL-shipped read
                replicas and automatic failover)
``serve-bench`` replay a query workload through the batched
                :class:`~repro.serving.QueryService` and dump JSON metrics
                (``--http`` drives the real socket tier with open-loop
                Poisson load instead)
``live-bench``  drive a mixed read/write Poisson workload against a
                :class:`~repro.live.LiveMCKEngine`-backed service and dump
                JSON metrics (epochs, delta size, compactions, WAL records,
                keyword-scoped cache invalidations)
``shard-bench`` drive a skewed read/write workload against the
                scale-out tier (replicated shard router): scatter-gather
                queries, WAL-shipped replicas, optional mid-workload
                primary kill (failover) and hot-shard splitting; dump a
                JSON report
``trace``       serve a small workload with the span tracer attached and
                write a Chrome trace-event JSON (plus optional Prometheus
                text exposition of the latency histograms)
``explain``     answer one query through the full serving stack and print
                its EXPLAIN report (span tree, kernel mode, cache and
                admission outcome, pruning counters, phase latencies)
``metrics``     run a nested ``mck`` command, then pretty-print the
                process-wide :class:`~repro.serving.stats.MetricsRegistry`
                (``--format json|prom``)
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .core.engine import MCKEngine
from .datasets.io import load_jsonl, save_jsonl
from .datasets.stats import table1_stats
from .datasets.synthetic import make_la_like, make_ny_like, make_tw_like
from .experiments import figures
from .experiments.report import render_rows

_EXPERIMENTS = {
    "table1": lambda args: _render_table1(args),
    "fig7": lambda args: figures.fig7_vary_epsilon(scale=args.scale),
    "fig8": lambda args: figures.fig8_vary_keywords(scale=args.scale),
    "fig9": lambda args: figures.fig9_skec_vs_skecaplus(scale=args.scale),
    "fig10": lambda args: figures.fig10_vary_diameter(scale=args.scale),
    "fig11": lambda args: figures.fig11_vary_timeout(scale=args.scale),
    "fig12": lambda args: figures.fig12_vary_frequency(scale=args.scale),
    "fig13": lambda args: figures.fig13_scalability(),
    "fig14": lambda args: figures.fig14_vary_epsilon_ny_tw(scale=args.scale),
    "distributed": lambda args: figures.ext_distributed_scaling(scale=args.scale),
}


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 2
    return args.handler(args)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="mck",
        description="mCK query reproduction (SIGMOD 2015) command-line tools",
    )
    sub = parser.add_subparsers(dest="command")
    parser.set_defaults(command=None)

    gen = sub.add_parser("generate", help="generate a synthetic dataset")
    gen.add_argument("preset", choices=["NY", "LA", "TW"])
    gen.add_argument("output", help="output JSON-lines path")
    gen.add_argument("--scale", type=float, default=1.0)
    gen.add_argument("--seed", type=int, default=None)
    gen.set_defaults(handler=_cmd_generate)

    query = sub.add_parser("query", help="answer one mCK query")
    query.add_argument("dataset", help="JSON-lines dataset path")
    query.add_argument("keywords", nargs="+", help="the m query keywords")
    query.add_argument(
        "--algorithm",
        default="SKECa+",
        choices=["GKG", "SKEC", "SKECa", "SKECa+", "EXACT"],
    )
    query.add_argument("--epsilon", type=float, default=0.01)
    query.add_argument("--timeout", type=float, default=None)
    query.set_defaults(handler=_cmd_query)

    exp = sub.add_parser("experiment", help="regenerate a paper table/figure")
    exp.add_argument("name", choices=sorted(_EXPERIMENTS))
    exp.add_argument("--scale", type=float, default=0.05)
    exp.add_argument(
        "--save-json",
        metavar="PATH",
        default=None,
        help="also write the figure series to a JSON document",
    )
    exp.set_defaults(handler=_cmd_experiment)

    stats = sub.add_parser("stats", help="Table-1-style dataset statistics")
    stats.add_argument("dataset", help="JSON-lines dataset path")
    stats.set_defaults(handler=_cmd_stats)

    serve = sub.add_parser(
        "serve-bench",
        help="replay a workload through the batched QueryService, dump JSON metrics",
    )
    serve.add_argument(
        "--dataset", default=None, help="JSON-lines dataset path (overrides --preset)"
    )
    serve.add_argument("--preset", choices=["NY", "LA", "TW"], default="NY")
    serve.add_argument("--scale", type=float, default=0.02)
    serve.add_argument("--m", type=int, default=4, help="keywords per query")
    serve.add_argument(
        "--queries", type=int, default=50, help="distinct queries in the workload"
    )
    serve.add_argument(
        "--repeat",
        type=int,
        default=3,
        help="times the workload is replayed (exercises the result cache)",
    )
    serve.add_argument(
        "--algorithms",
        nargs="+",
        default=["SKECa+"],
        metavar="ALGO",
        help="algorithms to serve (GKG, SKEC, SKECa, SKECa+, EXACT)",
    )
    serve.add_argument("--epsilon", type=float, default=0.01)
    serve.add_argument("--timeout", type=float, default=None)
    serve.add_argument("--workers", type=int, default=None)
    serve.add_argument(
        "--arrival-rate",
        type=float,
        default=None,
        metavar="QPS",
        help="open-loop mode: submit the workload as a Poisson arrival "
        "process at this rate (queries/s) instead of replaying it "
        "closed-loop; overloads are shed, not queued without bound",
    )
    serve.add_argument(
        "--admission-capacity",
        type=int,
        default=1024,
        help="bounded admission queue capacity; 0 = unbounded",
    )
    serve.add_argument(
        "--shed-policy",
        default="reject-newest",
        choices=["reject-newest", "reject-oldest", "deadline-aware"],
        help="load-shedding policy applied when the admission queue fills",
    )
    serve.add_argument("--cache-size", type=int, default=1024)
    serve.add_argument("--cache-ttl", type=float, default=None)
    serve.add_argument(
        "--process-exact",
        action="store_true",
        help="run EXACT queries on a process pool",
    )
    serve.add_argument(
        "--process-algorithms",
        nargs="+",
        default=None,
        metavar="ALGO",
        help="run these algorithms on the worker-process pool (off the "
        "GIL); supersedes --process-exact",
    )
    serve.add_argument(
        "--http",
        action="store_true",
        help="open-loop mode over a real socket: boot the asyncio HTTP "
        "tier and drive it with the Poisson load generator; reports "
        "wire p50/p95 latencies and HTTP 429 rejections",
    )
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--output", default=None, help="write the JSON dump here instead of stdout"
    )
    serve.add_argument(
        "--strict-timeouts",
        action="store_true",
        help="fail queries on an expired deadline (paper §6.2.3) instead of "
        "returning the best feasible incumbent as a degraded answer",
    )
    serve.add_argument(
        "--inject-fault",
        action="append",
        default=[],
        metavar="SPEC",
        help="arm a fault for the run, e.g. slow-scan:delay=0.2, "
        "clock-skew:after=50, pool-reject:times=2, worker-crash "
        "(repeatable; see repro.testing.faults)",
    )
    serve.add_argument(
        "--prom-out",
        default=None,
        help="also write Prometheus text exposition of the service metrics here",
    )
    serve.add_argument(
        "--profile",
        default=None,
        metavar="PATH",
        help="sample stacks during the run and write collapsed stacks "
        "(flamegraph.pl / speedscope format) here",
    )
    serve.add_argument(
        "--slo-target",
        type=float,
        default=0.25,
        metavar="SECONDS",
        help="latency SLO target used for the dump's slo block",
    )
    serve.set_defaults(handler=_cmd_serve_bench)

    srv = sub.add_parser(
        "serve",
        help="serve mCK queries over HTTP (asyncio front end, "
        "worker-process pool for the hot loops)",
    )
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument(
        "--port", type=int, default=8080, help="0 picks a free port"
    )
    srv.add_argument(
        "--dataset", default=None, help="JSON-lines dataset path (overrides --preset)"
    )
    srv.add_argument("--preset", choices=["NY", "LA", "TW"], default="NY")
    srv.add_argument("--scale", type=float, default=0.02)
    srv.add_argument("--seed", type=int, default=0)
    srv.add_argument(
        "--live",
        action="store_true",
        help="front a mutable LiveMCKEngine (enables POST /mutate); "
        "implies in-process execution — the worker-process pool needs "
        "a sealed dataset",
    )
    srv.add_argument(
        "--wal", default=None, metavar="PATH",
        help="write-ahead log path (with --live): mutations are durable "
        "and replayed on restart",
    )
    srv.add_argument(
        "--data-dir", default=None, metavar="DIR",
        help="checkpointed durable store (with --live, instead of --wal): "
        "compactions persist CRC-checksummed segments so a restart is a "
        "segment load plus short WAL tail replay, verified before /readyz "
        "reports ready",
    )
    srv.add_argument("--workers", type=int, default=None)
    srv.add_argument(
        "--admission-capacity",
        type=int,
        default=1024,
        help="bounded admission queue capacity; 0 = unbounded",
    )
    srv.add_argument(
        "--shed-policy",
        default="reject-newest",
        choices=["reject-newest", "reject-oldest", "deadline-aware"],
    )
    srv.add_argument("--cache-size", type=int, default=1024)
    srv.add_argument(
        "--process-algorithms",
        nargs="+",
        default=None,
        metavar="ALGO",
        help="run these algorithms on the worker-process pool, off the "
        "GIL (static datasets only; default: EXACT and SKECa+)",
    )
    srv.add_argument(
        "--ready-fraction",
        type=float,
        default=0.8,
        help="queue-depth fraction of the admission capacity at which "
        "/readyz flips unready (shed at the balancer before 429s)",
    )
    srv.add_argument(
        "--flight-traces",
        type=int,
        default=256,
        help="tail-latency flight recorder retention (0 disables)",
    )
    srv.add_argument(
        "--shards",
        type=int,
        default=0,
        metavar="N",
        help="scale out: front a replicated shard router fanning queries "
        "across N shard groups (implies mutable in-process execution; "
        "needs neither --live nor --wal)",
    )
    srv.add_argument(
        "--replicas",
        type=int,
        default=1,
        help="WAL-shipped read replicas per shard (with --shards)",
    )
    srv.set_defaults(handler=_cmd_serve)

    live = sub.add_parser(
        "live-bench",
        help="drive a mixed read/write workload against a live (mutable) "
        "engine, dump JSON metrics",
    )
    live.add_argument(
        "--dataset", default=None, help="JSON-lines dataset path (overrides --preset)"
    )
    live.add_argument("--preset", choices=["NY", "LA", "TW"], default="NY")
    live.add_argument("--scale", type=float, default=0.02)
    live.add_argument("--m", type=int, default=4, help="keywords per query")
    live.add_argument(
        "--queries", type=int, default=25, help="distinct queries in the read mix"
    )
    live.add_argument(
        "--operations",
        type=int,
        default=200,
        help="total operations (reads + writes) to drive",
    )
    live.add_argument(
        "--write-ratio",
        type=float,
        default=0.3,
        help="fraction of operations that are mutations (inserts/deletes)",
    )
    live.add_argument(
        "--arrival-rate",
        type=float,
        default=None,
        metavar="OPS",
        help="open-loop mode: Poisson arrivals at this rate (operations/s); "
        "omitted = closed loop (each mutation completes before the next op)",
    )
    live.add_argument(
        "--algorithm",
        default="SKECa+",
        choices=["GKG", "SKEC", "SKECa", "SKECa+", "EXACT"],
    )
    live.add_argument("--epsilon", type=float, default=0.01)
    live.add_argument("--timeout", type=float, default=None)
    live.add_argument("--workers", type=int, default=None)
    live.add_argument("--cache-size", type=int, default=1024)
    live.add_argument(
        "--wal", default=None, metavar="PATH",
        help="write-ahead-log path (durability across restarts)",
    )
    live.add_argument(
        "--compact-threshold",
        type=int,
        default=64,
        help="delta size (adds + tombstones) that triggers compaction",
    )
    live.add_argument("--seed", type=int, default=0)
    live.add_argument(
        "--inject-fault",
        action="append",
        default=[],
        metavar="SPEC",
        help="arm a fault for the run, e.g. compaction-fail:times=2, "
        "slow-scan:delay=0.2 (repeatable; see repro.testing.faults)",
    )
    live.add_argument(
        "--output", default=None, help="write the JSON dump here instead of stdout"
    )
    live.add_argument(
        "--prom-out",
        default=None,
        help="also write Prometheus text exposition of the service metrics here",
    )
    live.add_argument(
        "--profile",
        default=None,
        metavar="PATH",
        help="sample stacks during the run and write collapsed stacks "
        "(flamegraph.pl / speedscope format) here",
    )
    live.add_argument(
        "--slo-target",
        type=float,
        default=0.25,
        metavar="SECONDS",
        help="latency SLO target used for the dump's slo block",
    )
    live.set_defaults(handler=_cmd_live_bench)

    shard = sub.add_parser(
        "shard-bench",
        help="drive a skewed read/write workload against the replicated "
        "shard router (scatter-gather, failover, live splits), dump JSON",
    )
    shard.add_argument("--shards", type=int, default=4)
    shard.add_argument(
        "--replicas", type=int, default=1, help="read replicas per shard"
    )
    shard.add_argument(
        "--objects", type=int, default=400, help="bootstrap object count"
    )
    shard.add_argument(
        "--operations", type=int, default=300, help="reads + writes to drive"
    )
    shard.add_argument(
        "--write-ratio",
        type=float,
        default=0.5,
        help="fraction of operations that are mutations",
    )
    shard.add_argument(
        "--hot-fraction",
        type=float,
        default=0.7,
        help="fraction of inserts clustered on the hot spot (drives one "
        "shard past --split-threshold)",
    )
    shard.add_argument(
        "--split-threshold",
        type=int,
        default=None,
        metavar="N",
        help="arm live rebalancing: split any shard that grows past N "
        "objects (omitted = no splits)",
    )
    shard.add_argument(
        "--kill-primary-at",
        type=int,
        default=None,
        metavar="OP",
        help="crash the hottest shard's primary after OP operations "
        "(exercises automatic failover)",
    )
    shard.add_argument(
        "--algorithm",
        default="SKECa+",
        choices=["GKG", "SKEC", "SKECa", "SKECa+", "EXACT"],
    )
    shard.add_argument("--m", type=int, default=3, help="keywords per query")
    shard.add_argument("--timeout", type=float, default=None)
    shard.add_argument(
        "--dir",
        default=None,
        metavar="DIR",
        help="router data directory (omitted = private tempdir)",
    )
    shard.add_argument("--seed", type=int, default=0)
    shard.add_argument(
        "--output", default=None, help="write the JSON dump here instead of stdout"
    )
    shard.add_argument(
        "--prom-out",
        default=None,
        help="also write Prometheus text exposition of the metrics here",
    )
    shard.set_defaults(handler=_cmd_shard_bench)

    trace = sub.add_parser(
        "trace",
        help="trace a small served workload; write Chrome trace JSON",
    )
    trace.add_argument(
        "--dataset", default=None, help="JSON-lines dataset path (overrides --preset)"
    )
    trace.add_argument("--preset", choices=["NY", "LA", "TW"], default="NY")
    trace.add_argument("--scale", type=float, default=0.01)
    trace.add_argument("--m", type=int, default=4, help="keywords per query")
    trace.add_argument(
        "--queries", type=int, default=5, help="distinct queries in the workload"
    )
    trace.add_argument(
        "--repeat",
        type=int,
        default=2,
        help="workload replays (>=2 exercises both cache hit and miss paths)",
    )
    trace.add_argument(
        "--algorithm",
        default="SKECa+",
        choices=["GKG", "SKEC", "SKECa", "SKECa+", "EXACT"],
    )
    trace.add_argument("--epsilon", type=float, default=0.01)
    trace.add_argument("--timeout", type=float, default=None)
    trace.add_argument(
        "--sample-rate",
        type=float,
        default=1.0,
        help="fraction of root spans to record (0..1)",
    )
    trace.add_argument(
        "--trace-out",
        default="mck-trace.json",
        help="Chrome trace-event JSON output path (open in Perfetto)",
    )
    trace.add_argument(
        "--prom-out",
        default=None,
        help="also write Prometheus text exposition of the metrics here",
    )
    trace.add_argument(
        "--log-json",
        action="store_true",
        help="emit structured JSON logs (with correlation ids) to stderr",
    )
    trace.add_argument("--seed", type=int, default=0)
    trace.set_defaults(handler=_cmd_trace)

    explain = sub.add_parser(
        "explain",
        help="answer one query through the serving stack, print its EXPLAIN",
    )
    explain.add_argument(
        "keywords",
        nargs="*",
        help="query keywords (omitted = auto-generate a feasible query)",
    )
    explain.add_argument(
        "--dataset", default=None, help="JSON-lines dataset path (overrides --preset)"
    )
    explain.add_argument("--preset", choices=["NY", "LA", "TW"], default="NY")
    explain.add_argument("--scale", type=float, default=0.01)
    explain.add_argument(
        "--m", type=int, default=4, help="keywords per auto-generated query"
    )
    explain.add_argument(
        "--algorithm",
        default="SKECa+",
        choices=["GKG", "SKEC", "SKECa", "SKECa+", "EXACT"],
    )
    explain.add_argument("--epsilon", type=float, default=0.01)
    explain.add_argument("--timeout", type=float, default=None)
    explain.add_argument(
        "--live",
        action="store_true",
        help="serve through a live (mutable) engine instead of a sealed one",
    )
    explain.add_argument(
        "--repeat",
        type=int,
        default=1,
        help=">=2 prints one report per run; the second shows the cache hit",
    )
    explain.add_argument(
        "--json",
        action="store_true",
        help="print the raw EXPLAIN dict as JSON instead of the text report",
    )
    explain.add_argument("--seed", type=int, default=0)
    explain.set_defaults(handler=_cmd_explain)

    met = sub.add_parser(
        "metrics",
        help="run a nested mck command, then pretty-print the default metrics registry",
    )
    met.add_argument(
        "--format",
        choices=["json", "prom"],
        default=None,
        help="output format (prom = Prometheus text exposition)",
    )
    met.add_argument(
        "--prometheus",
        action="store_true",
        help="deprecated alias for --format prom",
    )
    met.add_argument(
        "rest",
        nargs=argparse.REMAINDER,
        metavar="COMMAND",
        help="nested mck command executed before the registry is printed",
    )
    met.set_defaults(handler=_cmd_metrics)
    return parser


def _cmd_generate(args) -> int:
    maker = {"NY": make_ny_like, "LA": make_la_like, "TW": make_tw_like}[args.preset]
    dataset = maker(scale=args.scale, seed=args.seed)
    save_jsonl(dataset, args.output)
    print(
        f"wrote {len(dataset)} objects "
        f"({dataset.unique_word_count()} unique words) to {args.output}"
    )
    return 0


def _cmd_query(args) -> int:
    dataset = load_jsonl(args.dataset)
    engine = MCKEngine(dataset)
    group = engine.query(
        args.keywords,
        algorithm=args.algorithm,
        epsilon=args.epsilon,
        timeout=args.timeout,
    )
    print(f"algorithm : {args.algorithm}")
    print(f"diameter  : {group.diameter:.6g}")
    print(f"elapsed   : {group.elapsed_seconds * 1000:.2f} ms")
    print(f"group     : {len(group)} objects")
    for obj in group.objects(dataset):
        kws = ", ".join(sorted(obj.keywords))
        print(f"  #{obj.oid} at ({obj.x:.1f}, {obj.y:.1f}) [{kws}]")
    return 0


def _cmd_experiment(args) -> int:
    result = _EXPERIMENTS[args.name](args)
    if isinstance(result, str):
        print(result)
        return 0
    for figure in result:
        print(figure.render())
        print()
    if args.save_json:
        from .experiments.persistence import save_figures

        save_figures(result, args.save_json)
        print(f"saved {len(result)} figure(s) to {args.save_json}")
    return 0


def _render_table1(args) -> str:
    text, _stats = figures.table1_datasets(scale=args.scale)
    return text


def _cmd_serve_bench(args) -> int:
    import json
    import time as _time

    from .core.engine import canonical_algorithm
    from .datasets.queries import generate_queries
    from .exceptions import QueryError, QueryRejected
    from .serving import QueryRequest, QueryService
    from .testing import faults

    try:
        algorithms = [canonical_algorithm(a) for a in args.algorithms]
    except QueryError as exc:
        print(f"serve-bench: {exc}", file=sys.stderr)
        return 2
    try:
        for spec in args.inject_fault:
            faults.arm_spec(spec)
    except ValueError as exc:
        print(f"serve-bench: {exc}", file=sys.stderr)
        return 2
    if args.cache_ttl is not None and args.cache_ttl <= 0:
        print("serve-bench: --cache-ttl must be positive", file=sys.stderr)
        return 2
    if args.arrival_rate is not None and args.arrival_rate <= 0:
        print("serve-bench: --arrival-rate must be positive", file=sys.stderr)
        return 2
    if args.admission_capacity < 0:
        print(
            "serve-bench: --admission-capacity must be >= 0", file=sys.stderr
        )
        return 2
    admission_capacity = args.admission_capacity or None

    if args.dataset:
        dataset = load_jsonl(args.dataset)
    else:
        maker = {"NY": make_ny_like, "LA": make_la_like, "TW": make_tw_like}[
            args.preset
        ]
        dataset = maker(scale=args.scale, seed=args.seed)

    workload = generate_queries(
        dataset, m=args.m, count=args.queries, seed=args.seed
    )
    requests = [
        QueryRequest(
            keywords=q.keywords,
            algorithm=algorithm,
            epsilon=args.epsilon,
            timeout=args.timeout,
        )
        for algorithm in algorithms
        for q in workload
    ]

    from .observability.profiler import StackProfiler
    from .observability.slo import SLOTracker, default_objectives

    slo = SLOTracker(default_objectives(latency_target=args.slo_target))
    profiler = StackProfiler(interval=0.01) if args.profile else None
    started = _time.perf_counter()
    if profiler is not None:
        profiler.start()
    try:
        with QueryService(
            dataset,
            max_workers=args.workers,
            admission_capacity=admission_capacity,
            shed_policy=args.shed_policy,
            cache_size=args.cache_size,
            cache_ttl=args.cache_ttl,
            use_processes_for_exact=args.process_exact,
            process_algorithms=args.process_algorithms,
            strict_timeouts=args.strict_timeouts,
            slo=slo,
        ) as service:
            failures = 0
            degraded = 0
            rejected = 0
            rounds = max(1, args.repeat)
            http_load = None
            if args.http:
                # Over-the-wire open loop: boot the asyncio HTTP tier on
                # a free port and drive it with Poisson arrivals through
                # real sockets, so the numbers include wire framing and
                # admission rejections surface as HTTP 429s.
                from .server import MCKServer
                from .server.loadgen import run_http_load

                rate = args.arrival_rate or 50.0
                duration = len(requests) * rounds / rate
                handle = MCKServer(service).run_in_thread()
                try:
                    http_load = run_http_load(
                        handle.host,
                        handle.port,
                        [list(q.keywords) for q in workload],
                        rate=rate,
                        duration=duration,
                        algorithm=algorithms,
                        epsilon=args.epsilon,
                        timeout=args.timeout,
                        seed=args.seed,
                    )
                finally:
                    handle.stop()
                failures = http_load.errors
                degraded = http_load.degraded
                rejected = http_load.rejected
            elif args.arrival_rate is not None:
                # Open loop: arrivals do not wait for completions, so a
                # slow service sees a growing queue — exactly the regime
                # admission control and shedding are for.
                import random as _random

                rng = _random.Random(args.seed)
                futures = []
                for _round in range(rounds):
                    for request in requests:
                        _time.sleep(rng.expovariate(args.arrival_rate))
                        try:
                            futures.append(service.submit(request))
                        except QueryRejected:
                            rejected += 1
                for future in futures:
                    try:
                        result = future.result()
                    except QueryRejected:
                        rejected += 1
                        continue
                    if not result.ok:
                        failures += 1
                    elif result.degraded:
                        degraded += 1
            else:
                for _round in range(rounds):
                    for result in service.query_many(requests):
                        if result.rejected:
                            rejected += 1
                        elif not result.ok:
                            failures += 1
                        elif result.degraded:
                            degraded += 1
            wall = _time.perf_counter() - started
            dump = {
                "workload": {
                    "dataset": dataset.name,
                    "objects": len(dataset),
                    "m": args.m,
                    "distinct_queries": len(workload),
                    "algorithms": algorithms,
                    "repeat": rounds,
                    "requests_total": len(requests) * rounds,
                    "failures": failures,
                    "degraded": degraded,
                    "rejected": rejected,
                    "arrival_rate": args.arrival_rate,
                    "admission_capacity": admission_capacity,
                    "shed_policy": args.shed_policy,
                    "strict_timeouts": args.strict_timeouts,
                    "injected_faults": list(args.inject_fault),
                    "wall_seconds": wall,
                    "throughput_qps": len(requests) * rounds / wall
                    if wall > 0
                    else None,
                },
                "admission": service.admission_dict(),
                "metrics": service.metrics_dict(),
                "slo": slo.as_dict(),
            }
            if http_load is not None:
                dump["http"] = http_load.as_dict()
                dump["workload"]["requests_total"] = http_load.offered
                p50, p95 = http_load.percentile(0.5), http_load.percentile(0.95)
                print(
                    "serve-bench --http: offered={} completed={} rejected(429)={} "
                    "errors={} p50={} p95={}".format(
                        http_load.offered,
                        http_load.completed,
                        http_load.rejected,
                        http_load.errors,
                        f"{p50 * 1e3:.1f}ms" if p50 is not None else "n/a",
                        f"{p95 * 1e3:.1f}ms" if p95 is not None else "n/a",
                    ),
                    file=sys.stderr,
                )
            prom_text = service.metrics.to_prometheus() if args.prom_out else None
    finally:
        if profiler is not None:
            profiler.stop()
        faults.reset()
    if profiler is not None:
        profiler.write_collapsed(args.profile)
        dump["profile"] = profiler.stats()

    text = json.dumps(dump, indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text + "\n")
        print(f"wrote serve-bench metrics to {args.output}")
    else:
        print(text)
    if args.prom_out:
        with open(args.prom_out, "w") as fh:
            fh.write(prom_text)
        print(f"wrote Prometheus exposition to {args.prom_out}")
    if profiler is not None:
        print(f"wrote collapsed stacks to {args.profile}")
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from .core.engine import canonical_algorithm
    from .exceptions import QueryError
    from .live import LiveMCKEngine
    from .observability.flight import FlightRecorder
    from .server import MCKServer
    from .serving import QueryService

    if args.admission_capacity < 0:
        print("serve: --admission-capacity must be >= 0", file=sys.stderr)
        return 2
    if args.shards < 0:
        print("serve: --shards must be >= 0", file=sys.stderr)
        return 2
    if args.shards and (args.live or args.wal or args.data_dir):
        print(
            "serve: --shards manages its own live engines and durability; "
            "drop --live/--wal/--data-dir",
            file=sys.stderr,
        )
        return 2
    if args.shards and args.process_algorithms:
        print(
            "serve: --process-algorithms needs a sealed dataset; "
            "drop --shards",
            file=sys.stderr,
        )
        return 2
    if args.wal and not args.live:
        print("serve: --wal needs --live", file=sys.stderr)
        return 2
    if args.data_dir and not args.live:
        print("serve: --data-dir needs --live", file=sys.stderr)
        return 2
    if args.data_dir and args.wal:
        print(
            "serve: --data-dir manages its own WAL; drop --wal",
            file=sys.stderr,
        )
        return 2
    if args.live and args.process_algorithms:
        print(
            "serve: --process-algorithms needs a sealed dataset "
            "(pool workers hold a frozen copy); drop --live",
            file=sys.stderr,
        )
        return 2

    if args.dataset:
        dataset = load_jsonl(args.dataset)
    else:
        maker = {"NY": make_ny_like, "LA": make_la_like, "TW": make_tw_like}[
            args.preset
        ]
        dataset = maker(scale=args.scale, seed=args.seed)

    if args.shards:
        from .replication import ReplicatedShardRouter

        source = ReplicatedShardRouter(
            [(obj.x, obj.y, obj.keywords) for obj in dataset],
            n_shards=args.shards,
            replicas_per_shard=max(0, args.replicas),
            name=dataset.name,
            replication_interval=0.05,
        )
        process_algorithms = None
    elif args.live:
        source = LiveMCKEngine.from_records(
            ((obj.x, obj.y, obj.keywords) for obj in dataset),
            name=dataset.name,
            wal_path=args.wal,
            data_dir=args.data_dir,
        )
        process_algorithms = None
    else:
        source = dataset
        try:
            process_algorithms = [
                canonical_algorithm(a)
                for a in (args.process_algorithms or ["EXACT", "SKECa+"])
            ]
        except QueryError as exc:
            print(f"serve: {exc}", file=sys.stderr)
            return 2

    flight = (
        FlightRecorder(max_traces=args.flight_traces)
        if args.flight_traces > 0
        else None
    )
    service = QueryService(
        source,
        max_workers=args.workers,
        admission_capacity=args.admission_capacity or None,
        shed_policy=args.shed_policy,
        cache_size=args.cache_size,
        process_algorithms=process_algorithms,
        flight=flight,
    )
    server = MCKServer(
        service,
        host=args.host,
        port=args.port,
        ready_fraction=args.ready_fraction,
        owns_service=True,
    )

    async def _main() -> None:
        await server.start()
        if args.shards:
            # The routing grid is square, so the live shard count is
            # floor(sqrt(--shards))^2 — report what actually runs.
            mode = (
                f"scatter: {len(source.live_groups())} shard(s) x "
                f"{max(0, args.replicas)} replica(s)"
            )
        elif args.live:
            mode = "live (mutable)"
        else:
            mode = f"sealed, process pool for {', '.join(process_algorithms)}"
        print(
            f"mck serve: http://{server.host}:{server.port} "
            f"[{dataset.name}: {len(dataset)} objects; {mode}]",
            flush=True,
        )
        await server.serve_until_stopped()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        print("mck serve: interrupted, shutting down", file=sys.stderr)
        service.close()
    return 0


def _cmd_live_bench(args) -> int:
    import json
    import random as _random
    import time as _time

    from .datasets.queries import generate_queries
    from .exceptions import QueryRejected, ReproError
    from .live import LiveMCKEngine
    from .serving import QueryRequest, QueryService
    from .testing import faults

    try:
        for spec in args.inject_fault:
            faults.arm_spec(spec)
    except ValueError as exc:
        print(f"live-bench: {exc}", file=sys.stderr)
        return 2
    if not 0.0 <= args.write_ratio <= 1.0:
        print("live-bench: --write-ratio must be in [0, 1]", file=sys.stderr)
        return 2
    if args.arrival_rate is not None and args.arrival_rate <= 0:
        print("live-bench: --arrival-rate must be positive", file=sys.stderr)
        return 2

    if args.dataset:
        dataset = load_jsonl(args.dataset)
    else:
        maker = {"NY": make_ny_like, "LA": make_la_like, "TW": make_tw_like}[
            args.preset
        ]
        dataset = maker(scale=args.scale, seed=args.seed)

    workload = generate_queries(
        dataset, m=args.m, count=args.queries, seed=args.seed
    )
    # Mutations reuse the workload's keywords so writes actually collide
    # with cached reads — otherwise the invalidation path never fires.
    terms = sorted({k for q in workload for k in q.keywords})
    coords = dataset.coords
    x_lo, y_lo = float(coords[:, 0].min()), float(coords[:, 1].min())
    x_hi, y_hi = float(coords[:, 0].max()), float(coords[:, 1].max())

    from .observability.profiler import StackProfiler
    from .observability.slo import SLOTracker, default_objectives

    rng = _random.Random(args.seed)
    reads = writes = inserts = deletes = 0
    failures = degraded = rejected = mutation_errors = 0
    inserted_oids: List[int] = []
    slo = SLOTracker(default_objectives(latency_target=args.slo_target))
    profiler = StackProfiler(interval=0.01) if args.profile else None
    started = _time.perf_counter()
    engine = LiveMCKEngine.from_dataset(
        dataset,
        wal_path=args.wal,
        compact_threshold=args.compact_threshold,
    )
    if profiler is not None:
        profiler.start()
    try:
        with QueryService(
            engine,
            max_workers=args.workers,
            cache_size=args.cache_size,
            slo=slo,
        ) as service:
            futures = []
            for _op in range(max(0, args.operations)):
                if args.arrival_rate is not None:
                    _time.sleep(rng.expovariate(args.arrival_rate))
                if rng.random() < args.write_ratio:
                    writes += 1
                    try:
                        if inserted_oids and rng.random() < 0.4:
                            oid = inserted_oids.pop(
                                rng.randrange(len(inserted_oids))
                            )
                            service.submit_mutation(deletes=[oid]).result()
                            deletes += 1
                        else:
                            kws = rng.sample(
                                terms, min(len(terms), rng.randint(1, 3))
                            )
                            oids = service.submit_mutation(
                                inserts=[(
                                    rng.uniform(x_lo, x_hi),
                                    rng.uniform(y_lo, y_hi),
                                    kws,
                                )]
                            ).result()
                            inserted_oids.extend(oids)
                            inserts += 1
                    except QueryRejected:
                        rejected += 1
                    except ReproError:
                        mutation_errors += 1
                else:
                    reads += 1
                    q = workload[rng.randrange(len(workload))]
                    request = QueryRequest(
                        keywords=q.keywords,
                        algorithm=args.algorithm,
                        epsilon=args.epsilon,
                        timeout=args.timeout,
                    )
                    try:
                        futures.append(service.submit(request))
                    except QueryRejected:
                        rejected += 1
            for future in futures:
                try:
                    result = future.result()
                except QueryRejected:
                    rejected += 1
                    continue
                if not result.ok:
                    failures += 1
                elif result.degraded:
                    degraded += 1
            wall = _time.perf_counter() - started
            cache_stats = service.cache.stats()
            dump = {
                "workload": {
                    "dataset": dataset.name,
                    "objects_initial": len(dataset),
                    "objects_final": len(engine),
                    "m": args.m,
                    "operations": args.operations,
                    "reads": reads,
                    "writes": writes,
                    "inserts": inserts,
                    "deletes": deletes,
                    "write_ratio": args.write_ratio,
                    "arrival_rate": args.arrival_rate,
                    "failures": failures,
                    "degraded": degraded,
                    "rejected": rejected,
                    "mutation_errors": mutation_errors,
                    "injected_faults": list(args.inject_fault),
                    "wall_seconds": wall,
                    "throughput_ops": args.operations / wall if wall > 0 else None,
                },
                "live": {
                    "epoch": engine.epoch,
                    "delta_size": engine.delta_size,
                    "compactions": engine.compactor.compactions,
                    "compaction_failures": engine.compactor.failures,
                    "wal_records": (
                        engine.wal.records_written
                        if engine.wal is not None
                        else None
                    ),
                    "cache_invalidations": cache_stats["invalidations"],
                },
                "cache": cache_stats,
                "admission": service.admission_dict(),
                "metrics": service.metrics_dict(),
                "slo": slo.as_dict(),
            }
            prom_text = service.metrics.to_prometheus() if args.prom_out else None
    finally:
        if profiler is not None:
            profiler.stop()
        engine.close()
        faults.reset()
    if profiler is not None:
        profiler.write_collapsed(args.profile)
        dump["profile"] = profiler.stats()

    text = json.dumps(dump, indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text + "\n")
        print(f"wrote live-bench metrics to {args.output}")
    else:
        print(text)
    if args.prom_out:
        with open(args.prom_out, "w") as fh:
            fh.write(prom_text)
        print(f"wrote Prometheus exposition to {args.prom_out}")
    if profiler is not None:
        print(f"wrote collapsed stacks to {args.profile}")
    return 0


def _cmd_shard_bench(args) -> int:
    import json

    from .replication.bench import run_shard_bench
    from .serving.stats import MetricsRegistry

    if not 0.0 <= args.write_ratio <= 1.0:
        print("shard-bench: --write-ratio must be in [0, 1]", file=sys.stderr)
        return 2
    if args.shards < 1:
        print("shard-bench: --shards must be >= 1", file=sys.stderr)
        return 2
    registry = MetricsRegistry()
    report = run_shard_bench(
        n_shards=args.shards,
        replicas=args.replicas,
        objects=args.objects,
        operations=args.operations,
        write_ratio=args.write_ratio,
        hot_fraction=args.hot_fraction,
        split_threshold=args.split_threshold,
        kill_primary_at=args.kill_primary_at,
        algorithm=args.algorithm,
        m=args.m,
        timeout=args.timeout,
        dir=args.dir,
        metrics=registry,
        seed=args.seed,
    )
    text = json.dumps(report, indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text + "\n")
        print(f"wrote shard-bench report to {args.output}")
    else:
        print(text)
    if args.prom_out:
        with open(args.prom_out, "w") as fh:
            fh.write(registry.to_prometheus())
        print(f"wrote Prometheus exposition to {args.prom_out}")
    return 0


def _cmd_trace(args) -> int:
    import json
    from collections import Counter as _Counter

    from .datasets.queries import generate_queries
    from .observability.exporters import write_chrome_trace
    from .observability.logging import configure_logging
    from .observability.tracer import Tracer, set_tracer
    from .serving import QueryRequest, QueryService
    from .serving.stats import MetricsRegistry

    if not 0.0 <= args.sample_rate <= 1.0:
        print("trace: --sample-rate must be in [0, 1]", file=sys.stderr)
        return 2
    if args.log_json:
        import logging as _logging

        configure_logging(level=_logging.DEBUG)

    if args.dataset:
        dataset = load_jsonl(args.dataset)
    else:
        maker = {"NY": make_ny_like, "LA": make_la_like, "TW": make_tw_like}[
            args.preset
        ]
        dataset = maker(scale=args.scale, seed=args.seed)

    workload = generate_queries(
        dataset, m=args.m, count=args.queries, seed=args.seed
    )
    requests = [
        QueryRequest(
            keywords=q.keywords,
            algorithm=args.algorithm,
            epsilon=args.epsilon,
            timeout=args.timeout,
        )
        for q in workload
    ]

    tracer = Tracer(sample_rate=args.sample_rate)
    # Install globally so index builds and any code outside the service's
    # explicit wiring land in the same trace.
    set_tracer(tracer)
    registry = MetricsRegistry()
    failures = 0
    try:
        with QueryService(dataset, metrics=registry, tracer=tracer) as service:
            for _round in range(max(1, args.repeat)):
                for result in service.query_many(requests):
                    if not result.ok:
                        failures += 1
            registry.record_cache(service.cache.stats())
    finally:
        set_tracer(None)

    events = write_chrome_trace(tracer, args.trace_out)
    by_name = _Counter(span["name"] for span in tracer.finished_spans())
    print(f"served {len(requests) * max(1, args.repeat)} requests "
          f"({failures} failed) over {len(dataset)} objects")
    print(f"wrote {events} trace events to {args.trace_out}")
    for name, count in sorted(by_name.items()):
        print(f"  {name:32s} {count}")
    if args.prom_out:
        with open(args.prom_out, "w") as fh:
            fh.write(registry.to_prometheus())
        print(f"wrote Prometheus metrics to {args.prom_out}")
    else:
        summary = registry.as_dict()["histograms"].get(
            "mck_query_latency_seconds", {}
        )
        print(json.dumps(summary, indent=2, sort_keys=True))
    return 0


def _cmd_metrics(args) -> int:
    from .serving.stats import MetricsRegistry

    rest = [arg for arg in args.rest if arg != "--"]
    if not rest:
        print(
            "metrics: a nested mck command is required "
            "(e.g. mck metrics experiment table1)",
            file=sys.stderr,
        )
        return 2
    if rest[0] == "metrics":
        print("metrics: cannot nest the metrics command", file=sys.stderr)
        return 2
    rc = main(rest)
    registry = MetricsRegistry.default()
    fmt = args.format or ("prom" if args.prometheus else "json")
    if fmt == "prom":
        print(registry.to_prometheus(), end="")
    else:
        print(registry.to_json())
    return rc


def _cmd_explain(args) -> int:
    import json

    from .datasets.queries import generate_queries
    from .exceptions import QueryRejected
    from .observability.explain import render_explain
    from .observability.flight import FlightRecorder
    from .observability.tracer import Tracer
    from .serving import QueryService
    from .serving.stats import MetricsRegistry

    if args.repeat < 1:
        print("explain: --repeat must be >= 1", file=sys.stderr)
        return 2
    if args.dataset:
        dataset = load_jsonl(args.dataset)
    else:
        maker = {"NY": make_ny_like, "LA": make_la_like, "TW": make_tw_like}[
            args.preset
        ]
        dataset = maker(scale=args.scale, seed=args.seed)

    keywords = list(args.keywords)
    if not keywords:
        workload = generate_queries(dataset, m=args.m, count=1, seed=args.seed)
        keywords = list(workload[0].keywords)
        print(f"auto-generated query: {', '.join(keywords)}", file=sys.stderr)

    source = dataset
    engine = None
    if args.live:
        from .live import LiveMCKEngine

        engine = LiveMCKEngine.from_dataset(dataset)
        source = engine

    tracer = Tracer()
    flight = FlightRecorder(boring_keep_rate=1.0)
    reports = []
    try:
        with QueryService(
            source,
            metrics=MetricsRegistry(),
            tracer=tracer,
            flight=flight,
        ) as service:
            for run in range(args.repeat):
                try:
                    result = service.query(
                        keywords,
                        algorithm=args.algorithm,
                        epsilon=args.epsilon,
                        timeout=args.timeout,
                        explain=True,
                    )
                except QueryRejected as exc:
                    print(f"explain: rejected ({exc})", file=sys.stderr)
                    return 1
                if result.explain is None:
                    print("explain: no report produced", file=sys.stderr)
                    return 1
                reports.append(result.explain)
    finally:
        if engine is not None:
            engine.close()

    if args.json:
        payload = reports[0] if len(reports) == 1 else reports
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for run, report in enumerate(reports, start=1):
            if len(reports) > 1:
                print(f"--- run {run}/{len(reports)} ---")
            print(render_explain(report))
    return 0


def _cmd_stats(args) -> int:
    dataset = load_jsonl(args.dataset)
    rows = [
        (s.name, s.n_objects, s.unique_words, s.total_words, round(s.words_per_object, 2))
        for s in table1_stats([dataset])
    ]
    print(
        render_rows(
            "Dataset statistics",
            ["Dataset", "Objects", "Unique words", "Total words", "Words/object"],
            rows,
        )
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
