"""Convex hull via Andrew's monotone chain.

The hull feeds the rotating-calipers diameter routine used on large groups
(the group diameter of Definition 1 is attained by a pair of hull vertices).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

__all__ = ["convex_hull", "cross"]


def cross(o: Sequence[float], a: Sequence[float], b: Sequence[float]) -> float:
    """Z-component of the cross product ``(a - o) x (b - o)``."""
    return (a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0])


def convex_hull(points: Iterable[Sequence[float]]) -> List[Tuple[float, float]]:
    """Convex hull in counter-clockwise order, collinear points dropped.

    Degenerate inputs are handled gracefully: a single point yields a
    one-element hull, two distinct points a two-element hull, and fully
    collinear input the two extreme points.
    """
    pts = sorted(set((float(p[0]), float(p[1])) for p in points))
    if len(pts) <= 2:
        return pts

    lower: List[Tuple[float, float]] = []
    for p in pts:
        while len(lower) >= 2 and cross(lower[-2], lower[-1], p) <= 0:
            lower.pop()
        lower.append(p)

    upper: List[Tuple[float, float]] = []
    for p in reversed(pts):
        while len(upper) >= 2 and cross(upper[-2], upper[-1], p) <= 0:
            upper.pop()
        upper.append(p)

    hull = lower[:-1] + upper[:-1]
    if not hull:  # all points collinear: keep the two extremes
        return [pts[0], pts[-1]]
    return hull
