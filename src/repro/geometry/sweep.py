"""Angular-interval algebra backing Procedure circleScan (paper §4.3.2).

Fix a pole ``o`` and a circle of diameter ``D`` whose boundary passes
through ``o``.  As the circle rotates around ``o``, its centre moves on a
circle of radius ``D/2`` about ``o``; parameterise the position by the polar
angle ``theta`` of the centre.  An object ``u`` at distance ``d <= D`` from
``o`` lies inside the rotating (closed) disc exactly when

    cos(theta - phi(u)) >= d / D,

i.e. when ``theta`` is within ``beta = arccos(d / D)`` of ``phi(u)``, the
polar angle of ``u`` around ``o``.  The paper's *outside-in* angle is the
interval start and the *inside-out* angle the interval end (its Figure 5).

This module computes those intervals and expands them into sorted sweep
events; the keyword bookkeeping on top of the events lives in
:mod:`repro.core.circlescan`.
"""

from __future__ import annotations

import math
from typing import List, NamedTuple, Optional, Sequence, Tuple

__all__ = [
    "TWO_PI",
    "coverage_interval",
    "SweepEvent",
    "build_events",
    "angle_in_interval",
]

TWO_PI = 2.0 * math.pi


def coverage_interval(
    pole: Sequence[float],
    diameter: float,
    p: Sequence[float],
    eps: float = 1e-12,
) -> Optional[Tuple[float, float]]:
    """Angular interval of circle-centre angles for which ``p`` is enclosed.

    Returns ``(enter, exit)`` angles in ``[0, 2*pi)`` with the convention
    that the interval runs counter-clockwise from ``enter`` to ``exit``
    (wrapping across 0 when ``enter > exit``), or ``None`` when ``p`` is
    farther than ``diameter`` from the pole and can never be enclosed.

    A point coincident with the pole is always enclosed, encoded as the full
    interval ``(0.0, 2*pi)``.
    """
    dx = p[0] - pole[0]
    dy = p[1] - pole[1]
    d = math.hypot(dx, dy)
    if d > diameter + eps:
        return None
    if d <= eps:
        return (0.0, TWO_PI)
    ratio = d / diameter
    if ratio > 1.0:
        ratio = 1.0
    beta = math.acos(ratio)
    phi = math.atan2(dy, dx)
    enter = (phi - beta) % TWO_PI
    exit_ = (phi + beta) % TWO_PI
    return (enter, exit_)


class SweepEvent(NamedTuple):
    """One boundary crossing in the circular sweep.

    ``is_enter`` is True when the object enters the disc at ``angle`` as
    ``theta`` increases.  ``payload`` carries the caller's object handle.
    """

    angle: float
    is_enter: bool
    payload: object


def build_events(
    intervals: Sequence[Tuple[float, float, object]],
) -> Tuple[List[SweepEvent], List[object]]:
    """Expand ``(enter, exit, payload)`` intervals into sorted sweep events.

    Returns ``(events, initially_inside)`` where ``initially_inside`` lists
    the payloads whose interval contains angle ``0.0`` — the sweep starts
    there.  Full intervals (``exit - enter >= 2*pi``) are always-inside and
    never emit events.

    Exit events sort before enter events at the same angle so that a
    zero-width tangency does not momentarily double-count an object.
    """
    events: List[SweepEvent] = []
    initially_inside: List[object] = []
    for enter, exit_, payload in intervals:
        if exit_ - enter >= TWO_PI - 1e-15:
            initially_inside.append(payload)
            continue
        wraps = enter > exit_
        if wraps or enter == 0.0:
            initially_inside.append(payload)
        events.append(SweepEvent(enter, True, payload))
        events.append(SweepEvent(exit_, False, payload))
    # Sort by angle; exits first on ties (is_enter False < True).
    events.sort(key=lambda e: (e.angle, e.is_enter))
    return events, initially_inside


def angle_in_interval(theta: float, enter: float, exit_: float) -> bool:
    """True when ``theta`` lies in the (possibly wrapping) interval."""
    theta %= TWO_PI
    if exit_ - enter >= TWO_PI - 1e-15:
        return True
    if enter <= exit_:
        return enter <= theta <= exit_
    return theta >= enter or theta <= exit_
