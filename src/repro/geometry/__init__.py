"""Computational-geometry substrate for the mCK reproduction.

Everything the paper's proofs lean on lives here: distance kernels, circles
through two/three points (Theorem 3), the minimum covering circle
(Definition 4), group diameters (Definition 1), and the angular-interval
algebra behind the rotating-circle sweep of Procedure circleScan.
"""

from .circle import EPS, Circle, circle_from_three, circle_from_two
from .elzinga_hearn import minimum_covering_circle_eh
from .diameter import diameter_bruteforce, diameter_calipers, group_diameter
from .hull import convex_hull
from .mcc import minimum_covering_circle, minimum_covering_circle_naive
from .point import (
    Point,
    coords_array,
    dist,
    dist_many,
    dist_sq,
    dist_sq_many,
    midpoint,
    polar_angle,
)
from .sweep import TWO_PI, SweepEvent, angle_in_interval, build_events, coverage_interval

__all__ = [
    "EPS",
    "Circle",
    "circle_from_two",
    "circle_from_three",
    "group_diameter",
    "diameter_bruteforce",
    "diameter_calipers",
    "convex_hull",
    "minimum_covering_circle",
    "minimum_covering_circle_eh",
    "minimum_covering_circle_naive",
    "Point",
    "dist",
    "dist_sq",
    "dist_many",
    "dist_sq_many",
    "midpoint",
    "polar_angle",
    "coords_array",
    "TWO_PI",
    "SweepEvent",
    "build_events",
    "coverage_interval",
    "angle_in_interval",
]
