"""2-D points and distance kernels.

Points are plain ``(x, y)`` float tuples throughout the hot paths of the
library — tuples are the cheapest Python object with value semantics, and
every geometric routine in this package accepts them.  The :class:`Point`
named-tuple subclass adds arithmetic convenience for user-facing code
without changing the runtime representation.

Batch kernels operating on numpy arrays live here too so that callers have
one module to import for all distance computations.
"""

from __future__ import annotations

import math
from typing import Iterable, NamedTuple, Sequence

import numpy as np

__all__ = [
    "Point",
    "dist",
    "dist_sq",
    "dist_many",
    "dist_sq_many",
    "midpoint",
    "polar_angle",
    "coords_array",
]


class Point(NamedTuple):
    """An immutable 2-D point.

    Being a ``NamedTuple`` it is interchangeable with a plain ``(x, y)``
    tuple everywhere in the library, while offering ``.x``/``.y`` access and
    vector arithmetic for readability in examples and tests.
    """

    x: float
    y: float

    def __add__(self, other) -> "Point":  # type: ignore[override]
        return Point(self.x + other[0], self.y + other[1])

    def __sub__(self, other) -> "Point":
        return Point(self.x - other[0], self.y - other[1])

    def scaled(self, factor: float) -> "Point":
        """Return this point scaled about the origin by ``factor``."""
        return Point(self.x * factor, self.y * factor)

    def distance_to(self, other: Sequence[float]) -> float:
        """Euclidean distance to ``other``."""
        return dist(self, other)


def dist(a: Sequence[float], b: Sequence[float]) -> float:
    """Euclidean distance between points ``a`` and ``b``.

    ``math.hypot`` is both faster and more numerically robust than the naive
    ``sqrt(dx*dx + dy*dy)`` for extreme coordinate magnitudes.
    """
    return math.hypot(a[0] - b[0], a[1] - b[1])


def dist_sq(a: Sequence[float], b: Sequence[float]) -> float:
    """Squared Euclidean distance — avoids the sqrt for pure comparisons."""
    dx = a[0] - b[0]
    dy = a[1] - b[1]
    return dx * dx + dy * dy


def dist_many(origin: Sequence[float], coords: np.ndarray) -> np.ndarray:
    """Distances from ``origin`` to every row of an ``(n, 2)`` array."""
    delta = coords - np.asarray(origin, dtype=np.float64)
    return np.hypot(delta[:, 0], delta[:, 1])


def dist_sq_many(origin: Sequence[float], coords: np.ndarray) -> np.ndarray:
    """Squared distances from ``origin`` to every row of an ``(n, 2)`` array."""
    delta = coords - np.asarray(origin, dtype=np.float64)
    return delta[:, 0] * delta[:, 0] + delta[:, 1] * delta[:, 1]


def midpoint(a: Sequence[float], b: Sequence[float]) -> Point:
    """Midpoint of the segment ``ab``."""
    return Point((a[0] + b[0]) / 2.0, (a[1] + b[1]) / 2.0)


def polar_angle(pole: Sequence[float], p: Sequence[float]) -> float:
    """Polar angle of ``p`` in a coordinate system centred at ``pole``.

    Returned in radians within ``[0, 2*pi)`` so angles sort naturally for
    the circular sweep in :mod:`repro.core.circlescan`.
    """
    angle = math.atan2(p[1] - pole[1], p[0] - pole[0])
    if angle < 0.0:
        angle += 2.0 * math.pi
    return angle


def coords_array(points: Iterable[Sequence[float]]) -> np.ndarray:
    """Pack an iterable of points into an ``(n, 2)`` float64 array."""
    arr = np.asarray(list(points), dtype=np.float64)
    if arr.size == 0:
        return arr.reshape(0, 2)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError(f"expected (n, 2) coordinates, got shape {arr.shape}")
    return arr
