"""Circles and the classic two/three-point circumscribed-circle constructions.

Theorem 3 of the paper (Elzinga & Hearn) states that a minimum covering
circle is determined by at most three boundary points; Procedure findOSKEC
therefore enumerates circles through two and three objects.  This module
provides those constructions along with containment predicates that use a
small epsilon slack so that boundary points count as enclosed (closed-disc
semantics, which the proofs assume).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..exceptions import GeometryError
from .point import Point, dist, dist_sq, midpoint

__all__ = ["Circle", "circle_from_two", "circle_from_three", "EPS"]

#: Absolute slack used in all containment / comparison predicates.  The
#: datasets live in UTM metres at city scale (~1e5), for which 1e-7 relative
#: corresponds to ~1e-2 m; we use an absolute epsilon well below any
#: inter-object distance that matters.
EPS = 1e-9


@dataclass(frozen=True, slots=True)
class Circle:
    """A circle given by centre and radius.

    The paper reasons in terms of circle *diameters* (``ø``); the
    :attr:`diameter` property mirrors that notation.
    """

    cx: float
    cy: float
    r: float

    @property
    def center(self) -> Point:
        return Point(self.cx, self.cy)

    @property
    def diameter(self) -> float:
        return 2.0 * self.r

    def contains(self, p: Sequence[float], eps: float = EPS) -> bool:
        """Closed-disc containment with ``eps`` slack on the radius."""
        return dist(self.center, p) <= self.r + eps

    def contains_many(self, coords: np.ndarray, eps: float = EPS) -> np.ndarray:
        """Vectorised closed-disc containment over an ``(n, 2)`` array."""
        dx = coords[:, 0] - self.cx
        dy = coords[:, 1] - self.cy
        limit = (self.r + eps) * (self.r + eps)
        return dx * dx + dy * dy <= limit

    def on_boundary(self, p: Sequence[float], eps: float = 1e-6) -> bool:
        """True when ``p`` lies on the circle boundary within ``eps``."""
        return abs(dist(self.center, p) - self.r) <= eps

    def scaled(self, factor: float) -> "Circle":
        """Concentric circle with the radius scaled by ``factor``."""
        return Circle(self.cx, self.cy, self.r * factor)


def circle_from_two(a: Sequence[float], b: Sequence[float]) -> Circle:
    """The circle having segment ``ab`` as a diameter (Theorem 3, 2-point case)."""
    m = midpoint(a, b)
    return Circle(m.x, m.y, dist(a, b) / 2.0)


def circle_from_three(
    a: Sequence[float], b: Sequence[float], c: Sequence[float]
) -> Circle:
    """Circumscribed circle of triangle ``abc``.

    Raises :class:`GeometryError` when the points are (numerically)
    collinear, in which case no finite circumcircle exists and callers fall
    back to the best two-point circle.
    """
    ax, ay = a[0], a[1]
    bx, by = b[0], b[1]
    cx, cy = c[0], c[1]
    d = 2.0 * (ax * (by - cy) + bx * (cy - ay) + cx * (ay - by))
    if abs(d) < 1e-12:
        raise GeometryError("collinear points have no circumcircle")
    a_sq = ax * ax + ay * ay
    b_sq = bx * bx + by * by
    c_sq = cx * cx + cy * cy
    ux = (a_sq * (by - cy) + b_sq * (cy - ay) + c_sq * (ay - by)) / d
    uy = (a_sq * (cx - bx) + b_sq * (ax - cx) + c_sq * (bx - ax)) / d
    r = math.sqrt(dist_sq((ux, uy), a))
    return Circle(ux, uy, r)
