"""Group diameter (Definition 1): the maximum pairwise distance in a set.

Small groups (a few objects per query keyword) use the direct quadratic
scan; larger point sets switch to rotating calipers over the convex hull,
which is O(n log n).  Both entry points accept any iterable of ``(x, y)``
pairs, so they work on raw coordinates and on :class:`~repro.core.objects.GeoObject`
locations alike.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from .hull import convex_hull
from .point import dist, dist_sq

__all__ = [
    "group_diameter",
    "diameter_bruteforce",
    "diameter_calipers",
    "diameter_batch",
]

#: Below this size the quadratic scan beats hull construction in practice.
_CALIPERS_THRESHOLD = 24


def group_diameter(points: Iterable[Sequence[float]]) -> float:
    """Diameter of a point set; 0.0 for the empty set or a single point."""
    pts = [(float(p[0]), float(p[1])) for p in points]
    if len(pts) < 2:
        return 0.0
    if len(pts) <= _CALIPERS_THRESHOLD:
        return diameter_bruteforce(pts)
    return diameter_calipers(pts)


def diameter_bruteforce(points: Sequence[Sequence[float]]) -> float:
    """O(n^2) diameter; reference implementation and fast path for small n."""
    best_sq = 0.0
    n = len(points)
    for i in range(n):
        pi = points[i]
        for j in range(i + 1, n):
            d_sq = dist_sq(pi, points[j])
            if d_sq > best_sq:
                best_sq = d_sq
    return best_sq**0.5


def diameter_calipers(points: Sequence[Sequence[float]]) -> float:
    """Rotating-calipers diameter over the convex hull.

    The farthest pair of a planar set is a pair of antipodal hull vertices;
    the calipers walk visits each antipodal pair once.

    The walk's advance rule compares triangle areas, which assumes the
    hull is non-degenerate.  Near-collinear input can survive hull
    construction as a sliver polygon whose areas are all rounding noise —
    there the caliper stalls and can miss the extreme pair entirely — so
    slivers fall back to the exact pairwise scan over the hull vertices.
    """
    hull = convex_hull(points)
    n = len(hull)
    if n == 1:
        return 0.0
    if n == 2:
        return dist(hull[0], hull[1])

    shoelace = 0.0
    scale = 0.0
    for i in range(n):
        ax, ay = hull[i]
        bx, by = hull[(i + 1) % n]
        shoelace += ax * by - bx * ay
        scale = max(scale, abs(ax), abs(ay))
    if abs(shoelace) <= 1e-12 * scale * scale:
        return diameter_bruteforce(hull)

    best_sq = 0.0
    k = 1
    for i in range(n):
        j = (i + 1) % n
        # Advance the caliper while the triangle area keeps growing.
        while True:
            nxt = (k + 1) % n
            area_now = _twice_area(hull[i], hull[j], hull[k])
            area_next = _twice_area(hull[i], hull[j], hull[nxt])
            if area_next > area_now:
                k = nxt
            else:
                break
        best_sq = max(best_sq, dist_sq(hull[i], hull[k]), dist_sq(hull[j], hull[k]))
    return best_sq**0.5


#: Above this size the full (n, n) broadcast is chunked to bound memory.
_BATCH_CHUNK = 2048


def diameter_batch(pts: np.ndarray) -> float:
    """Vectorised pairwise diameter over an ``(n, 2)`` float64 array.

    Every pairwise squared distance is the same IEEE expression the scalar
    scan evaluates — ``(xi - xj)**2 + (yi - yj)**2`` in float64 — so the
    result is bit-identical to :func:`diameter_bruteforce` on the same
    rows (negation before squaring is exact, and ``max`` over the same
    float set is order-free).
    """
    pts = np.asarray(pts, dtype=np.float64)
    n = pts.shape[0]
    if n < 2:
        return 0.0
    xs = pts[:, 0]
    ys = pts[:, 1]
    best = 0.0
    for start in range(0, n, _BATCH_CHUNK):
        stop = min(start + _BATCH_CHUNK, n)
        dx = xs[start:stop, None] - xs[None, :]
        dy = ys[start:stop, None] - ys[None, :]
        cand = float(np.max(dx * dx + dy * dy))
        if cand > best:
            best = cand
    return best**0.5


def _twice_area(a: Sequence[float], b: Sequence[float], c: Sequence[float]) -> float:
    return abs(
        (b[0] - a[0]) * (c[1] - a[1]) - (b[1] - a[1]) * (c[0] - a[0])
    )
