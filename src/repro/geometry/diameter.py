"""Group diameter (Definition 1): the maximum pairwise distance in a set.

Small groups (a few objects per query keyword) use the direct quadratic
scan; larger point sets switch to rotating calipers over the convex hull,
which is O(n log n).  Both entry points accept any iterable of ``(x, y)``
pairs, so they work on raw coordinates and on :class:`~repro.core.objects.GeoObject`
locations alike.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .hull import convex_hull
from .point import dist, dist_sq

__all__ = ["group_diameter", "diameter_bruteforce", "diameter_calipers"]

#: Below this size the quadratic scan beats hull construction in practice.
_CALIPERS_THRESHOLD = 24


def group_diameter(points: Iterable[Sequence[float]]) -> float:
    """Diameter of a point set; 0.0 for the empty set or a single point."""
    pts = [(float(p[0]), float(p[1])) for p in points]
    if len(pts) < 2:
        return 0.0
    if len(pts) <= _CALIPERS_THRESHOLD:
        return diameter_bruteforce(pts)
    return diameter_calipers(pts)


def diameter_bruteforce(points: Sequence[Sequence[float]]) -> float:
    """O(n^2) diameter; reference implementation and fast path for small n."""
    best_sq = 0.0
    n = len(points)
    for i in range(n):
        pi = points[i]
        for j in range(i + 1, n):
            d_sq = dist_sq(pi, points[j])
            if d_sq > best_sq:
                best_sq = d_sq
    return best_sq**0.5


def diameter_calipers(points: Sequence[Sequence[float]]) -> float:
    """Rotating-calipers diameter over the convex hull.

    The farthest pair of a planar set is a pair of antipodal hull vertices;
    the calipers walk visits each antipodal pair once.
    """
    hull = convex_hull(points)
    n = len(hull)
    if n == 1:
        return 0.0
    if n == 2:
        return dist(hull[0], hull[1])

    best_sq = 0.0
    k = 1
    for i in range(n):
        j = (i + 1) % n
        # Advance the caliper while the triangle area keeps growing.
        while True:
            nxt = (k + 1) % n
            area_now = _twice_area(hull[i], hull[j], hull[k])
            area_next = _twice_area(hull[i], hull[j], hull[nxt])
            if area_next > area_now:
                k = nxt
            else:
                break
        best_sq = max(best_sq, dist_sq(hull[i], hull[k]), dist_sq(hull[j], hull[k]))
    return best_sq**0.5


def _twice_area(a: Sequence[float], b: Sequence[float], c: Sequence[float]) -> float:
    return abs(
        (b[0] - a[0]) * (c[1] - a[1]) - (b[1] - a[1]) * (c[0] - a[0])
    )
