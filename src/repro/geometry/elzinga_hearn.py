"""Elzinga–Hearn minimum covering circle (the paper's citation [11]).

The paper grounds Theorem 3 in Elzinga & Hearn's geometric
characterisation; this module implements their classic dual-simplex-style
algorithm as an independent alternative to Welzl's
(:mod:`repro.geometry.mcc`).  Having two implementations built from
different principles lets the test suite cross-check the primitive every
SKEC-family proof rests on.

Algorithm sketch (Elzinga & Hearn 1972):

1. start with the circle on any two points as a diameter;
2. if every point is enclosed, stop;
3. otherwise pick an outside point and form the smallest circle enclosing
   the current *defining set* plus that point (two- or three-point
   subproblem, dropping points that stop being extreme);
4. repeat — the radius strictly grows, so termination is guaranteed.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from ..exceptions import GeometryError
from .circle import Circle, circle_from_three, circle_from_two
from .point import dist

__all__ = ["minimum_covering_circle_eh"]

_EPS = 1e-9


def minimum_covering_circle_eh(points: Iterable[Sequence[float]]) -> Circle:
    """Smallest enclosing circle via the Elzinga–Hearn procedure."""
    pts = [(float(p[0]), float(p[1])) for p in points]
    if not pts:
        raise ValueError("minimum covering circle of an empty point set")
    pts = list(dict.fromkeys(pts))
    if len(pts) == 1:
        return Circle(pts[0][0], pts[0][1], 0.0)

    defining: List[Tuple[float, float]] = [pts[0], pts[1]]
    circle = circle_from_two(pts[0], pts[1])

    # Each iteration strictly grows the radius; 4n iterations is a safe
    # engineering bound far above the theoretical requirement.
    for _ in range(4 * len(pts) + 8):
        outside = _farthest_outside(pts, circle)
        if outside is None:
            return circle
        defining, circle = _enlarge(defining, outside)
    raise GeometryError("Elzinga-Hearn failed to converge")  # pragma: no cover


def _farthest_outside(
    pts: Sequence[Tuple[float, float]], circle: Circle
) -> Optional[Tuple[float, float]]:
    worst = None
    worst_excess = _EPS * (1.0 + circle.r)
    for p in pts:
        excess = dist(circle.center, p) - circle.r
        if excess > worst_excess:
            worst = p
            worst_excess = excess
    return worst


def _enlarge(
    defining: List[Tuple[float, float]], p: Tuple[float, float]
) -> Tuple[List[Tuple[float, float]], Circle]:
    """Smallest circle enclosing ``defining + [p]`` with p on the boundary,
    keeping only the points that define it."""
    support = list(dict.fromkeys(defining + [p]))
    best: Optional[Tuple[List[Tuple[float, float]], Circle]] = None

    # Two-point candidates through p.
    for q in support:
        if q == p:
            continue
        circle = circle_from_two(p, q)
        if _encloses(support, circle):
            if best is None or circle.r < best[1].r:
                best = ([p, q], circle)
    # Three-point candidates through p.
    n = len(support)
    for i in range(n):
        for j in range(i + 1, n):
            a, b = support[i], support[j]
            if p in (a, b):
                continue
            try:
                circle = circle_from_three(p, a, b)
            except GeometryError:
                continue
            if _encloses(support, circle):
                if best is None or circle.r < best[1].r:
                    best = ([p, a, b], circle)

    if best is None:  # all support points coincide with p
        return [p], Circle(p[0], p[1], 0.0)
    return best


def _encloses(pts: Sequence[Tuple[float, float]], circle: Circle) -> bool:
    limit = circle.r + _EPS * (1.0 + circle.r)
    return all(dist(circle.center, p) <= limit for p in pts)
