"""Minimum covering circle (smallest enclosing circle).

The paper's Definition 4 and Theorems 3–4 rest on the classic minimum
covering circle problem (Elzinga & Hearn 1972; Megiddo 1982).  We implement
Welzl's move-to-front algorithm, which runs in expected linear time, plus a
quadratic reference implementation used by the tests to cross-check it.
"""

from __future__ import annotations

import random
from typing import Iterable, Optional, Sequence

from ..exceptions import GeometryError
from .circle import EPS, Circle, circle_from_three, circle_from_two
from .point import dist

__all__ = ["minimum_covering_circle", "minimum_covering_circle_naive"]

#: Deterministic shuffling source.  Welzl's algorithm needs a random
#: permutation for its expected-linear bound; a fixed seed keeps library
#: output reproducible while preserving the average-case behaviour on
#: adversarial input orders.
_SHUFFLER = random.Random(0x5EED)


def minimum_covering_circle(points: Iterable[Sequence[float]]) -> Circle:
    """Smallest circle enclosing ``points`` (Welzl's algorithm, iterative MTF).

    Returns a zero-radius circle for a single point.  Raises ``ValueError``
    on empty input.
    """
    pts = [(float(p[0]), float(p[1])) for p in points]
    if not pts:
        raise ValueError("minimum covering circle of an empty point set")
    # Deduplicate: repeated points are common in geo data (same POI coords)
    # and inflate the recursion for no benefit.
    pts = list(dict.fromkeys(pts))
    if len(pts) == 1:
        return Circle(pts[0][0], pts[0][1], 0.0)
    _SHUFFLER.shuffle(pts)

    circle: Optional[Circle] = None
    for i, p in enumerate(pts):
        if circle is not None and circle.contains(p):
            continue
        circle = _mcc_with_one_boundary(pts[: i + 1], p)
    assert circle is not None
    return circle


def _mcc_with_one_boundary(pts: Sequence[tuple], p: tuple) -> Circle:
    """Smallest circle over ``pts`` with ``p`` known to be on the boundary."""
    circle = Circle(p[0], p[1], 0.0)
    for i, q in enumerate(pts):
        if circle.contains(q):
            continue
        if circle.r == 0.0:
            circle = circle_from_two(p, q)
        else:
            circle = _mcc_with_two_boundary(pts[: i + 1], p, q)
    return circle


def _mcc_with_two_boundary(pts: Sequence[tuple], p: tuple, q: tuple) -> Circle:
    """Smallest circle over ``pts`` with ``p`` and ``q`` on the boundary."""
    circ = circle_from_two(p, q)
    left: Optional[Circle] = None
    right: Optional[Circle] = None

    px, py = p
    qx, qy = q
    for r_pt in pts:
        if circ.contains(r_pt):
            continue
        cross = (qx - px) * (r_pt[1] - py) - (qy - py) * (r_pt[0] - px)
        try:
            c = circle_from_three(p, q, r_pt)
        except GeometryError:
            continue
        if cross > 0.0:
            if left is None or _center_side(p, q, c) > _center_side(p, q, left):
                left = c
        elif cross < 0.0:
            if right is None or _center_side(p, q, c) < _center_side(p, q, right):
                right = c

    if left is None and right is None:
        return circ
    if left is None:
        assert right is not None
        return right
    if right is None:
        return left
    return left if left.r <= right.r else right


def _center_side(p: tuple, q: tuple, c: Circle) -> float:
    """Signed side of circle centre ``c`` relative to directed line ``pq``."""
    return (q[0] - p[0]) * (c.cy - p[1]) - (q[1] - p[1]) * (c.cx - p[0])


def minimum_covering_circle_naive(points: Iterable[Sequence[float]]) -> Circle:
    """O(n^4) reference: try all 2- and 3-point circles, keep the smallest
    that encloses everything.  Only used for cross-checking in tests."""
    pts = [(float(p[0]), float(p[1])) for p in points]
    if not pts:
        raise ValueError("minimum covering circle of an empty point set")
    pts = list(dict.fromkeys(pts))
    if len(pts) == 1:
        return Circle(pts[0][0], pts[0][1], 0.0)

    best: Optional[Circle] = None
    n = len(pts)
    for i in range(n):
        for j in range(i + 1, n):
            candidate = circle_from_two(pts[i], pts[j])
            best = _keep_if_enclosing(candidate, pts, best)
            for k in range(j + 1, n):
                try:
                    candidate = circle_from_three(pts[i], pts[j], pts[k])
                except GeometryError:
                    continue
                best = _keep_if_enclosing(candidate, pts, best)
    if best is None:  # all points identical after float coercion
        return Circle(pts[0][0], pts[0][1], 0.0)
    return best


def _keep_if_enclosing(
    candidate: Circle, pts: Sequence[tuple], best: Optional[Circle]
) -> Optional[Circle]:
    if best is not None and candidate.r >= best.r:
        return best
    # Slightly looser epsilon: the naive constructor compounds more float
    # error than Welzl's incremental one.
    if all(dist(candidate.center, p) <= candidate.r + 1e-7 for p in pts):
        return candidate
    return best
