"""Persistence of experiment output: FigureResult <-> JSON.

Lets long benchmark runs be archived and re-rendered (EXPERIMENTS.md is
generated from saved runs) and lets CI diff reproduced series between
versions.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import List, Union

from ..exceptions import ExperimentError
from .report import FigureResult

__all__ = ["save_figures", "load_figures", "figure_to_dict", "figure_from_dict"]

_FORMAT = "repro-figures-v1"


def figure_to_dict(figure: FigureResult) -> dict:
    """JSON-safe dict (NaN encoded as None, which JSON supports)."""
    return {
        "figure_id": figure.figure_id,
        "title": figure.title,
        "x_label": figure.x_label,
        "x_values": list(figure.x_values),
        "series": {
            label: [None if isinstance(v, float) and math.isnan(v) else v for v in values]
            for label, values in figure.series.items()
        },
        "notes": list(figure.notes),
    }


def figure_from_dict(payload: dict) -> FigureResult:
    try:
        figure = FigureResult(
            figure_id=str(payload["figure_id"]),
            title=str(payload["title"]),
            x_label=str(payload["x_label"]),
            x_values=list(payload["x_values"]),
        )
        for label, values in payload.get("series", {}).items():
            figure.add_series(
                label,
                [math.nan if v is None else float(v) for v in values],
            )
        figure.notes = [str(n) for n in payload.get("notes", [])]
    except (KeyError, TypeError, ValueError) as exc:
        raise ExperimentError(f"malformed figure payload: {exc}") from exc
    return figure


def save_figures(figures: List[FigureResult], path: Union[str, Path]) -> None:
    """Write a list of figures to one JSON document."""
    document = {
        "format": _FORMAT,
        "figures": [figure_to_dict(f) for f in figures],
    }
    Path(path).write_text(json.dumps(document, indent=2), encoding="utf-8")


def load_figures(path: Union[str, Path]) -> List[FigureResult]:
    """Read figures written by :func:`save_figures`."""
    try:
        document = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ExperimentError(f"{path}: invalid JSON ({exc})") from exc
    if not isinstance(document, dict) or document.get("format") != _FORMAT:
        raise ExperimentError(f"{path}: not a {_FORMAT} document")
    return [figure_from_dict(p) for p in document.get("figures", [])]
