"""Rendering of experiment output as paper-style series and tables."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

__all__ = ["FigureResult", "render_series_table", "render_rows"]


@dataclass
class FigureResult:
    """The data behind one reproduced figure (or table).

    ``series`` maps a series label (e.g. ``"EXACT runtime"``) to one value
    per entry of ``x_values``; ``NaN`` marks missing points (e.g. all
    queries timed out).
    """

    figure_id: str
    title: str
    x_label: str
    x_values: List
    series: Dict[str, List[float]] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def add_series(self, label: str, values: Sequence[float]) -> None:
        """Attach one series (length must match x_values)."""
        if len(values) != len(self.x_values):
            raise ValueError(
                f"series {label!r} has {len(values)} values for "
                f"{len(self.x_values)} x positions"
            )
        self.series[label] = list(values)

    def render(self) -> str:
        """Render as an ASCII series table."""
        return render_series_table(self)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def render_series_table(figure: FigureResult, width: int = 12) -> str:
    """ASCII table: x values across, one row per series."""
    lines = [f"== {figure.figure_id}: {figure.title} =="]
    header = _pad(figure.x_label, 24) + "".join(
        _pad(_fmt(x), width) for x in figure.x_values
    )
    lines.append(header)
    lines.append("-" * len(header))
    for label, values in figure.series.items():
        row = _pad(label, 24) + "".join(_pad(_fmt(v), width) for v in values)
        lines.append(row)
    for note in figure.notes:
        lines.append(f"  note: {note}")
    return "\n".join(lines)


def render_rows(title: str, header: Sequence[str], rows: Sequence[Sequence]) -> str:
    """ASCII table with explicit columns (used for Table 1)."""
    widths = [len(str(h)) for h in header]
    text_rows = [[_fmt(v) for v in row] for row in rows]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [f"== {title} =="]
    lines.append("  ".join(str(h).ljust(widths[i]) for i, h in enumerate(header)))
    lines.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
    for row in text_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        if math.isnan(value):
            return "-"
        if value == 0.0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000 or magnitude < 0.001:
            return f"{value:.3g}"
        if magnitude >= 1:
            return f"{value:.4g}"
        return f"{value:.4f}"
    return str(value)


def _pad(text: str, width: int) -> str:
    return str(text).ljust(width)
