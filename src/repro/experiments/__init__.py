"""Experiment harness: runners, metrics and per-figure reproductions."""

from .figures import (
    dataset_by_name,
    fig7_vary_epsilon,
    fig8_vary_keywords,
    fig9_skec_vs_skecaplus,
    fig10_vary_diameter,
    fig11_vary_timeout,
    fig12_vary_frequency,
    fig13_scalability,
    fig14_vary_epsilon_ny_tw,
    table1_datasets,
    ext_distributed_scaling,
)
from .persistence import figure_from_dict, figure_to_dict, load_figures, save_figures
from .metrics import AlgorithmSummary, QueryMeasurement, summarize
from .report import FigureResult, render_rows, render_series_table
from .runner import ALL_ALGORITHMS, ExperimentRunner

__all__ = [
    "dataset_by_name",
    "fig7_vary_epsilon",
    "fig8_vary_keywords",
    "fig9_skec_vs_skecaplus",
    "fig10_vary_diameter",
    "fig11_vary_timeout",
    "fig12_vary_frequency",
    "fig13_scalability",
    "fig14_vary_epsilon_ny_tw",
    "table1_datasets",
    "ext_distributed_scaling",
    "figure_to_dict",
    "figure_from_dict",
    "save_figures",
    "load_figures",
    "AlgorithmSummary",
    "QueryMeasurement",
    "summarize",
    "FigureResult",
    "render_rows",
    "render_series_table",
    "ALL_ALGORITHMS",
    "ExperimentRunner",
]
