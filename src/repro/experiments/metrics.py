"""Measurement records and aggregation for the experiment harness.

The paper reports three metrics (§6):

* **runtime** — mean seconds per query, over the queries an algorithm
  finished within the timeout threshold;
* **approximation ratio** — mean δ(G)/δ(G_opt) against the exact optimum;
* **success rate** — fraction of queries finished within the threshold
  (§6.2.3's censoring methodology).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

__all__ = ["QueryMeasurement", "AlgorithmSummary", "summarize", "percentile"]


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile (q in [0, 100]); NaN when empty.

    Implemented locally so the metrics layer has no numpy dependency and
    the behaviour is pinned by tests rather than by library versioning.
    """
    if not values:
        return math.nan
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * q / 100.0
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


@dataclass
class QueryMeasurement:
    """One (algorithm, query) sample."""

    algorithm: str
    query_keywords: Sequence[str]
    elapsed_seconds: float
    diameter: float
    success: bool
    #: Optimal diameter for the same query, when a reference was computed.
    optimal_diameter: Optional[float] = None

    @property
    def ratio(self) -> Optional[float]:
        """δ(G)/δ(G_opt); None without a reference or on failure."""
        if not self.success or self.optimal_diameter is None:
            return None
        if self.optimal_diameter <= 0.0:
            return 1.0 if self.diameter <= 1e-12 else math.inf
        return self.diameter / self.optimal_diameter


@dataclass
class AlgorithmSummary:
    """Aggregate of one algorithm over one query set."""

    algorithm: str
    n_queries: int
    n_succeeded: int
    mean_runtime: float
    mean_ratio: Optional[float]
    max_ratio: Optional[float]
    #: Runtime percentiles over succeeded queries (p50, p95); NaN when none.
    p50_runtime: float = math.nan
    p95_runtime: float = math.nan

    @property
    def success_rate(self) -> float:
        return self.n_succeeded / self.n_queries if self.n_queries else 0.0


def summarize(measurements: Sequence[QueryMeasurement]) -> List[AlgorithmSummary]:
    """Aggregate measurements per algorithm (insertion order preserved)."""
    by_algorithm: Dict[str, List[QueryMeasurement]] = {}
    for m in measurements:
        by_algorithm.setdefault(m.algorithm, []).append(m)

    summaries: List[AlgorithmSummary] = []
    for algorithm, samples in by_algorithm.items():
        succeeded = [s for s in samples if s.success]
        ratios = [r for s in succeeded if (r := s.ratio) is not None and math.isfinite(r)]
        runtimes = [s.elapsed_seconds for s in succeeded]
        summaries.append(
            AlgorithmSummary(
                algorithm=algorithm,
                n_queries=len(samples),
                n_succeeded=len(succeeded),
                mean_runtime=(
                    sum(runtimes) / len(runtimes) if runtimes else math.nan
                ),
                mean_ratio=sum(ratios) / len(ratios) if ratios else None,
                max_ratio=max(ratios) if ratios else None,
                p50_runtime=percentile(runtimes, 50.0),
                p95_runtime=percentile(runtimes, 95.0),
            )
        )
    return summaries
