"""Timed execution of algorithm suites over query workloads.

:class:`ExperimentRunner` is the workhorse behind every reproduced figure:
it compiles each query once, runs each requested algorithm under an
optional wall-clock threshold (converting
:class:`~repro.exceptions.AlgorithmTimeout` into a failed sample, exactly
the paper's §6.2.3 censoring), and attaches the exact optimal diameter as
the approximation-ratio reference.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Union

from ..baselines.asgk import asgk, asgka
from ..baselines.brtree_method import brtree_method
from ..baselines.bruteforce import brute_force_optimal
from ..baselines.virbr import virbr
from ..core.common import Deadline, Instrumentation
from ..core.engine import MCKEngine
from ..core.exact import exact
from ..core.gkg import gkg
from ..core.objects import Dataset
from ..core.query import MCKQuery, QueryContext
from ..core.result import Group
from ..core.skec import skec
from ..core.skeca import skeca
from ..core.skecaplus import skeca_plus
from ..exceptions import AlgorithmTimeout, QueryError
from ..observability.logging import correlation_scope, get_logger
from .metrics import QueryMeasurement

__all__ = ["ExperimentRunner", "ALL_ALGORITHMS"]

_log = get_logger("experiments")

#: Every runnable algorithm name, paper methods plus baselines.
ALL_ALGORITHMS = (
    "GKG",
    "SKEC",
    "SKECa",
    "SKECa+",
    "EXACT",
    "VirbR",
    "bR",
    "ASGK",
    "ASGKa",
    "BRUTE",
)


class ExperimentRunner:
    """Run algorithm suites over query sets with timeouts and references."""

    def __init__(
        self,
        dataset: Dataset,
        epsilon: float = 0.01,
        reference_algorithm: str = "EXACT",
        reference_timeout: Optional[float] = None,
        metrics=None,
    ):
        self.dataset = dataset
        self.engine = MCKEngine(dataset)
        self.epsilon = epsilon
        self.reference_algorithm = reference_algorithm
        self.reference_timeout = reference_timeout
        if metrics is None:
            # Shared process-wide registry so figure functions that build
            # their own runners still report through one sink (the
            # benchmark suite and `mck serve-bench` dump it as JSON).
            from ..serving.stats import MetricsRegistry

            metrics = MetricsRegistry.default()
        self.metrics = metrics
        self._dispatch: Dict[str, Callable[[QueryContext, Deadline], Group]] = {
            "GKG": lambda ctx, dl: gkg(ctx, dl),
            "SKEC": lambda ctx, dl: skec(ctx, dl),
            "SKECA": lambda ctx, dl: skeca(ctx, self.epsilon, dl),
            "SKECA+": lambda ctx, dl: skeca_plus(ctx, self.epsilon, dl),
            "EXACT": lambda ctx, dl: exact(ctx, self.epsilon, dl),
            "VIRBR": lambda ctx, dl: virbr(ctx, dl),
            "BR": lambda ctx, dl: brtree_method(ctx, dl),
            "ASGK": lambda ctx, dl: asgk(ctx, dl),
            "ASGKA": lambda ctx, dl: asgka(ctx, dl),
            "BRUTE": lambda ctx, dl: brute_force_optimal(ctx, dl),
        }

    # ------------------------------------------------------------------ #

    def run_suite(
        self,
        algorithms: Sequence[str],
        queries: Iterable,
        timeout: Optional[float] = None,
        with_reference: bool = True,
    ) -> List[QueryMeasurement]:
        """Run every algorithm on every query.

        ``timeout`` may be a scalar applied to all algorithms or a mapping
        from algorithm name to budget.  When ``with_reference`` is set, the
        exact optimum is computed once per query (without counting towards
        any algorithm's runtime) so ratios are available.
        """
        measurements: List[QueryMeasurement] = []
        for query in queries:
            keywords = query.keywords if isinstance(query, MCKQuery) else tuple(query)
            ctx = self.engine.context(keywords)
            optimal = self._reference_diameter(ctx) if with_reference else None
            for algorithm in algorithms:
                budget = self._budget_for(algorithm, timeout)
                measurements.append(
                    self.run_single(ctx, algorithm, budget, optimal)
                )
        return measurements

    def run_single(
        self,
        ctx: QueryContext,
        algorithm: str,
        timeout: Optional[float] = None,
        optimal_diameter: Optional[float] = None,
    ) -> QueryMeasurement:
        """One timed (algorithm, query) sample."""
        runner = self._runner_for(algorithm)
        # Instrumentation without an explicit tracer falls back to the
        # process-global one, so `mck trace` / set_tracer() also cover
        # experiment suites.
        instr = Instrumentation()
        deadline = Deadline(algorithm, timeout, instr)
        with correlation_scope():
            with instr.span(
                "experiment.sample",
                algorithm=algorithm,
                m=len(ctx.query.keywords),
            ):
                started = time.perf_counter()
                try:
                    group = runner(ctx, deadline)
                    elapsed = time.perf_counter() - started
                    instr.merge_group_stats(group.stats)
                    measurement = QueryMeasurement(
                        algorithm=algorithm,
                        query_keywords=ctx.query.keywords,
                        elapsed_seconds=elapsed,
                        diameter=group.diameter,
                        success=True,
                        optimal_diameter=optimal_diameter,
                    )
                except AlgorithmTimeout:
                    elapsed = time.perf_counter() - started
                    measurement = QueryMeasurement(
                        algorithm=algorithm,
                        query_keywords=ctx.query.keywords,
                        elapsed_seconds=elapsed,
                        diameter=float("inf"),
                        success=False,
                        optimal_diameter=optimal_diameter,
                    )
                    _log.warning(
                        "sample.timeout",
                        algorithm=algorithm,
                        keywords=list(ctx.query.keywords),
                        timeout=timeout,
                    )
            _log.debug(
                "sample.done",
                algorithm=algorithm,
                elapsed_seconds=elapsed,
                success=measurement.success,
            )
        self._record_metrics(measurement, instr)
        return measurement

    # ------------------------------------------------------------------ #

    def _record_metrics(self, m: QueryMeasurement, instr: Instrumentation) -> None:
        from ..serving.stats import QueryStats

        self.metrics.record(
            QueryStats(
                keywords=tuple(m.query_keywords),
                algorithm=m.algorithm,
                epsilon=self.epsilon,
                context_seconds=instr.timings.get("context_seconds", 0.0),
                algorithm_seconds=m.elapsed_seconds,
                total_seconds=m.elapsed_seconds,
                success=m.success,
                diameter=m.diameter if m.success else float("nan"),
                counters=dict(instr.counters),
            )
        )

    def _runner_for(self, algorithm: str) -> Callable:
        key = algorithm.strip().upper().replace("-", "").replace("_", "")
        if key == "SKECAPLUS":
            key = "SKECA+"
        try:
            return self._dispatch[key]
        except KeyError:
            raise QueryError(
                f"unknown algorithm {algorithm!r}; pick from {ALL_ALGORITHMS}"
            ) from None

    @staticmethod
    def _budget_for(
        algorithm: str, timeout: Union[None, float, Dict[str, float]]
    ) -> Optional[float]:
        if timeout is None or isinstance(timeout, (int, float)):
            return timeout
        return timeout.get(algorithm)

    def _reference_diameter(self, ctx: QueryContext) -> Optional[float]:
        """Exact optimum for ratio computation, or None when it times out."""
        sample = self.run_single(
            ctx, self.reference_algorithm, self.reference_timeout
        )
        return sample.diameter if sample.success else None
