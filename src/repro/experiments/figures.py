"""One entry point per table/figure of the paper's evaluation (§6).

Every function regenerates the corresponding figure's data series on
synthetic datasets (see DESIGN.md §3 for the substitution rationale) and
returns :class:`~repro.experiments.report.FigureResult` objects whose rows
match the paper's: runtimes per algorithm, approximation ratios, success
rates.  Sizes default to laptop-scale (pure Python is orders of magnitude
slower than the authors' C++); every function takes ``scale`` /
``queries_per_set`` / ``timeout`` knobs to grow a run.

The benchmark suite in ``benchmarks/`` calls these functions — one bench
file per figure — and EXPERIMENTS.md records measured output next to the
paper's reported shapes.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.objects import Dataset
from ..datasets.queries import generate_queries
from ..datasets.stats import table1_stats
from ..datasets.synthetic import make_la_like, make_ny_like, make_tw_like
from .metrics import QueryMeasurement, summarize
from .report import FigureResult, render_rows
from .runner import ExperimentRunner

__all__ = [
    "dataset_by_name",
    "table1_datasets",
    "fig7_vary_epsilon",
    "fig8_vary_keywords",
    "fig9_skec_vs_skecaplus",
    "fig10_vary_diameter",
    "fig11_vary_timeout",
    "fig12_vary_frequency",
    "fig13_scalability",
    "fig14_vary_epsilon_ny_tw",
]

_MAKERS = {"NY": make_ny_like, "LA": make_la_like, "TW": make_tw_like}


def dataset_by_name(name: str, scale: float = 1.0, seed: Optional[int] = None) -> Dataset:
    """Instantiate one of the NY/LA/TW-like presets."""
    try:
        maker = _MAKERS[name.upper()]
    except KeyError:
        raise ValueError(f"unknown dataset preset {name!r}; pick NY, LA or TW") from None
    return maker(scale=scale, seed=seed)


# ---------------------------------------------------------------------- #
# Table 1 — dataset properties.
# ---------------------------------------------------------------------- #


def table1_datasets(scale: float = 0.05) -> Tuple[str, List]:
    """Table 1: number of objects, unique words, total words per dataset."""
    datasets = [dataset_by_name(n, scale=scale) for n in ("NY", "LA", "TW")]
    stats = table1_stats(datasets)
    rows = [
        (s.name, s.n_objects, s.unique_words, s.total_words, round(s.words_per_object, 2))
        for s in stats
    ]
    text = render_rows(
        "Table 1: dataset properties (synthetic, scaled)",
        ["Dataset", "Objects", "Unique words", "Total words", "Words/object"],
        rows,
    )
    return text, stats


# ---------------------------------------------------------------------- #
# Figure 7 (and 14) — tuning the binary-search parameter ε.
# ---------------------------------------------------------------------- #


def fig7_vary_epsilon(
    dataset_name: str = "LA",
    scale: float = 0.05,
    m: int = 6,
    queries_per_set: int = 5,
    eps_values: Sequence[float] = (0.0004, 0.002, 0.01, 0.05, 0.25),
    diameter_fraction: float = 0.2,
    seed: int = 0,
) -> List[FigureResult]:
    """Figure 7: runtime and ratio of SKECa vs SKECa+ as ε varies."""
    dataset = dataset_by_name(dataset_name, scale=scale)
    queries = generate_queries(
        dataset, m, queries_per_set, diameter_fraction=diameter_fraction, seed=seed
    )

    runtime = FigureResult(
        "Fig7a", f"Runtime vs ε ({dataset.name})", "epsilon", list(eps_values)
    )
    ratio = FigureResult(
        "Fig7b", f"Approximation ratio vs ε ({dataset.name})", "epsilon", list(eps_values)
    )
    series_rt: Dict[str, List[float]] = {"SKECa": [], "SKECa+": []}
    series_ra: Dict[str, List[float]] = {"SKECa": [], "SKECa+": []}

    for eps in eps_values:
        runner = ExperimentRunner(dataset, epsilon=eps)
        measurements = runner.run_suite(["SKECa", "SKECa+"], queries)
        for algo in ("SKECa", "SKECa+"):
            summary = _summary_of(measurements, algo)
            series_rt[algo].append(summary.mean_runtime)
            series_ra[algo].append(
                summary.mean_ratio if summary.mean_ratio is not None else math.nan
            )
    for algo in ("SKECa", "SKECa+"):
        runtime.add_series(algo, series_rt[algo])
        ratio.add_series(algo, series_ra[algo])
    runtime.notes.append(f"{len(dataset)} objects, m={m}, {queries_per_set} queries")
    return [runtime, ratio]


def fig14_vary_epsilon_ny_tw(
    scale: float = 0.05,
    m: int = 6,
    queries_per_set: int = 5,
    eps_values: Sequence[float] = (0.0004, 0.002, 0.01, 0.05, 0.25),
    seed: int = 0,
) -> List[FigureResult]:
    """Figure 14 (Appendix F): the ε study repeated on NY and TW."""
    figures: List[FigureResult] = []
    for name in ("NY", "TW"):
        results = fig7_vary_epsilon(
            dataset_name=name,
            scale=scale,
            m=m,
            queries_per_set=queries_per_set,
            eps_values=eps_values,
            seed=seed,
        )
        for suffix, fig in zip("ab", results):
            fig.figure_id = f"Fig14{suffix}-{name}"
        figures.extend(results)
    return figures


# ---------------------------------------------------------------------- #
# Figure 8 — varying the number of query keywords.
# ---------------------------------------------------------------------- #


def fig8_vary_keywords(
    dataset_names: Sequence[str] = ("NY", "LA", "TW"),
    scale: float = 0.05,
    ms: Sequence[int] = (2, 4, 6, 8, 10),
    queries_per_set: int = 5,
    algorithms: Sequence[str] = ("GKG", "SKECa+", "EXACT", "VirbR", "ASGK", "ASGKa"),
    timeout: float = 20.0,
    diameter_fraction: float = 0.2,
    seed: int = 0,
) -> List[FigureResult]:
    """Figure 8: runtime and ratio of six algorithms as m varies."""
    figures: List[FigureResult] = []
    for name in dataset_names:
        dataset = dataset_by_name(name, scale=scale)
        runner = ExperimentRunner(dataset, reference_timeout=timeout * 3)
        runtime = FigureResult(
            f"Fig8-runtime-{name}",
            f"Runtime vs m ({dataset.name})",
            "m keywords",
            list(ms),
        )
        ratio = FigureResult(
            f"Fig8-ratio-{name}",
            f"Approximation ratio vs m ({dataset.name})",
            "m keywords",
            list(ms),
        )
        per_algo_rt: Dict[str, List[float]] = {a: [] for a in algorithms}
        per_algo_ra: Dict[str, List[float]] = {a: [] for a in algorithms}
        for m in ms:
            queries = generate_queries(
                dataset,
                m,
                queries_per_set,
                diameter_fraction=diameter_fraction,
                seed=seed + m,
            )
            measurements = runner.run_suite(algorithms, queries, timeout=timeout)
            for algo in algorithms:
                summary = _summary_of(measurements, algo)
                per_algo_rt[algo].append(summary.mean_runtime)
                per_algo_ra[algo].append(
                    summary.mean_ratio if summary.mean_ratio is not None else math.nan
                )
        for algo in algorithms:
            runtime.add_series(algo, per_algo_rt[algo])
            ratio.add_series(algo, per_algo_ra[algo])
        runtime.notes.append(
            f"{len(dataset)} objects, {queries_per_set} queries/set, timeout {timeout}s"
        )
        figures.extend([runtime, ratio])
    return figures


# ---------------------------------------------------------------------- #
# Figure 9 — SKEC vs SKECa+.
# ---------------------------------------------------------------------- #


def fig9_skec_vs_skecaplus(
    dataset_name: str = "LA",
    scale: float = 0.05,
    ms: Sequence[int] = (2, 4, 6),
    queries_per_set: int = 5,
    timeout: float = 60.0,
    seed: int = 0,
) -> List[FigureResult]:
    """Figure 9: SKEC against SKECa+ — same accuracy, far slower."""
    dataset = dataset_by_name(dataset_name, scale=scale)
    runner = ExperimentRunner(dataset)
    runtime = FigureResult(
        "Fig9a", f"SKEC vs SKECa+ runtime ({dataset.name})", "m keywords", list(ms)
    )
    ratio = FigureResult(
        "Fig9b", f"SKEC vs SKECa+ ratio ({dataset.name})", "m keywords", list(ms)
    )
    algos = ("SKEC", "SKECa+")
    per_rt: Dict[str, List[float]] = {a: [] for a in algos}
    per_ra: Dict[str, List[float]] = {a: [] for a in algos}
    for m in ms:
        queries = generate_queries(dataset, m, queries_per_set, seed=seed + m)
        measurements = runner.run_suite(algos, queries, timeout=timeout)
        for algo in algos:
            summary = _summary_of(measurements, algo)
            per_rt[algo].append(summary.mean_runtime)
            per_ra[algo].append(
                summary.mean_ratio if summary.mean_ratio is not None else math.nan
            )
    for algo in algos:
        runtime.add_series(algo, per_rt[algo])
        ratio.add_series(algo, per_ra[algo])
    return [runtime, ratio]


# ---------------------------------------------------------------------- #
# Figure 10 — varying the optimal-group diameter bound.
# ---------------------------------------------------------------------- #


def fig10_vary_diameter(
    dataset_names: Sequence[str] = ("LA", "TW"),
    scale: float = 0.05,
    m: int = 6,
    queries_per_set: int = 5,
    bounds: Sequence[float] = (0.10, 0.15, 0.20, 0.25, 0.30),
    timeout: float = 10.0,
    seed: int = 0,
) -> List[FigureResult]:
    """Figure 10: approx runtime/ratio plus exact runtime/success-rate as
    the diameter bound of the optimal group grows."""
    figures: List[FigureResult] = []
    for name in dataset_names:
        dataset = dataset_by_name(name, scale=scale)
        runner = ExperimentRunner(dataset, reference_timeout=timeout * 3)
        approx_rt = FigureResult(
            f"Fig10-approx-runtime-{name}",
            f"Approx runtime vs diameter bound ({dataset.name})",
            "diameter bound",
            list(bounds),
        )
        approx_ra = FigureResult(
            f"Fig10-approx-ratio-{name}",
            f"Approx ratio vs diameter bound ({dataset.name})",
            "diameter bound",
            list(bounds),
        )
        exact_rt = FigureResult(
            f"Fig10-exact-runtime-{name}",
            f"Exact runtime vs diameter bound ({dataset.name})",
            "diameter bound",
            list(bounds),
        )
        exact_sr = FigureResult(
            f"Fig10-success-{name}",
            f"Success rate vs diameter bound ({dataset.name})",
            "diameter bound",
            list(bounds),
        )
        approx_algos = ("GKG", "SKECa+")
        exact_algos = ("EXACT", "VirbR")
        data_rt: Dict[str, List[float]] = {a: [] for a in approx_algos + exact_algos}
        data_ra: Dict[str, List[float]] = {a: [] for a in approx_algos}
        data_sr: Dict[str, List[float]] = {a: [] for a in exact_algos}
        for bound in bounds:
            queries = generate_queries(
                dataset,
                m,
                queries_per_set,
                diameter_fraction=bound,
                seed=seed + int(bound * 100),
            )
            measurements = runner.run_suite(
                approx_algos + exact_algos, queries, timeout=timeout
            )
            for algo in approx_algos:
                summary = _summary_of(measurements, algo)
                data_rt[algo].append(summary.mean_runtime)
                data_ra[algo].append(
                    summary.mean_ratio if summary.mean_ratio is not None else math.nan
                )
            # The paper compares exact runtimes only on queries where BOTH
            # exact algorithms finished within the threshold.
            both = _common_success_runtimes(measurements, exact_algos)
            for algo in exact_algos:
                summary = _summary_of(measurements, algo)
                data_sr[algo].append(summary.success_rate)
                data_rt[algo].append(both.get(algo, math.nan))
        for algo in approx_algos:
            approx_rt.add_series(algo, data_rt[algo])
            approx_ra.add_series(algo, data_ra[algo])
        for algo in exact_algos:
            exact_rt.add_series(algo, data_rt[algo])
            exact_sr.add_series(algo, data_sr[algo])
        exact_rt.notes.append("runtimes over queries where both exact methods succeed")
        figures.extend([approx_rt, approx_ra, exact_rt, exact_sr])
    return figures


# ---------------------------------------------------------------------- #
# Figure 11 — varying the timeout threshold.
# ---------------------------------------------------------------------- #


def fig11_vary_timeout(
    dataset_name: str = "LA",
    scale: float = 0.05,
    m: int = 6,
    queries_per_set: int = 8,
    timeouts: Sequence[float] = (0.5, 1.0, 2.0, 4.0, 8.0),
    diameter_fraction: float = 0.3,
    seed: int = 0,
) -> List[FigureResult]:
    """Figure 11: EXACT vs VirbR runtime and success rate as the timeout
    threshold varies (30% diameter bound, the hard regime)."""
    dataset = dataset_by_name(dataset_name, scale=scale)
    runner = ExperimentRunner(dataset, reference_timeout=max(timeouts) * 3)
    queries = generate_queries(
        dataset, m, queries_per_set, diameter_fraction=diameter_fraction, seed=seed
    )
    algos = ("EXACT", "VirbR")
    runtime = FigureResult(
        "Fig11a", f"Runtime vs timeout ({dataset.name})", "timeout (s)", list(timeouts)
    )
    success = FigureResult(
        "Fig11b", f"Success rate vs timeout ({dataset.name})", "timeout (s)", list(timeouts)
    )
    per_rt: Dict[str, List[float]] = {a: [] for a in algos}
    per_sr: Dict[str, List[float]] = {a: [] for a in algos}
    for limit in timeouts:
        measurements = runner.run_suite(algos, queries, timeout=limit, with_reference=False)
        both = _common_success_runtimes(measurements, algos)
        for algo in algos:
            summary = _summary_of(measurements, algo)
            per_sr[algo].append(summary.success_rate)
            per_rt[algo].append(both.get(algo, math.nan))
    for algo in algos:
        runtime.add_series(algo, per_rt[algo])
        success.add_series(algo, per_sr[algo])
    return [runtime, success]


# ---------------------------------------------------------------------- #
# Figure 12 — varying the query keyword frequencies.
# ---------------------------------------------------------------------- #


def fig12_vary_frequency(
    dataset_name: str = "LA",
    scale: float = 0.05,
    m: int = 6,
    queries_per_set: int = 5,
    pool_fractions: Sequence[float] = (0.2, 0.4, 0.6, 0.8, 1.0),
    timeout: float = 10.0,
    seed: int = 0,
) -> List[FigureResult]:
    """Figure 12: four algorithms as query terms get more frequent."""
    dataset = dataset_by_name(dataset_name, scale=scale)
    runner = ExperimentRunner(dataset, reference_timeout=timeout * 3)
    approx_algos = ("GKG", "SKECa+")
    exact_algos = ("EXACT", "VirbR")
    approx_rt = FigureResult(
        "Fig12a", f"Approx runtime vs term pool ({dataset.name})",
        "term frequency pool", list(pool_fractions),
    )
    approx_ra = FigureResult(
        "Fig12b", f"Approx ratio vs term pool ({dataset.name})",
        "term frequency pool", list(pool_fractions),
    )
    exact_rt = FigureResult(
        "Fig12c", f"Exact runtime vs term pool ({dataset.name})",
        "term frequency pool", list(pool_fractions),
    )
    exact_sr = FigureResult(
        "Fig12d", f"Success rate vs term pool ({dataset.name})",
        "term frequency pool", list(pool_fractions),
    )
    per_rt: Dict[str, List[float]] = {a: [] for a in approx_algos + exact_algos}
    per_ra: Dict[str, List[float]] = {a: [] for a in approx_algos}
    per_sr: Dict[str, List[float]] = {a: [] for a in exact_algos}
    for fraction in pool_fractions:
        queries = generate_queries(
            dataset,
            m,
            queries_per_set,
            term_pool_fraction=fraction,
            seed=seed + int(fraction * 10),
        )
        measurements = runner.run_suite(
            approx_algos + exact_algos, queries, timeout=timeout
        )
        for algo in approx_algos:
            summary = _summary_of(measurements, algo)
            per_rt[algo].append(summary.mean_runtime)
            per_ra[algo].append(
                summary.mean_ratio if summary.mean_ratio is not None else math.nan
            )
        both = _common_success_runtimes(measurements, exact_algos)
        for algo in exact_algos:
            summary = _summary_of(measurements, algo)
            per_sr[algo].append(summary.success_rate)
            per_rt[algo].append(both.get(algo, math.nan))
    for algo in approx_algos:
        approx_rt.add_series(algo, per_rt[algo])
        approx_ra.add_series(algo, per_ra[algo])
    for algo in exact_algos:
        exact_rt.add_series(algo, per_rt[algo])
        exact_sr.add_series(algo, per_sr[algo])
    return [approx_rt, approx_ra, exact_rt, exact_sr]


# ---------------------------------------------------------------------- #
# Figure 13 — scalability.
# ---------------------------------------------------------------------- #


def fig13_scalability(
    scales: Sequence[float] = (0.025, 0.05, 0.075, 0.1, 0.125),
    m: int = 6,
    queries_per_set: int = 5,
    algorithms: Sequence[str] = ("GKG", "SKECa+", "EXACT", "VirbR"),
    timeout: float = 20.0,
    seed: int = 0,
) -> List[FigureResult]:
    """Figure 13: runtime and ratio on growing TW-like datasets.

    The paper scales TW from 1M to 5M tweets, sampling the smaller
    datasets from the largest crawl (§6.2.5); we generate the largest
    TW-like dataset once and sample the rest from it, preserving that
    methodology at reduced absolute size.
    """
    sizes: List[int] = []
    runtime_series: Dict[str, List[float]] = {a: [] for a in algorithms}
    ratio_series: Dict[str, List[float]] = {a: [] for a in algorithms}
    largest = make_tw_like(scale=max(scales))
    for s in scales:
        n = max(1, int(len(largest) * s / max(scales)))
        if n >= len(largest):
            dataset = largest
        else:
            dataset = largest.sample(n, seed=seed)
        sizes.append(len(dataset))
        runner = ExperimentRunner(dataset, reference_timeout=timeout * 3)
        queries = generate_queries(dataset, m, queries_per_set, seed=seed)
        measurements = runner.run_suite(algorithms, queries, timeout=timeout)
        for algo in algorithms:
            summary = _summary_of(measurements, algo)
            runtime_series[algo].append(summary.mean_runtime)
            ratio_series[algo].append(
                summary.mean_ratio if summary.mean_ratio is not None else math.nan
            )
    runtime = FigureResult("Fig13a", "Scalability: runtime", "objects", sizes)
    ratio = FigureResult("Fig13b", "Scalability: ratio", "objects", sizes)
    for algo in algorithms:
        runtime.add_series(algo, runtime_series[algo])
        ratio.add_series(algo, ratio_series[algo])
    return [runtime, ratio]


# ---------------------------------------------------------------------- #
# Extension experiment (not a paper figure): distributed scaling.
# ---------------------------------------------------------------------- #


def ext_distributed_scaling(
    dataset_name: str = "LA",
    scale: float = 0.05,
    m: int = 4,
    queries_per_set: int = 4,
    worker_counts: Sequence[int] = (1, 4, 9, 16),
    seed: int = 0,
) -> List[FigureResult]:
    """Distributed mCK (§8 future work): makespan and bytes vs workers.

    Every distributed answer is asserted equal to the centralized EXACT
    optimum; the series show the simulated parallel wall-clock and the
    communication bill as the cluster grows.
    """
    from ..core.engine import MCKEngine
    from ..distributed import DistributedMCKEngine

    dataset = dataset_by_name(dataset_name, scale=scale)
    queries = generate_queries(dataset, m, queries_per_set, seed=seed)
    central = MCKEngine(dataset)
    references = {
        q.keywords: central.query(q.keywords, algorithm="EXACT") for q in queries
    }

    makespan = FigureResult(
        "Ext-dist-makespan",
        f"Distributed makespan vs workers ({dataset.name})",
        "workers",
        list(worker_counts),
    )
    shipped = FigureResult(
        "Ext-dist-bytes",
        f"Bytes shipped vs workers ({dataset.name})",
        "workers",
        list(worker_counts),
    )
    mk_series: List[float] = []
    by_series: List[float] = []
    for n_workers in worker_counts:
        engine = DistributedMCKEngine(dataset, n_workers=n_workers)
        total_mk = 0.0
        total_bytes = 0
        for q in queries:
            result = engine.query(q.keywords)
            reference = references[q.keywords]
            if abs(result.group.diameter - reference.diameter) > 1e-6:
                raise AssertionError(
                    f"distributed answer diverged on {q.keywords}"
                )
            total_mk += result.makespan_seconds
            total_bytes += result.bytes_shipped
        mk_series.append(total_mk / len(queries))
        by_series.append(total_bytes / len(queries))
    makespan.add_series("distributed", mk_series)
    shipped.add_series("distributed", by_series)
    makespan.notes.append("answers asserted equal to centralized EXACT")
    return [makespan, shipped]


# ---------------------------------------------------------------------- #
# Helpers.
# ---------------------------------------------------------------------- #


def _summary_of(measurements: List[QueryMeasurement], algorithm: str):
    for summary in summarize(measurements):
        if summary.algorithm == algorithm:
            return summary
    raise KeyError(f"no measurements for {algorithm!r}")


def _common_success_runtimes(
    measurements: List[QueryMeasurement], algorithms: Sequence[str]
) -> Dict[str, float]:
    """Mean runtime per algorithm over queries where *all* of them
    succeeded (the paper's §6.2.3 comparison rule)."""
    by_query: Dict[Tuple, Dict[str, QueryMeasurement]] = {}
    for m in measurements:
        if m.algorithm in algorithms:
            by_query.setdefault(tuple(m.query_keywords), {})[m.algorithm] = m
    common = [
        entry
        for entry in by_query.values()
        if len(entry) == len(algorithms) and all(s.success for s in entry.values())
    ]
    if not common:
        return {}
    return {
        algo: sum(entry[algo].elapsed_seconds for entry in common) / len(common)
        for algo in algorithms
    }
