"""Fault-injection harness: named failure points armed from tests or CLI.

Production code declares *sites* — :func:`fire` calls at the places where
a real deployment fails (a worker process dies, the EXACT pool rejects a
task, a circleScan stalls, a deadline clock drifts).  A site is inert
until a test arms a fault against it, so the steady-state overhead is one
module-attribute read per call.  Everything is process-local and
deterministic: faults trigger by *call count* (``after`` skipped matches,
then at most ``times`` triggers), never by wall clock or randomness.

Known sites
-----------
``core.circlescan``
    Fired on entry to every circleScan sweep.  Arm a ``delay`` to model a
    slow scan that pushes a query over its deadline.
``core.deadline.clock``
    Consulted by :meth:`repro.core.common.Deadline.check`; an armed
    ``skew`` is *added* to the monotonic clock, so a deadline expires at a
    chosen poll (``after=N`` → expiry exactly at the N+1-th check).  Skew
    faults stay triggered once reached (``times=None``); a skewed clock
    does not jump back.
``serving.pool.submit``
    Fired before each submission to the EXACT process pool.  Arm the
    ``broken_pool`` error to model a pool rejection / dead worker and
    exercise the retry budget and circuit breaker.
``serving.admission.capacity``
    Fired on every admission attempt (before capacity/policy checks).
    Arm a :class:`~repro.exceptions.QueryRejected` (the
    ``admission-reject`` alias) to model a full admission queue without
    generating real load, or a ``delay`` to model a slow admission path.
``distributed.worker.answer``
    Fired when a distributed worker starts a task.  Arm the
    ``worker_crash`` error (crash-on-nth-task via ``after``) to exercise
    the coordinator's respawn-and-resubmit path.
``serving.live.compaction``
    Fired when the live store's compactor starts folding a delta into a
    new sealed base (see :mod:`repro.live.compaction`).  Arm the
    ``compaction-fail`` error to abort compactions and verify the store
    keeps serving (and re-triggering) on the uncompacted snapshot, or a
    ``delay`` to model a slow rebuild racing concurrent mutations.
``live.checkpoint.segment_write``
    Fired just before a checkpoint writes its segment file.  Arm
    :class:`SimulatedCrash` (the ``checkpoint-crash`` alias) to model a
    process killed mid-checkpoint: the previous manifest stays intact and
    the full WAL tail is still on disk, so recovery loses nothing.
``live.checkpoint.manifest_rename``
    Fired after the segment is durable but before the manifest rename
    that commits the checkpoint.  A crash here leaves an orphan segment
    (garbage-collected by the next successful checkpoint) and recovers
    from the previous manifest.
``live.checkpoint.wal_truncate``
    Fired after the manifest commit, before the covered WAL prefix is
    truncated away.  A crash here recovers from the *new* checkpoint and
    skips the already-covered WAL records during tail replay.
``live.wal.rotate``
    Fired inside :meth:`repro.live.wal.WriteAheadLog.truncate_through`
    before each step of the rotation (context ``stage=`` ``write_tmp`` /
    ``rename`` / ``fsync_dir``) so tests can interrupt the rotation at
    every point and assert the log stays replayable.
``live.checkpoint.recover``
    Fired when checkpoint recovery starts (before the manifest is read).
    Arm a ``delay`` to hold an engine in the recovering state and assert
    ``/readyz`` answers 503 with recovery progress until it completes.

Example
-------
>>> from repro.testing import faults
>>> with faults.injected("core.circlescan", delay=0.2):
...     service.query(["a", "b"], timeout=0.05)   # degrades, never hangs

Faults can also be armed from a CLI spec string (see :func:`arm_spec`):
``slow-scan:delay=0.2``, ``pool-reject:after=1,times=2``,
``worker-crash``, ``clock-skew:after=50``, ``admission-reject:times=5``.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Union

__all__ = [
    "Fault",
    "SimulatedCrash",
    "arm",
    "arm_spec",
    "disarm",
    "reset",
    "fire",
    "clock_skew",
    "injected",
    "fired",
    "snapshot",
    "ALIASES",
    "ACTIVE",
]


class SimulatedCrash(BaseException):
    """A process death injected at a fault site (kill-anywhere harness).

    Deliberately a ``BaseException``: production code that degrades
    gracefully by catching ``Exception`` (the compactor, the checkpoint
    writer) must NOT be able to swallow a simulated kill — the crash has
    to unwind through every handler exactly as ``SIGKILL`` would leave
    no handler running at all.  Tests catch it at the outermost level,
    abandon the dirty in-memory engine without closing it, and re-open
    from disk to model a restart.
    """

#: Fast-path flag: ``fire``/``clock_skew`` return immediately while False.
#: Maintained by arm/disarm/reset; read without the lock (a stale read
#: costs one extra dict lookup, never a missed armed fault).
ACTIVE: bool = False

_LOCK = threading.Lock()
_SITES: Dict[str, List["Fault"]] = {}

ErrorSpec = Union[BaseException, Callable[[], BaseException], type, None]


@dataclass
class Fault:
    """One armed fault against a site.

    ``after`` matching fires are skipped before the fault triggers; it
    then triggers at most ``times`` times (``None`` = every later fire —
    the right setting for clock skew, which must not jump back).  An
    optional ``match`` predicate receives the fire-site's keyword context
    (e.g. ``worker_id``) and can restrict the fault to some calls only.
    """

    site: str
    error: ErrorSpec = None
    delay: float = 0.0
    skew: float = 0.0
    after: int = 0
    times: Optional[int] = 1
    match: Optional[Callable[..., bool]] = None
    #: Matching :func:`fire` invocations seen so far.
    calls: int = 0
    #: Times this fault actually triggered.
    triggered: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def _try_trigger(self) -> bool:
        """Count one matching fire; report whether the fault triggers."""
        with self._lock:
            self.calls += 1
            if self.calls <= self.after:
                return False
            if self.times is not None and self.triggered >= self.times:
                return False
            self.triggered += 1
            return True

    def _materialize_error(self) -> Optional[BaseException]:
        err = self.error
        if err is None:
            return None
        if isinstance(err, BaseException):
            return err
        return err()  # class or zero-arg factory


def arm(
    site: str,
    *,
    error: ErrorSpec = None,
    delay: float = 0.0,
    skew: float = 0.0,
    after: int = 0,
    times: Optional[int] = 1,
    match: Optional[Callable[..., bool]] = None,
) -> Fault:
    """Arm a fault against ``site``; returns the handle for :func:`disarm`."""
    if skew and times == 1:
        # A skewed clock that silently un-skews after one read would make
        # deadlines flap; default skew faults to "sticky once triggered".
        times = None
    fault = Fault(
        site=site,
        error=error,
        delay=delay,
        skew=skew,
        after=after,
        times=times,
        match=match,
    )
    global ACTIVE
    with _LOCK:
        _SITES.setdefault(site, []).append(fault)
        ACTIVE = True
    return fault


def disarm(fault: Fault) -> None:
    """Remove one armed fault (no-op if already gone)."""
    global ACTIVE
    with _LOCK:
        faults = _SITES.get(fault.site)
        if faults and fault in faults:
            faults.remove(fault)
            if not faults:
                del _SITES[fault.site]
        ACTIVE = bool(_SITES)


def reset() -> None:
    """Disarm everything (test teardown / CLI cleanup)."""
    global ACTIVE
    with _LOCK:
        _SITES.clear()
        ACTIVE = False


@contextmanager
def injected(site: str, **kwargs):
    """Context manager: arm on entry, disarm on exit."""
    fault = arm(site, **kwargs)
    try:
        yield fault
    finally:
        disarm(fault)


def _matching(site: str, ctx: dict) -> List[Fault]:
    with _LOCK:
        faults = list(_SITES.get(site, ()))
    matched = []
    for fault in faults:
        if fault.match is not None and not fault.match(**ctx):
            continue
        matched.append(fault)
    return matched


def fire(site: str, **ctx) -> None:
    """Production hook: trigger any armed faults for ``site``.

    Order of effects when several faults trigger at once: all delays are
    slept first, then the first armed error is raised.  With nothing armed
    (the production steady state) this is a single attribute read.
    """
    if not ACTIVE:
        return
    triggered = [f for f in _matching(site, ctx) if f._try_trigger()]
    for fault in triggered:
        if fault.delay > 0.0:
            time.sleep(fault.delay)
    for fault in triggered:
        err = fault._materialize_error()
        if err is not None:
            raise err


def clock_skew(site: str = "core.deadline.clock") -> float:
    """Summed skew of the armed clock faults that trigger on this read."""
    if not ACTIVE:
        return 0.0
    total = 0.0
    for fault in _matching(site, {}):
        if fault.skew and fault._try_trigger():
            total += fault.skew
    return total


def fired(site: str) -> int:
    """Total trigger count across faults armed at ``site`` (assertions)."""
    with _LOCK:
        return sum(f.triggered for f in _SITES.get(site, ()))


def total_triggered() -> int:
    """Trigger count summed over every armed site (flight-recorder use:
    diffed before/after a request to tag traces that hit a fault).  Free
    when no faults are armed."""
    if not ACTIVE:
        return 0
    with _LOCK:
        return sum(f.triggered for faults in _SITES.values() for f in faults)


def snapshot() -> Dict[str, List[Fault]]:
    """Copy of the armed-fault table (debugging / assertions)."""
    with _LOCK:
        return {site: list(faults) for site, faults in _SITES.items()}


# --------------------------------------------------------------------- #
# CLI spec parsing: "alias[:key=value,...]" strings for --inject-fault.
# --------------------------------------------------------------------- #


def _broken_pool_error() -> BaseException:
    from concurrent.futures.process import BrokenProcessPool

    return BrokenProcessPool("injected pool rejection (repro.testing.faults)")


def _worker_crash_error() -> BaseException:
    from ..exceptions import WorkerCrashed

    return WorkerCrashed(-1, "injected crash (repro.testing.faults)")


def _compaction_fail_error() -> BaseException:
    from ..exceptions import IndexError_

    return IndexError_("injected compaction failure (repro.testing.faults)")


def _simulated_crash_error() -> BaseException:
    return SimulatedCrash("injected process kill (repro.testing.faults)")


def _admission_reject_error() -> BaseException:
    from ..exceptions import QueryRejected

    return QueryRejected(
        "injected", "injected admission rejection (repro.testing.faults)"
    )


#: alias -> (site, default arm() kwargs).  The error values are factories
#: so each trigger raises a fresh exception instance.
ALIASES: Dict[str, tuple] = {
    "slow-scan": ("core.circlescan", {"delay": 0.1, "times": None}),
    "clock-skew": ("core.deadline.clock", {"skew": 3600.0, "times": None}),
    "pool-reject": ("serving.pool.submit", {"error": _broken_pool_error}),
    "worker-crash": ("distributed.worker.answer", {"error": _worker_crash_error}),
    "admission-reject": (
        "serving.admission.capacity",
        {"error": _admission_reject_error},
    ),
    "compaction-fail": (
        "serving.live.compaction",
        {"error": _compaction_fail_error},
    ),
    "checkpoint-crash": (
        "live.checkpoint.segment_write",
        {"error": _simulated_crash_error},
    ),
    "manifest-crash": (
        "live.checkpoint.manifest_rename",
        {"error": _simulated_crash_error},
    ),
    "wal-truncate-crash": (
        "live.checkpoint.wal_truncate",
        {"error": _simulated_crash_error},
    ),
    "slow-recovery": ("live.checkpoint.recover", {"delay": 0.5}),
}

_INT_KEYS = frozenset({"after", "times"})
_FLOAT_KEYS = frozenset({"delay", "skew"})


def arm_spec(spec: str) -> Fault:
    """Arm a fault from a CLI spec string like ``pool-reject:after=1,times=2``.

    The alias picks the site and the failure mode; ``key=value`` overrides
    tune the numeric knobs (``after``, ``times``, ``delay``, ``skew``).
    ``times=0`` means unlimited (spelled explicitly, since ``None`` has no
    CLI spelling).
    """
    name, _, rest = spec.partition(":")
    name = name.strip()
    if name not in ALIASES:
        known = ", ".join(sorted(ALIASES))
        raise ValueError(f"unknown fault alias {name!r}; known: {known}")
    site, defaults = ALIASES[name]
    kwargs = dict(defaults)
    if rest.strip():
        for pair in rest.split(","):
            key, sep, value = pair.partition("=")
            key = key.strip()
            if not sep or key not in (_INT_KEYS | _FLOAT_KEYS):
                raise ValueError(f"bad fault option {pair!r} in {spec!r}")
            if key in _INT_KEYS:
                parsed: Optional[float] = int(value)
                if key == "times" and parsed == 0:
                    parsed = None
            else:
                parsed = float(value)
            kwargs[key] = parsed
    return arm(site, **kwargs)
