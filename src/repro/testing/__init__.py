"""Test-support utilities shipped with the library.

:mod:`repro.testing.faults` is the fault-injection (chaos) harness: the
production code exposes named failure points which stay inert until a
test — or ``mck serve-bench --inject-fault`` — arms them.
"""

from . import faults

__all__ = ["faults"]
