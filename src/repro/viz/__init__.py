"""Dependency-free SVG visualisation of datasets and query answers."""

from .svg import SvgCanvas, render_result

__all__ = ["SvgCanvas", "render_result"]
