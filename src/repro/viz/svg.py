"""Minimal SVG rendering of datasets, groups and circles.

Dependency-free visual output for the examples and for eyeballing query
results: objects are dots (relevant objects highlighted), the answer
group's objects are emphasised, and its enclosing circle is drawn — the
picture of the paper's Figure 1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from ..core.objects import Dataset
from ..core.result import Group
from ..geometry.circle import Circle

__all__ = ["SvgCanvas", "render_result"]


@dataclass
class _Transform:
    """World -> viewport mapping preserving aspect ratio."""

    scale: float
    offset_x: float
    offset_y: float
    height: float

    def apply(self, x: float, y: float) -> Tuple[float, float]:
        # Flip y: SVG grows downward, maps grow upward.
        return (
            self.offset_x + x * self.scale,
            self.height - (self.offset_y + y * self.scale),
        )


class SvgCanvas:
    """Accumulates SVG elements over a world-coordinate bounding box."""

    def __init__(
        self,
        world_bounds: Tuple[float, float, float, float],
        width: int = 640,
        height: int = 640,
        margin: int = 20,
    ):
        x1, y1, x2, y2 = world_bounds
        span_x = max(x2 - x1, 1e-9)
        span_y = max(y2 - y1, 1e-9)
        scale = min((width - 2 * margin) / span_x, (height - 2 * margin) / span_y)
        self._t = _Transform(
            scale=scale,
            offset_x=margin - x1 * scale,
            offset_y=margin - y1 * scale,
            height=float(height),
        )
        self.width = width
        self.height = height
        self._elements: List[str] = []

    # ------------------------------------------------------------------ #

    def add_point(
        self, x: float, y: float, radius: float = 2.0, fill: str = "#9aa0a6",
        title: Optional[str] = None,
    ) -> None:
        """Draw one dot at world coordinates, optional hover tooltip."""
        px, py = self._t.apply(x, y)
        tooltip = f"<title>{_escape(title)}</title>" if title else ""
        self._elements.append(
            f'<circle cx="{px:.2f}" cy="{py:.2f}" r="{radius}" '
            f'fill="{fill}">{tooltip}</circle>'
        )

    def add_circle(
        self, circle: Circle, stroke: str = "#d93025", stroke_width: float = 2.0
    ) -> None:
        """Draw an unfilled circle (e.g. a minimum covering circle)."""
        px, py = self._t.apply(circle.cx, circle.cy)
        pr = circle.r * self._t.scale
        self._elements.append(
            f'<circle cx="{px:.2f}" cy="{py:.2f}" r="{pr:.2f}" fill="none" '
            f'stroke="{stroke}" stroke-width="{stroke_width}"/>'
        )

    def add_segment(
        self,
        a: Sequence[float],
        b: Sequence[float],
        stroke: str = "#1a73e8",
        stroke_width: float = 1.0,
    ) -> None:
        ax, ay = self._t.apply(a[0], a[1])
        bx, by = self._t.apply(b[0], b[1])
        self._elements.append(
            f'<line x1="{ax:.2f}" y1="{ay:.2f}" x2="{bx:.2f}" y2="{by:.2f}" '
            f'stroke="{stroke}" stroke-width="{stroke_width}"/>'
        )

    def add_label(self, x: float, y: float, text: str, size: int = 12) -> None:
        """Draw a text label anchored at world coordinates."""
        px, py = self._t.apply(x, y)
        self._elements.append(
            f'<text x="{px:.2f}" y="{py:.2f}" font-size="{size}" '
            f'font-family="sans-serif">{_escape(text)}</text>'
        )

    def to_svg(self) -> str:
        """Serialise the canvas to a standalone SVG document."""
        body = "\n  ".join(self._elements)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{self.width}" height="{self.height}" '
            f'viewBox="0 0 {self.width} {self.height}">\n'
            f'  <rect width="100%" height="100%" fill="white"/>\n'
            f"  {body}\n</svg>\n"
        )

    def save(self, path) -> None:
        """Write the SVG document to a file."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_svg())


def render_result(
    dataset: Dataset,
    group: Group,
    query_keywords: Iterable[str] = (),
    width: int = 640,
    height: int = 640,
) -> str:
    """Render a query answer over its dataset; returns the SVG text.

    Grey dots: all objects.  Blue dots: objects holding a query keyword.
    Red dots + circle: the answer group and its minimum covering circle.
    """
    coords = dataset.coords
    bounds = (
        float(coords[:, 0].min()),
        float(coords[:, 1].min()),
        float(coords[:, 0].max()),
        float(coords[:, 1].max()),
    )
    canvas = SvgCanvas(bounds, width=width, height=height)

    query_set = set(query_keywords)
    group_ids = set(group.object_ids)
    for obj in dataset:
        if obj.oid in group_ids:
            continue
        relevant = bool(query_set & obj.keywords)
        canvas.add_point(
            obj.x,
            obj.y,
            radius=2.5 if relevant else 1.5,
            fill="#1a73e8" if relevant else "#dadce0",
            title=", ".join(sorted(obj.keywords)),
        )
    for oid in group.object_ids:
        obj = dataset[oid]
        canvas.add_point(
            obj.x, obj.y, radius=4.0, fill="#d93025",
            title=", ".join(sorted(obj.keywords)),
        )
    if len(group) >= 1:
        canvas.add_circle(group.mcc(dataset))
    return canvas.to_svg()


def _escape(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )
