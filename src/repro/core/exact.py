"""Algorithm EXACT — optimal mCK answers via bounded exhaustive search (§5).

Lemma 2 bounds the smallest circle enclosing the optimal group:
ø(MCC_Gopt) ≤ 2/√3 · ø(SKECq), and the SKECa+ result gives a certified
upper bound on ø(SKECq).  EXACT therefore:

1. runs SKECa+ (Algorithm 2) and sets
   ``diam = 2/√3 · ø(MCC_Gskeca)``;
2. skips poles whose ``maxInvalidRange`` already exceeds ``diam``
   (Lemma 3: they cannot lie on the boundary of MCC_Gopt);
3. around every surviving pole enumerates all candidate circles of
   diameter ``diam`` that pass through the pole and cover the query
   (Procedure circleScanSearch = the full rotation sweep), and
4. runs the branch-and-bound Procedure search() inside each candidate
   circle, with the paper's three pruning strategies.

The group with the smallest diameter over all searches is optimal.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..geometry.mcc import minimum_covering_circle
from ..kernels import kernel_mode
from ..kernels import vectorized_enabled as _vectorized_enabled
from .circlescan import circle_scan_candidates
from .common import QUALITY_APPROX, QUALITY_EXACT, SQRT3_FACTOR, Deadline
from .query import QueryContext
from .result import Group
from .skeca import DEFAULT_EPSILON
from .skecaplus import SkecaPlusState, skeca_plus_state

__all__ = ["exact", "exact_from_state", "branch_and_bound_search"]


def exact(
    ctx: QueryContext,
    epsilon: float = DEFAULT_EPSILON,
    deadline: Optional[Deadline] = None,
) -> Group:
    """Run EXACT; returns the optimal group."""
    deadline = deadline or Deadline.unlimited("EXACT")
    with deadline.span(
        "exact.plan",
        kernel=kernel_mode(),
        m=ctx.m,
        epsilon=epsilon,
        poles=len(ctx.relevant_ids),
    ):
        pass
    deadline.count("kernel_vectorized", 1.0 if _vectorized_enabled() else 0.0)
    with deadline.span("exact.skeca_plus_bound"):
        state = skeca_plus_state(ctx, epsilon, deadline)
    return exact_from_state(ctx, state, deadline)


def exact_from_state(
    ctx: QueryContext,
    state: SkecaPlusState,
    deadline: Optional[Deadline] = None,
) -> Group:
    """Run the exhaustive phase of EXACT given a completed SKECa+ state."""
    deadline = deadline or Deadline.unlimited("EXACT")
    skeca_group = state.group

    if len(skeca_group) == 1:
        # A single object covering all keywords is optimal (δ = 0).
        result = Group(
            object_ids=skeca_group.object_ids,
            diameter=0.0,
            algorithm="EXACT",
            enclosing_circle=skeca_group.enclosing_circle,
        )
        # Emit the search counters (as zeros) on this path too; the
        # experiment runner and serve-bench aggregates read them from
        # every EXACT answer.
        result.stats["candidate_circles"] = 0.0
        result.stats["pruned_poles"] = 0.0
        result.quality = QUALITY_EXACT
        return result

    skeca_rows = [ctx.row_of(oid) for oid in skeca_group.object_ids]
    mcc = minimum_covering_circle(ctx.coords[r] for r in skeca_rows)
    diam = SQRT3_FACTOR * mcc.diameter

    # Seed the incumbent with the better of SKECa+ and GKG.
    best_rows = skeca_rows
    best_diameter = skeca_group.diameter
    if state.gkg_group.diameter < best_diameter:
        best_rows = [ctx.row_of(oid) for oid in state.gkg_group.object_ids]
        best_diameter = state.gkg_group.diameter
    # Anytime channel: the SKECa+ certificate covers the seed and every
    # smaller incumbent the branch-and-bound finds below it (a timeout
    # mid-enumeration then degrades to a 2/√3 + ε answer, not a failure).
    deadline.note_bound(QUALITY_APPROX, skeca_group.diameter)
    deadline.offer(ctx, best_rows, best_diameter)

    max_invalid = state.max_invalid_range
    searched = 0
    pruned_poles = 0
    if _vectorized_enabled():
        # Columnar pole filter: Lemma 3 and the coverage-radius precheck
        # (the same test circleScan's setup would apply pole-by-pole) are
        # evaluated in two array comparisons, so the Python loop only
        # visits poles that can actually host a candidate circle.
        max_inv = np.asarray(max_invalid, dtype=np.float64)
        lemma3 = max_inv >= diam
        pruned_poles = int(lemma3.sum())
        deadline.count("pruned_poles", pruned_poles)
        hopeless = diam < ctx.cover_radii * (1.0 - 1e-12)
        pole_iter = [int(p) for p in np.flatnonzero(~(lemma3 | hopeless))]
    else:
        pole_iter = None
    for pole in pole_iter if pole_iter is not None else range(len(ctx.relevant_ids)):
        deadline.check()
        if pole_iter is None and max_invalid[pole] >= diam:
            # Lemma 3: ø(SKECo) > 2/√3 · ø(MCC_Gskeca) means this pole
            # cannot be on the boundary of MCC_Gopt.
            pruned_poles += 1
            deadline.count("pruned_poles")
            continue
        with deadline.span("exact.candidate_enumeration", pole=pole) as enum_span:
            candidates = circle_scan_candidates(ctx, pole, diam)
            enum_span.set_attribute("candidates", len(candidates))
        for cand_rows in candidates:
            deadline.check()
            searched += 1
            deadline.count("candidate_circles")
            with deadline.span(
                "exact.search", pole=pole, candidate_size=len(cand_rows)
            ):
                best_rows, best_diameter = branch_and_bound_search(
                    ctx, pole, cand_rows, best_rows, best_diameter, deadline
                )

    best_rows = _prune_redundant_rows(ctx, best_rows)
    group = Group.from_rows(ctx, best_rows, algorithm="EXACT")
    # Guard against float drift between the incremental diameter and the
    # recomputed one.
    group.diameter = min(group.diameter, best_diameter)
    group.stats["candidate_circles"] = float(searched)
    group.stats["pruned_poles"] = float(pruned_poles)
    group.quality = QUALITY_EXACT
    return group


def _prune_redundant_rows(ctx: QueryContext, rows: Sequence[int]) -> List[int]:
    """Drop members whose keywords the rest of the group already covers.

    The branch-and-bound incumbent is sometimes seeded by SKECa+'s enclosed
    set, which may carry redundant objects; an irredundant cover has at
    most one member per query keyword (≤ m members), and removing members
    never grows the diameter, so optimality is preserved.
    """
    kept = list(dict.fromkeys(int(r) for r in rows))
    full = ctx.full_mask
    # Try to drop later rows first so the pole-adjacent seed order survives.
    for row in sorted(kept, reverse=True):
        if len(kept) == 1:
            break
        union = 0
        for other in kept:
            if other != row:
                union |= ctx.masks[other]
        if union == full:
            kept.remove(row)
    return kept


def branch_and_bound_search(
    ctx: QueryContext,
    pole_row: int,
    candidate_rows: Sequence[int],
    best_rows: List[int],
    best_diameter: float,
    deadline: Optional[Deadline] = None,
) -> Tuple[List[int], float]:
    """Procedure search(): optimal group within one candidate circle.

    The pole is always part of the group (it lies on the boundary of the
    candidate circle, mirroring the object on the boundary of MCC_Gopt).
    Depth-first enumeration in increasing row order avoids duplicates
    (line 11 of the pseudocode); the three pruning strategies of §5.2 are
    applied at every expansion.
    """
    deadline = deadline or Deadline.unlimited("EXACT")
    rows = [r for r in candidate_rows if r != pole_row]
    if ctx.masks[pole_row] == ctx.full_mask:
        return [pole_row], 0.0
    if not rows:
        return best_rows, best_diameter

    # Local distance matrix over pole + candidates.
    local = [pole_row] + list(rows)
    pts = ctx.coords[np.asarray(local, dtype=np.intp)]
    delta = pts[:, None, :] - pts[None, :, :]
    dist = np.hypot(delta[:, :, 0], delta[:, :, 1])

    masks = [ctx.masks[r] for r in local]
    full = ctx.full_mask
    n = len(local)

    # Suffix union masks: what keywords the candidates from index i onward
    # can still contribute (Pruning Strategy 3 in O(1) per check).
    suffix_mask = [0] * (n + 1)
    for i in range(n - 1, 0, -1):
        suffix_mask[i] = suffix_mask[i + 1] | masks[i]

    best = {
        "rows": list(best_rows),
        "diameter": best_diameter,
        # Deepest recursion reached: how close the pruning strategies let
        # the enumeration get to a full m-way expansion.
        "max_depth": 0,
    }

    def recurse(selected: List[int], covered: int, diameter: float, start: int) -> None:
        deadline.check()
        if len(selected) > best["max_depth"]:
            best["max_depth"] = len(selected)
        if covered == full:
            if diameter < best["diameter"]:
                best["diameter"] = diameter
                best["rows"] = [local[i] for i in selected]
                deadline.offer(ctx, best["rows"], diameter)
            return
        # Pruning Strategy 3: remaining candidates cannot close the gap.
        if (covered | suffix_mask[start]) != full:
            return
        for idx in range(start, n):
            mask = masks[idx]
            # Pruning Strategy 2: must contribute a new keyword.
            if mask & ~covered == 0:
                continue
            # Pruning Strategy 1: diameter would already be too large.
            new_diameter = diameter
            too_far = False
            for s in selected:
                d = dist[s, idx]
                if d >= best["diameter"]:
                    too_far = True
                    break
                if d > new_diameter:
                    new_diameter = d
            if too_far:
                continue
            if (covered | mask | suffix_mask[idx + 1]) != full:
                # Even taking idx, the tail cannot cover the rest; since
                # suffix masks shrink with idx, later candidates fail too.
                break
            selected.append(idx)
            recurse(selected, covered | mask, new_diameter, idx + 1)
            selected.pop()

    recurse([0], masks[0], 0.0, 1)
    deadline.record_max("search_depth_max", best["max_depth"])
    return best["rows"], best["diameter"]
