"""High-level facade: build once, query with any algorithm.

:class:`MCKEngine` owns a :class:`~repro.core.objects.Dataset`, compiles
queries to :class:`~repro.core.query.QueryContext` objects (with a small
LRU so repeated benchmarking of one query does not rebuild the virtual
tree), and dispatches to the algorithm implementations by name.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Callable, Dict, Optional, Sequence, Tuple

from ..exceptions import AlgorithmTimeout, QueryError
from ..kernels import kernel_mode
from ..observability import tracer as _tracing
from ..observability.explain import build_explain, collect_trace_spans
from .common import Deadline, Instrumentation, instrumentation_span
from .exact import exact
from .gkg import gkg
from .objects import Dataset
from .query import MCKQuery, QueryContext, compile_query
from .result import Group
from .skec import skec
from .skeca import DEFAULT_EPSILON, skeca
from .skecaplus import skeca_plus

__all__ = [
    "MCKEngine",
    "ALGORITHMS",
    "canonical_algorithm",
    "dispatch_algorithm",
]

#: Canonical algorithm names, as used in the paper's figures.
ALGORITHMS = ("GKG", "SKEC", "SKECa", "SKECa+", "EXACT")

#: Accepted spellings (after stripping whitespace/underscores/dashes and
#: uppercasing) mapped to the canonical paper name.
_CANONICAL = {
    "GKG": "GKG",
    "SKEC": "SKEC",
    "SKECA": "SKECa",
    "SKECA+": "SKECa+",
    "SKECAPLUS": "SKECa+",
    "EXACT": "EXACT",
}


def canonical_algorithm(algorithm: str) -> str:
    """Normalise an algorithm spelling to its canonical paper name.

    Accepts any case, surrounding whitespace, and ``-``/``_`` separators —
    ``"skeca_plus"``, ``" EXACT "`` and ``"SKECa+"`` all resolve.  Raises
    :class:`~repro.exceptions.QueryError` for unknown names.
    """
    key = str(algorithm).strip().upper().replace("_", "").replace("-", "")
    try:
        return _CANONICAL[key]
    except KeyError:
        raise QueryError(
            f"unknown algorithm {algorithm!r}; pick one of {ALGORITHMS}"
        ) from None


def dispatch_algorithm(
    algorithm: str, epsilon: float
) -> Callable[[QueryContext, Deadline], Group]:
    """The ``(context, deadline) -> Group`` runner for an algorithm name.

    Shared by :class:`MCKEngine` and the live engine
    (:class:`repro.live.engine.LiveMCKEngine`): both compile a query
    context — against a static dataset or a pinned live snapshot — and
    hand it to the same unmodified algorithm implementations.
    """
    table: Dict[str, Callable] = {
        "GKG": lambda ctx, dl: gkg(ctx, dl),
        "SKEC": lambda ctx, dl: skec(ctx, dl),
        "SKECa": lambda ctx, dl: skeca(ctx, epsilon, dl),
        "SKECa+": lambda ctx, dl: skeca_plus(ctx, epsilon, dl),
        "EXACT": lambda ctx, dl: exact(ctx, epsilon, dl),
    }
    return table[canonical_algorithm(algorithm)]


class MCKEngine:
    """Answer mCK queries over one dataset with the paper's algorithms.

    Example
    -------
    >>> dataset = Dataset.from_records([(0, 0, ["hotel"]), (1, 1, ["shop"])])
    >>> engine = MCKEngine(dataset)
    >>> group = engine.query(["hotel", "shop"], algorithm="EXACT")
    >>> sorted(group.object_ids)
    [0, 1]
    """

    #: EXPLAIN reports label which engine flavour answered; the live
    #: engine overrides this with ``"live"``.
    _ENGINE_KIND = "sealed"

    def __init__(self, dataset: Dataset, context_cache_size: int = 16):
        dataset.finalize()
        self.dataset = dataset
        self._cache_size = max(0, context_cache_size)
        self._contexts: "OrderedDict[Tuple[str, ...], QueryContext]" = OrderedDict()

    # ------------------------------------------------------------------ #

    def context(self, query) -> QueryContext:
        """Compile (or fetch from cache) a query context."""
        if not isinstance(query, MCKQuery):
            query = MCKQuery(query)
        key = query.keywords
        ctx = self._contexts.get(key)
        if ctx is None:
            ctx = compile_query(self.dataset, query)
            if self._cache_size:
                self._contexts[key] = ctx
                while len(self._contexts) > self._cache_size:
                    self._contexts.popitem(last=False)
        else:
            self._contexts.move_to_end(key)
        return ctx

    def query(
        self,
        keywords: Sequence[str],
        algorithm: str = "SKECa+",
        epsilon: float = DEFAULT_EPSILON,
        timeout: Optional[float] = None,
        instrumentation: Optional[Instrumentation] = None,
        degrade_on_timeout: bool = False,
        explain: bool = False,
    ) -> Group:
        """Answer one mCK query.

        Parameters
        ----------
        keywords:
            The m query keywords.
        algorithm:
            One of ``GKG``, ``SKEC``, ``SKECa``, ``SKECa+``, ``EXACT``.
        epsilon:
            Binary-search tolerance for the SKECa family (paper default 0.01).
        timeout:
            Optional wall-clock budget in seconds; exceeding it raises
            :class:`~repro.exceptions.AlgorithmTimeout`.
        instrumentation:
            Optional :class:`~repro.core.common.Instrumentation` sink; when
            given, the context-compile and algorithm times plus the
            algorithm's live pruning/search counters are recorded on it
            (even if the query times out).
        degrade_on_timeout:
            When True and the budget expires while the algorithm holds a
            feasible incumbent, return that incumbent as a degraded
            answer — ``stats["degraded"] == 1.0``, ``quality`` set to its
            certificate tag — instead of raising.  The default (False)
            keeps the paper's strict §6.2.3 fail-hard semantics.  A
            timeout with no incumbent raises either way.
        explain:
            When True, attach a per-query EXPLAIN report (the dict built
            by :func:`repro.observability.explain.build_explain`) to the
            returned group as ``group.explain_report``.  A private tracer
            is used when neither the instrumentation nor the process has
            one, so explain works standalone with zero setup.
        """
        canonical = canonical_algorithm(algorithm)
        runner = self._dispatch(algorithm, epsilon)
        explain_tracer = None
        detach_tracer = False
        if explain:
            if instrumentation is None:
                instrumentation = Instrumentation()
            explain_tracer = instrumentation.tracer or _tracing.get_tracer()
            if explain_tracer is None:
                explain_tracer = _tracing.Tracer()
                instrumentation.tracer = explain_tracer
                detach_tracer = True
        try:
            with instrumentation_span(
                instrumentation, "engine.query", algorithm=canonical
            ) as root_span:
                compile_started = time.perf_counter()
                with instrumentation_span(instrumentation, "engine.context_compile"):
                    ctx = self.context(keywords)
                compile_seconds = time.perf_counter() - compile_started
                deadline = Deadline(algorithm, timeout, instrumentation)
                started = time.perf_counter()
                try:
                    with instrumentation_span(
                        instrumentation,
                        "engine.algorithm",
                        algorithm=canonical,
                        kernel=kernel_mode(),
                    ):
                        group = runner(ctx, deadline)
                except AlgorithmTimeout as err:
                    if not degrade_on_timeout or err.incumbent is None:
                        raise
                    group = err.incumbent
                    group.algorithm = canonical
                    group.quality = err.quality
                    group.stats["degraded"] = 1.0
                    if instrumentation is not None:
                        instrumentation.count("degraded")
                finally:
                    elapsed = time.perf_counter() - started
                    if instrumentation is not None:
                        instrumentation.timings["context_seconds"] = compile_seconds
                        instrumentation.timings["algorithm_seconds"] = elapsed
        finally:
            if detach_tracer:
                instrumentation.tracer = None
        group.elapsed_seconds = elapsed
        if instrumentation is not None:
            instrumentation.merge_group_stats(group.stats)
        if explain:
            trace_id = getattr(root_span, "trace_id", None)
            spans = collect_trace_spans(explain_tracer, trace_id)
            timings = dict(instrumentation.timings)
            timings.setdefault("total_seconds", compile_seconds + elapsed)
            group.explain_report = build_explain(
                keywords=[str(k) for k in keywords],
                algorithm=canonical,
                epsilon=epsilon,
                timeout=timeout,
                spans=spans,
                counters=instrumentation.counters,
                timings=timings,
                engine_kind=self._ENGINE_KIND,
                status="degraded" if group.stats.get("degraded") else "ok",
                quality=group.quality or "",
                diameter=group.diameter,
                group_size=len(group.object_ids),
                object_ids=group.object_ids,
                trace_id=trace_id or "",
            )
        return group

    def _dispatch(
        self, algorithm: str, epsilon: float
    ) -> Callable[[QueryContext, Deadline], Group]:
        return dispatch_algorithm(algorithm, epsilon)
