"""Algorithm SKEC — exact smallest keywords enclosing circle (paper §4.2).

By Corollary 1, SKECq is determined by two or three objects of O' on its
boundary.  For each pole ``o`` (Algorithm 1), Procedure findOSKEC
enumerates candidate circles through ``o`` and one or two further objects,
keeps the smallest one enclosing a group that covers the query, and the
best circle over all poles is SKECq.  The enclosed group answers the mCK
query with ratio 2/√3 (Theorem 5).

Worst-case O(|O'| n^3); the paper's and our experiments both show it is
practical only for small m (Figure 9).
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from ..exceptions import GeometryError
from ..geometry.circle import Circle, circle_from_three, circle_from_two
from ..kernels import kernel_mode
from ..kernels import vectorized_enabled as _vectorized_enabled
from .common import QUALITY_APPROX, QUALITY_EXACT, Deadline
from .gkg import gkg
from .query import QueryContext
from .result import Group

__all__ = ["skec", "find_oskec"]


def skec(ctx: QueryContext, deadline: Optional[Deadline] = None) -> Group:
    """Run SKEC: exact SKECq, 2/√3-approximate mCK answer."""
    deadline = deadline or Deadline.unlimited("SKEC")
    with deadline.span(
        "skec.plan",
        kernel=kernel_mode(),
        m=ctx.m,
        poles=len(ctx.relevant_ids),
    ):
        pass
    deadline.count("kernel_vectorized", 1.0 if _vectorized_enabled() else 0.0)

    with deadline.span("gkg.run"):
        greedy = gkg(ctx, deadline)
    current = _mcc_of_rows(ctx, _rows_of(ctx, greedy))

    single = _single_object_answer(ctx)
    if single is not None:
        return single

    # Ascending coverage radius: promising poles first (see SKECa).
    import numpy as np

    pole_order = np.argsort(ctx.cover_radii, kind="stable")
    for pole in (int(p) for p in pole_order):
        deadline.check()
        deadline.count("poles_scanned")
        with deadline.span("skec.pole", pole=pole):
            current = find_oskec(ctx, pole, current, deadline)

    rows = _enclosed_rows(ctx, current)
    group = Group.from_rows(ctx, rows, algorithm="SKEC", enclosing_circle=current)
    # SKECq is exact, so the enclosed group meets the Theorem-5 2/√3 bound.
    deadline.note_bound(QUALITY_APPROX, group.diameter)
    deadline.offer(ctx, rows, group.diameter)
    group.quality = QUALITY_APPROX
    return group


def find_oskec(
    ctx: QueryContext,
    pole_row: int,
    current: Circle,
    deadline: Optional[Deadline] = None,
) -> Circle:
    """Procedure findOSKEC: improve ``current`` with circles through the pole.

    Enumerates the two-object circles (pole + oj as a diameter) and
    three-object circumcircles (pole + oj + om), processing second objects
    in ascending distance from the pole so the search can stop as soon as
    distances exceed the current best diameter.
    """
    deadline = deadline or Deadline.unlimited("SKEC")
    px, py = ctx.location_of_row(pole_row)
    pole = (px, py)

    if current.diameter < ctx.cover_radii[pole_row] * (1.0 - 1e-12):
        # The whole search space around this pole cannot cover the query.
        return current
    if _vectorized_enabled():
        # Each pole is probed once at the current best diameter; a bounded
        # cache (bit-identical prefix of the full sort) skips the full
        # O(n log n) per-pole build.
        cache = ctx.pole_cache_bounded(pole_row, current.diameter)
    else:
        cache = ctx.pole_cache(pole_row)
    k = cache.prefix_length(current.diameter)
    if k == 0 or cache.prefix_union[k] != ctx.full_mask:
        return current

    # Candidates sorted by distance to the pole, excluding the pole itself.
    coords = ctx.coords
    olist: List[Tuple[float, int]] = [
        (float(cache.dists[i]), int(cache.rows[i]))
        for i in range(k)
        if int(cache.rows[i]) != pole_row
    ]

    for j, (dist_j, oj) in enumerate(olist):
        deadline.check()
        if dist_j > current.diameter:
            break
        oj_pt = (coords[oj, 0], coords[oj, 1])

        # Two-object case: segment pole-oj is the circle diameter.
        deadline.count("candidate_circles")
        candidate = circle_from_two(pole, oj_pt)
        current = _try_candidate(ctx, candidate, current, deadline)

        # Three-object case: om strictly closer to the pole than oj.
        for dist_m, om in olist[:j]:
            if dist_m >= dist_j:
                break
            om_pt = (coords[om, 0], coords[om, 1])
            if math.hypot(om_pt[0] - oj_pt[0], om_pt[1] - oj_pt[1]) >= current.diameter:
                continue
            try:
                candidate = circle_from_three(pole, oj_pt, om_pt)
            except GeometryError:
                continue
            deadline.count("candidate_circles")
            current = _try_candidate(ctx, candidate, current, deadline)
    return current


def _try_candidate(
    ctx: QueryContext,
    candidate: Circle,
    current: Circle,
    deadline: Optional[Deadline] = None,
) -> Circle:
    """Adopt ``candidate`` when it is smaller and encloses a covering group."""
    if candidate.diameter >= current.diameter:
        return current
    rows = ctx.rows_within(candidate.cx, candidate.cy, candidate.r)
    if len(rows) and ctx.covers(rows):
        if deadline is not None:
            # Feasible enclosed group, diameter ≤ the candidate circle's.
            deadline.offer(ctx, [int(r) for r in rows], candidate.diameter)
        return candidate
    return current


def _single_object_answer(ctx: QueryContext) -> Optional[Group]:
    """An object covering all query keywords alone is an optimal answer."""
    full = ctx.full_mask
    for row, mask in enumerate(ctx.masks):
        if mask == full:
            x, y = ctx.location_of_row(row)
            group = Group.from_rows(
                ctx,
                [row],
                algorithm="SKEC",
                enclosing_circle=Circle(x, y, 0.0),
            )
            group.quality = QUALITY_EXACT
            return group
    return None


def _rows_of(ctx: QueryContext, group: Group) -> List[int]:
    return [ctx.row_of(oid) for oid in group.object_ids]


def _mcc_of_rows(ctx: QueryContext, rows) -> Circle:
    from ..geometry.mcc import minimum_covering_circle

    return minimum_covering_circle(ctx.coords[r] for r in rows)


def _enclosed_rows(ctx: QueryContext, circle: Circle) -> List[int]:
    rows = ctx.rows_within(circle.cx, circle.cy, circle.r)
    return [int(r) for r in rows]
