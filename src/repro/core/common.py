"""Shared helpers for the algorithm implementations."""

from __future__ import annotations

import time
from typing import Optional

from ..exceptions import AlgorithmTimeout

__all__ = ["Deadline", "SQRT3_FACTOR"]

#: The recurring bound 2/sqrt(3) ≈ 1.1547 (Theorems 4–5, Lemma 2).
SQRT3_FACTOR = 2.0 / (3.0**0.5)


class Deadline:
    """A cooperative wall-clock budget.

    Algorithms poll :meth:`check` at loop boundaries; exceeding the budget
    raises :class:`~repro.exceptions.AlgorithmTimeout`, which the experiment
    harness converts into a "did not finish within threshold" sample — the
    paper's success-rate methodology (§6.2.3).  A ``None`` budget never
    fires and costs one attribute check per poll.
    """

    __slots__ = ("algorithm", "budget", "_expires_at")

    def __init__(self, algorithm: str, budget_seconds: Optional[float] = None):
        self.algorithm = algorithm
        self.budget = budget_seconds
        if budget_seconds is None:
            self._expires_at = None
        else:
            self._expires_at = time.monotonic() + budget_seconds

    def check(self) -> None:
        if self._expires_at is not None and time.monotonic() > self._expires_at:
            raise AlgorithmTimeout(self.algorithm, self.budget or 0.0)

    @classmethod
    def unlimited(cls, algorithm: str = "") -> "Deadline":
        return cls(algorithm, None)
