"""Shared helpers for the algorithm implementations."""

from __future__ import annotations

import time
from typing import Dict, Optional, Sequence

from ..exceptions import AlgorithmTimeout
from ..observability import tracer as _tracing
from ..testing import faults as _faults

__all__ = [
    "Deadline",
    "Instrumentation",
    "SQRT3_FACTOR",
    "instrumentation_span",
    "QUALITY_EXACT",
    "QUALITY_APPROX",
    "QUALITY_GREEDY",
    "QUALITY_PARTIAL",
    "QUALITY_RANK",
    "quality_ratio_bound",
]

#: The recurring bound 2/sqrt(3) ≈ 1.1547 (Theorems 4–5, Lemma 2).
SQRT3_FACTOR = 2.0 / (3.0**0.5)


# --------------------------------------------------------------------- #
# Answer-quality tags.  A degraded (anytime) answer returned on timeout
# carries the strongest certificate that held when the budget expired.
# --------------------------------------------------------------------- #

#: Certified optimal (EXACT completed, or a zero-diameter group).
QUALITY_EXACT = "exact"
#: Within 2/√3 + ε of optimal (a converged SKECa-family bound, Theorem 6).
QUALITY_APPROX = "approx_2sqrt3"
#: Within 2× of optimal (the completed GKG group, Theorem 2).
QUALITY_GREEDY = "greedy_2x"
#: Feasible — covers every query keyword — but with no ratio certificate
#: (e.g. GKG interrupted before all t_inf anchors were tried).
QUALITY_PARTIAL = "partial"

#: Stronger certificates rank higher; used to decide which incumbent to keep.
QUALITY_RANK = {
    QUALITY_PARTIAL: 0,
    QUALITY_GREEDY: 1,
    QUALITY_APPROX: 2,
    QUALITY_EXACT: 3,
}


def quality_ratio_bound(quality: str, epsilon: float = 0.0) -> float:
    """Certified worst-case ratio δ(G)/δ(G_opt) for a quality tag."""
    if quality == QUALITY_EXACT:
        return 1.0
    if quality == QUALITY_APPROX:
        return SQRT3_FACTOR + epsilon
    if quality == QUALITY_GREEDY:
        return 2.0
    return float("inf")


class Instrumentation:
    """Per-query counter, timing and span sink threaded through the algorithms.

    The algorithms already report summary counters on the returned
    :class:`~repro.core.result.Group`; an ``Instrumentation`` object is
    additionally updated *while* the algorithm runs, so a caller observes
    work done even when the run ends in an
    :class:`~repro.exceptions.AlgorithmTimeout`.  The serving layer turns
    one of these into a :class:`~repro.serving.stats.QueryStats` record.

    Counters are plain floats under well-known names: ``circle_scans``,
    ``binary_steps``, ``candidate_circles``, ``pruned_poles``,
    ``anchors``, ``poles_scanned``.

    An optional :class:`~repro.observability.tracer.Tracer` may be
    attached (``tracer`` slot); :meth:`span` then opens nested spans
    around algorithm phases.  With no tracer attached (and none installed
    globally) span calls return the shared no-op span — near-zero cost.
    """

    __slots__ = ("counters", "timings", "tracer")

    def __init__(self, tracer=None) -> None:
        self.counters: Dict[str, float] = {}
        self.timings: Dict[str, float] = {}
        self.tracer = tracer

    def count(self, name: str, n: float = 1.0) -> None:
        self.counters[name] = self.counters.get(name, 0.0) + n

    def record_max(self, name: str, value: float) -> None:
        """Keep the largest observed value (e.g. ``search_depth_max``)."""
        current = self.counters.get(name, 0.0)
        if value > current:
            self.counters[name] = float(value)

    def span(self, name: str, **attributes):
        """Open a span on the attached (or global) tracer; no-op otherwise."""
        tracer = self.tracer
        if tracer is None:
            tracer = _tracing._GLOBAL_TRACER
            if tracer is None:
                return _tracing.NULL_SPAN
        return tracer.span(name, **attributes)

    # -- cross-boundary counter transport ------------------------------- #

    def snapshot(self) -> Dict[str, float]:
        """Copy of the counters, for later :meth:`deltas_since`."""
        return dict(self.counters)

    def deltas_since(self, snapshot: Dict[str, float]) -> Dict[str, float]:
        """Counter increments since ``snapshot`` was taken.

        The EXACT process-pool workers report *deltas* rather than raw
        totals, so a reused worker (whose engine, caches and counters
        outlive one task) never leaks earlier queries' work into the
        parent's registry — and a fresh worker reports the same numbers
        either way.
        """
        deltas: Dict[str, float] = {}
        for name, value in self.counters.items():
            diff = value - snapshot.get(name, 0.0)
            if diff != 0.0:
                deltas[name] = diff
        return deltas

    def merge_counters(self, deltas: Dict[str, float]) -> None:
        """Fold another instrumentation's counter *deltas* in (summing)."""
        for name, value in deltas.items():
            self.counters[name] = self.counters.get(name, 0.0) + float(value)

    #: Group stats that are parameters rather than work counters; they
    #: would be meaningless summed across queries.
    _NON_COUNTERS = frozenset({"alpha"})

    def merge_group_stats(self, stats: Dict[str, float]) -> None:
        """Fold a finished group's summary counters in (keep the larger).

        Counters incremented live and counters reported on the group
        describe the same work; ``max`` avoids double counting while still
        capturing counters only one of the two paths knows about.
        """
        for name, value in stats.items():
            if name in self._NON_COUNTERS:
                continue
            self.counters[name] = max(self.counters.get(name, 0.0), float(value))

    def as_dict(self) -> Dict[str, float]:
        merged: Dict[str, float] = dict(self.counters)
        merged.update(self.timings)
        return merged


def instrumentation_span(instrumentation: Optional[Instrumentation], name: str, **attributes):
    """Span via an instrumentation's tracer, the global tracer, or no-op."""
    if instrumentation is not None:
        return instrumentation.span(name, **attributes)
    tracer = _tracing._GLOBAL_TRACER
    if tracer is None:
        return _tracing.NULL_SPAN
    return tracer.span(name, **attributes)


class Deadline:
    """A cooperative wall-clock budget with an anytime incumbent channel.

    Algorithms poll :meth:`check` at loop boundaries; exceeding the budget
    raises :class:`~repro.exceptions.AlgorithmTimeout`, which the experiment
    harness converts into a "did not finish within threshold" sample — the
    paper's success-rate methodology (§6.2.3).  A ``None`` budget never
    fires and costs one attribute check per poll.

    **Incumbent channel.**  As an algorithm improves its best feasible
    group it publishes the O'-rows through :meth:`offer` (cheap: a list
    copy, no :class:`~repro.core.result.Group` construction).  On expiry
    the stored incumbent is materialized and attached to the raised
    :class:`~repro.exceptions.AlgorithmTimeout` together with a quality
    tag, so callers running in degraded mode can answer with the best
    feasible group instead of failing.  Quality is derived from bounds the
    algorithm certifies along the way via :meth:`note_bound`: once GKG
    completes, any incumbent no larger than the greedy diameter is a
    certified 2-approximation; once a SKECa-family search converges, the
    2/√3 + ε certificate applies below its diameter.

    A deadline optionally carries an :class:`Instrumentation` sink; the
    algorithms report progress counters through :meth:`count` and open
    trace spans through :meth:`span`, both no-ops when no sink (or tracer)
    is attached.

    Fault injection: :meth:`check` consults the
    ``core.deadline.clock`` site of :mod:`repro.testing.faults`, so tests
    can skew the observed clock and force expiry at an exact poll.
    """

    __slots__ = (
        "algorithm",
        "budget",
        "instrumentation",
        "_expires_at",
        "_offer_ctx",
        "_offer_rows",
        "_offer_diameter",
        "_offer_quality",
        "_greedy_bound",
        "_approx_bound",
    )

    def __init__(
        self,
        algorithm: str,
        budget_seconds: Optional[float] = None,
        instrumentation: Optional[Instrumentation] = None,
    ):
        self.algorithm = algorithm
        self.budget = budget_seconds
        self.instrumentation = instrumentation
        if budget_seconds is None:
            self._expires_at = None
        else:
            self._expires_at = time.monotonic() + budget_seconds
        self._offer_ctx = None
        self._offer_rows: Optional[list] = None
        self._offer_diameter = float("inf")
        self._offer_quality: Optional[str] = None
        self._greedy_bound = float("inf")
        self._approx_bound = float("inf")

    def check(self) -> None:
        expires_at = self._expires_at
        if expires_at is None:
            return
        now = time.monotonic()
        if _faults.ACTIVE:
            now += _faults.clock_skew()
        if now > expires_at:
            raise self.timeout()

    # -- anytime incumbent channel -------------------------------------- #

    def note_bound(self, quality: str, diameter: float) -> None:
        """Record a certified approximation bound reached by the run.

        ``note_bound(QUALITY_GREEDY, d)`` certifies that any feasible
        group with diameter ≤ ``d`` is within 2× of optimal (Theorem 2);
        ``note_bound(QUALITY_APPROX, d)`` certifies 2/√3 + ε below ``d``
        (Theorem 6 / Lemma 2).  Later :meth:`offer` calls use the tightest
        applicable certificate automatically.
        """
        if quality == QUALITY_GREEDY:
            if diameter < self._greedy_bound:
                self._greedy_bound = diameter
        elif quality in (QUALITY_APPROX, QUALITY_EXACT):
            if diameter < self._approx_bound:
                self._approx_bound = diameter
            # An approx bound is also at least as strong as a greedy one.
            if diameter < self._greedy_bound:
                self._greedy_bound = diameter

    def offer(
        self,
        ctx,
        rows: Sequence[int],
        diameter: float,
        quality: Optional[str] = None,
    ) -> None:
        """Publish a feasible incumbent (O'-rows of ``ctx``).

        ``diameter`` may be an upper bound (e.g. the enclosing-circle
        diameter); the true group diameter is recomputed if the incumbent
        is ever materialized.  The stored incumbent is replaced when the
        new offer is smaller, or equal-sized with a stronger certificate.
        """
        if quality is None:
            # An infinite bound means "never certified" — it must not
            # confer a tag, so each comparison requires a finite bound.
            if diameter <= 0.0:
                quality = QUALITY_EXACT
            elif diameter <= self._approx_bound < float("inf"):
                quality = QUALITY_APPROX
            elif diameter <= self._greedy_bound < float("inf"):
                quality = QUALITY_GREEDY
            else:
                quality = QUALITY_PARTIAL
        if self._offer_rows is not None:
            if diameter > self._offer_diameter:
                return
            if diameter == self._offer_diameter and QUALITY_RANK.get(
                quality, 0
            ) <= QUALITY_RANK.get(self._offer_quality or "", 0):
                return
        self._offer_ctx = ctx
        self._offer_rows = list(rows)
        self._offer_diameter = diameter
        self._offer_quality = quality

    def incumbent(self):
        """Materialize the best offered group, or ``(None, "")``.

        Returns ``(group, quality)``; the group's quality tag and a
        re-derived certificate are applied using the group's *actual*
        diameter (offers may carry conservative upper bounds).
        """
        if self._offer_rows is None or self._offer_ctx is None:
            return None, ""
        from .result import Group  # local import: result imports nothing back

        group = Group.from_rows(
            self._offer_ctx, self._offer_rows, algorithm=self.algorithm
        )
        quality = self._offer_quality or QUALITY_PARTIAL
        # The recomputed diameter may clear a stronger certificate than
        # the conservative offer bound did.
        if group.diameter <= 0.0:
            quality = QUALITY_EXACT
        elif group.diameter <= self._approx_bound < float("inf"):
            if QUALITY_RANK[QUALITY_APPROX] > QUALITY_RANK.get(quality, 0):
                quality = QUALITY_APPROX
        elif group.diameter <= self._greedy_bound < float("inf"):
            if QUALITY_RANK[QUALITY_GREEDY] > QUALITY_RANK.get(quality, 0):
                quality = QUALITY_GREEDY
        group.quality = quality
        return group, quality

    def timeout(self) -> AlgorithmTimeout:
        """Build the expiry exception, materializing the incumbent."""
        group, quality = self.incumbent()
        return AlgorithmTimeout(
            self.algorithm, self.budget or 0.0, incumbent=group, quality=quality
        )

    def count(self, name: str, n: float = 1.0) -> None:
        """Report algorithm work to the attached instrumentation, if any."""
        if self.instrumentation is not None:
            self.instrumentation.count(name, n)

    def record_max(self, name: str, value: float) -> None:
        if self.instrumentation is not None:
            self.instrumentation.record_max(name, value)

    def span(self, name: str, **attributes):
        """Open a trace span for an algorithm phase (no-op when untraced)."""
        instr = self.instrumentation
        if instr is not None:
            return instr.span(name, **attributes)
        tracer = _tracing._GLOBAL_TRACER
        if tracer is None:
            return _tracing.NULL_SPAN
        return tracer.span(name, **attributes)

    @classmethod
    def unlimited(cls, algorithm: str = "") -> "Deadline":
        return cls(algorithm, None)
