"""Shared helpers for the algorithm implementations."""

from __future__ import annotations

import time
from typing import Dict, Optional

from ..exceptions import AlgorithmTimeout
from ..observability import tracer as _tracing

__all__ = [
    "Deadline",
    "Instrumentation",
    "SQRT3_FACTOR",
    "instrumentation_span",
]

#: The recurring bound 2/sqrt(3) ≈ 1.1547 (Theorems 4–5, Lemma 2).
SQRT3_FACTOR = 2.0 / (3.0**0.5)


class Instrumentation:
    """Per-query counter, timing and span sink threaded through the algorithms.

    The algorithms already report summary counters on the returned
    :class:`~repro.core.result.Group`; an ``Instrumentation`` object is
    additionally updated *while* the algorithm runs, so a caller observes
    work done even when the run ends in an
    :class:`~repro.exceptions.AlgorithmTimeout`.  The serving layer turns
    one of these into a :class:`~repro.serving.stats.QueryStats` record.

    Counters are plain floats under well-known names: ``circle_scans``,
    ``binary_steps``, ``candidate_circles``, ``pruned_poles``,
    ``anchors``, ``poles_scanned``.

    An optional :class:`~repro.observability.tracer.Tracer` may be
    attached (``tracer`` slot); :meth:`span` then opens nested spans
    around algorithm phases.  With no tracer attached (and none installed
    globally) span calls return the shared no-op span — near-zero cost.
    """

    __slots__ = ("counters", "timings", "tracer")

    def __init__(self, tracer=None) -> None:
        self.counters: Dict[str, float] = {}
        self.timings: Dict[str, float] = {}
        self.tracer = tracer

    def count(self, name: str, n: float = 1.0) -> None:
        self.counters[name] = self.counters.get(name, 0.0) + n

    def record_max(self, name: str, value: float) -> None:
        """Keep the largest observed value (e.g. ``search_depth_max``)."""
        current = self.counters.get(name, 0.0)
        if value > current:
            self.counters[name] = float(value)

    def span(self, name: str, **attributes):
        """Open a span on the attached (or global) tracer; no-op otherwise."""
        tracer = self.tracer
        if tracer is None:
            tracer = _tracing._GLOBAL_TRACER
            if tracer is None:
                return _tracing.NULL_SPAN
        return tracer.span(name, **attributes)

    # -- cross-boundary counter transport ------------------------------- #

    def snapshot(self) -> Dict[str, float]:
        """Copy of the counters, for later :meth:`deltas_since`."""
        return dict(self.counters)

    def deltas_since(self, snapshot: Dict[str, float]) -> Dict[str, float]:
        """Counter increments since ``snapshot`` was taken.

        The EXACT process-pool workers report *deltas* rather than raw
        totals, so a reused worker (whose engine, caches and counters
        outlive one task) never leaks earlier queries' work into the
        parent's registry — and a fresh worker reports the same numbers
        either way.
        """
        deltas: Dict[str, float] = {}
        for name, value in self.counters.items():
            diff = value - snapshot.get(name, 0.0)
            if diff != 0.0:
                deltas[name] = diff
        return deltas

    def merge_counters(self, deltas: Dict[str, float]) -> None:
        """Fold another instrumentation's counter *deltas* in (summing)."""
        for name, value in deltas.items():
            self.counters[name] = self.counters.get(name, 0.0) + float(value)

    #: Group stats that are parameters rather than work counters; they
    #: would be meaningless summed across queries.
    _NON_COUNTERS = frozenset({"alpha"})

    def merge_group_stats(self, stats: Dict[str, float]) -> None:
        """Fold a finished group's summary counters in (keep the larger).

        Counters incremented live and counters reported on the group
        describe the same work; ``max`` avoids double counting while still
        capturing counters only one of the two paths knows about.
        """
        for name, value in stats.items():
            if name in self._NON_COUNTERS:
                continue
            self.counters[name] = max(self.counters.get(name, 0.0), float(value))

    def as_dict(self) -> Dict[str, float]:
        merged: Dict[str, float] = dict(self.counters)
        merged.update(self.timings)
        return merged


def instrumentation_span(instrumentation: Optional[Instrumentation], name: str, **attributes):
    """Span via an instrumentation's tracer, the global tracer, or no-op."""
    if instrumentation is not None:
        return instrumentation.span(name, **attributes)
    tracer = _tracing._GLOBAL_TRACER
    if tracer is None:
        return _tracing.NULL_SPAN
    return tracer.span(name, **attributes)


class Deadline:
    """A cooperative wall-clock budget.

    Algorithms poll :meth:`check` at loop boundaries; exceeding the budget
    raises :class:`~repro.exceptions.AlgorithmTimeout`, which the experiment
    harness converts into a "did not finish within threshold" sample — the
    paper's success-rate methodology (§6.2.3).  A ``None`` budget never
    fires and costs one attribute check per poll.

    A deadline optionally carries an :class:`Instrumentation` sink; the
    algorithms report progress counters through :meth:`count` and open
    trace spans through :meth:`span`, both no-ops when no sink (or tracer)
    is attached.
    """

    __slots__ = ("algorithm", "budget", "instrumentation", "_expires_at")

    def __init__(
        self,
        algorithm: str,
        budget_seconds: Optional[float] = None,
        instrumentation: Optional[Instrumentation] = None,
    ):
        self.algorithm = algorithm
        self.budget = budget_seconds
        self.instrumentation = instrumentation
        if budget_seconds is None:
            self._expires_at = None
        else:
            self._expires_at = time.monotonic() + budget_seconds

    def check(self) -> None:
        if self._expires_at is not None and time.monotonic() > self._expires_at:
            raise AlgorithmTimeout(self.algorithm, self.budget or 0.0)

    def count(self, name: str, n: float = 1.0) -> None:
        """Report algorithm work to the attached instrumentation, if any."""
        if self.instrumentation is not None:
            self.instrumentation.count(name, n)

    def record_max(self, name: str, value: float) -> None:
        if self.instrumentation is not None:
            self.instrumentation.record_max(name, value)

    def span(self, name: str, **attributes):
        """Open a trace span for an algorithm phase (no-op when untraced)."""
        instr = self.instrumentation
        if instr is not None:
            return instr.span(name, **attributes)
        tracer = _tracing._GLOBAL_TRACER
        if tracer is None:
            return _tracing.NULL_SPAN
        return tracer.span(name, **attributes)

    @classmethod
    def unlimited(cls, algorithm: str = "") -> "Deadline":
        return cls(algorithm, None)
