"""The paper's contribution: mCK query model and the five algorithms."""

from .common import SQRT3_FACTOR, Deadline, Instrumentation
from .engine import ALGORITHMS, MCKEngine, canonical_algorithm
from .exact import exact
from .gkg import gkg
from .objects import Dataset, GeoObject
from .query import MCKQuery, QueryContext, compile_query
from .result import Group
from .skec import skec
from .skeca import DEFAULT_EPSILON, skeca
from .skecaplus import SkecaPlusState, skeca_plus, skeca_plus_state

__all__ = [
    "SQRT3_FACTOR",
    "Deadline",
    "Instrumentation",
    "ALGORITHMS",
    "MCKEngine",
    "canonical_algorithm",
    "exact",
    "gkg",
    "Dataset",
    "GeoObject",
    "MCKQuery",
    "QueryContext",
    "compile_query",
    "Group",
    "skec",
    "skeca",
    "DEFAULT_EPSILON",
    "SkecaPlusState",
    "skeca_plus",
    "skeca_plus_state",
]
