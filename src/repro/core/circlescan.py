"""Procedure circleScan and its exhaustive-search variant (paper §4.3.2, §5.1).

Given a pole object ``o`` and a diameter ``D``, a circle of diameter ``D``
whose boundary passes through ``o`` is rotated around ``o``.  An object at
distance ``d <= D`` from the pole is inside the rotating closed disc
exactly while the circle-centre polar angle lies within
``arccos(d / D)`` of the object's own polar angle (Figure 5 of the paper;
see :mod:`repro.geometry.sweep` for the derivation).  Maintaining a keyword
frequency table across the sorted enter/exit events answers, in O(n log n):

* :func:`circle_scan` — does *some* position enclose a group covering all
  query keywords?  (The binary-search oracle of SKECa / SKECa+.)
* :func:`circle_scan_candidates` — *every* distinct enclosed set that
  covers the query, maximal under inclusion.  (The candidate circles that
  Procedure circleScanSearch of EXACT exhaustively searches.)

Event construction is vectorised over the sweeping area; only the event
walk itself (early-terminating for :func:`circle_scan`) runs in Python.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from ..testing import faults as _faults
from .query import QueryContext

__all__ = ["circle_scan", "circle_scan_candidates", "sweeping_area"]

_TWO_PI = 2.0 * math.pi


def sweeping_area(ctx: QueryContext, pole_row: int, diameter: float) -> np.ndarray:
    """Rows of O' within (closed) distance ``diameter`` of the pole.

    This is the paper's Figure-4 sweeping area: any object enclosed by some
    rotation position lies within ``D`` of the pole.
    """
    return ctx.pole_cache(pole_row).rows_within(diameter)


def _sweep_events(ctx: QueryContext, pole_row: int, diameter: float):
    """Shared setup: prechecks + vectorised enter/exit event arrays.

    Returns ``None`` when the sweeping area cannot cover the query, else
    ``(inside_rows, angles, kinds, event_rows)`` where ``inside_rows`` are
    the rows inside the disc at centre angle 0 (including always-inside
    rows at the pole itself), and events are sorted by angle with enters
    (kind 1) before exits (kind 0) on ties — the enclosing disc is closed,
    so at a tie angle both the entering and the exiting object are
    enclosed, and an object at distance exactly ``D`` (a degenerate
    single-angle interval) must be entered before it is exited.
    """
    if diameter < ctx.cover_radii[pole_row] * (1.0 - 1e-12):
        # Even the whole sweeping area cannot cover the query: the rotation
        # (paper: "the checking on o is thus avoided") is skipped.
        return None
    cache = ctx.pole_cache(pole_row)
    k = cache.prefix_length(diameter)
    if k == 0 or cache.prefix_union[k] != ctx.full_mask:
        return None

    rows = cache.rows[:k]
    dists = cache.dists[:k]
    pole = ctx.coords[pole_row]

    # Rows essentially at the pole are inside at every rotation position.
    moving = dists > max(1e-12, 1e-15 * diameter)
    always_rows = rows[~moving]
    mrows = rows[moving]
    if len(mrows) == 0:
        return list(map(int, always_rows)), _EMPTY, _EMPTY_KINDS, _EMPTY_ROWS

    pts = ctx.coords[mrows]
    delta_x = pts[:, 0] - pole[0]
    delta_y = pts[:, 1] - pole[1]
    ratio = np.minimum(dists[moving] / diameter, 1.0)
    beta = np.arccos(ratio)
    phi = np.arctan2(delta_y, delta_x)
    enter = np.mod(phi - beta, _TWO_PI)
    exit_ = np.mod(phi + beta, _TWO_PI)

    # Inside at angle 0: the interval wraps (enter > exit) or starts at 0.
    wraps = (enter > exit_) | (enter == 0.0)
    inside_rows = [int(r) for r in always_rows]
    inside_rows.extend(int(r) for r in mrows[wraps])

    angles = np.concatenate([enter, exit_])
    kinds = np.concatenate(
        [np.ones(len(mrows), dtype=np.int8), np.zeros(len(mrows), dtype=np.int8)]
    )
    event_rows = np.concatenate([mrows, mrows])
    order = np.lexsort((-kinds, angles))
    return inside_rows, angles[order], kinds[order], event_rows[order]


_EMPTY = np.empty(0, dtype=np.float64)
_EMPTY_KINDS = np.empty(0, dtype=np.int8)
_EMPTY_ROWS = np.empty(0, dtype=np.intp)


def circle_scan(
    ctx: QueryContext, pole_row: int, diameter: float
) -> Optional[Tuple[List[int], float]]:
    """Find one o-across keywords enclosing circle of diameter ``diameter``.

    Returns ``(rows, theta)`` where ``rows`` are the O' rows enclosed at
    centre angle ``theta`` (radians around the pole) and together cover all
    query keywords, or ``None`` when no rotation position works — by
    Property 1 this also rules out every smaller diameter at this pole.
    """
    # Chaos site: tests arm a delay here to model a stalled sweep.
    _faults.fire("core.circlescan", pole=pole_row, diameter=diameter)
    setup = _sweep_events(ctx, pole_row, diameter)
    if setup is None:
        return None
    inside_rows, angles, kinds, event_rows = setup
    masks = ctx.masks
    full = ctx.full_mask

    m = full.bit_length()
    counts = [0] * m
    covered = 0
    inside = set(inside_rows)
    for r in inside:
        covered = _add_mask(masks[r], counts, covered)
    if covered == full:
        return sorted(inside), 0.0

    for i in range(len(angles)):
        r = int(event_rows[i])
        if kinds[i]:  # enter
            if r in inside:
                continue
            inside.add(r)
            covered = _add_mask(masks[r], counts, covered)
            if covered == full:
                return sorted(inside), float(angles[i])
        else:  # exit
            if r not in inside:
                continue
            inside.discard(r)
            covered = _remove_mask(masks[r], counts, covered)
    return None


def circle_scan_candidates(
    ctx: QueryContext, pole_row: int, diameter: float
) -> List[List[int]]:
    """All maximal enclosed sets covering the query over the full rotation.

    Unlike :func:`circle_scan`, the sweep continues past the first hit and
    snapshots the enclosed set at every event position where coverage
    holds.  Snapshots that are subsets of other snapshots are dropped: the
    exhaustive search over a superset subsumes the search over its subsets.
    """
    setup = _sweep_events(ctx, pole_row, diameter)
    if setup is None:
        return []
    inside_rows, angles, kinds, event_rows = setup
    masks = ctx.masks
    full = ctx.full_mask

    m = full.bit_length()
    counts = [0] * m
    covered = 0
    inside = set(inside_rows)
    for r in inside:
        covered = _add_mask(masks[r], counts, covered)

    snapshots: set = set()
    if covered == full:
        snapshots.add(frozenset(inside))
    for i in range(len(angles)):
        r = int(event_rows[i])
        if kinds[i]:
            if r in inside:
                continue
            inside.add(r)
            covered = _add_mask(masks[r], counts, covered)
        else:
            if r not in inside:
                continue
            inside.discard(r)
            covered = _remove_mask(masks[r], counts, covered)
        if covered == full:
            snapshots.add(frozenset(inside))

    return _maximal_sets(snapshots)


def _maximal_sets(snapshots) -> List[List[int]]:
    """Drop snapshots strictly contained in another; return sorted lists."""
    ordered = sorted(snapshots, key=len, reverse=True)
    maximal: List[frozenset] = []
    for candidate in ordered:
        if any(candidate <= kept for kept in maximal):
            continue
        maximal.append(candidate)
    return [sorted(s) for s in maximal]


def _add_mask(mask: int, counts: List[int], covered: int) -> int:
    while mask:
        low = mask & -mask
        bit_pos = low.bit_length() - 1
        counts[bit_pos] += 1
        if counts[bit_pos] == 1:
            covered |= low
        mask ^= low
    return covered


def _remove_mask(mask: int, counts: List[int], covered: int) -> int:
    while mask:
        low = mask & -mask
        bit_pos = low.bit_length() - 1
        counts[bit_pos] -= 1
        if counts[bit_pos] == 0:
            covered &= ~low
        mask ^= low
    return covered
