"""Procedure circleScan and its exhaustive-search variant (paper §4.3.2, §5.1).

Given a pole object ``o`` and a diameter ``D``, a circle of diameter ``D``
whose boundary passes through ``o`` is rotated around ``o``.  An object at
distance ``d <= D`` from the pole is inside the rotating closed disc
exactly while the circle-centre polar angle lies within
``arccos(d / D)`` of the object's own polar angle (Figure 5 of the paper;
see :mod:`repro.geometry.sweep` for the derivation).  Maintaining a keyword
frequency table across the sorted enter/exit events answers, in O(n log n):

* :func:`circle_scan` — does *some* position enclose a group covering all
  query keywords?  (The binary-search oracle of SKECa / SKECa+.)
* :func:`circle_scan_candidates` — *every* distinct enclosed set that
  covers the query, maximal under inclusion.  (The candidate circles that
  Procedure circleScanSearch of EXACT exhaustively searches.)

Event construction is vectorised over the sweeping area.  The event walk
itself has two implementations selected by :mod:`repro.kernels`: the
columnar path turns the per-keyword frequency table into an ``(events, m)``
delta matrix and scans its running column sums in chunked batches (early
terminating per chunk), while the object path keeps the original
per-event Python loop as the reference oracle.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from ..kernels import vectorized_enabled
from ..testing import faults as _faults
from .query import QueryContext

__all__ = ["circle_scan", "circle_scan_candidates", "sweeping_area"]

_TWO_PI = 2.0 * math.pi

#: Events per batch in the columnar walk: large enough to amortise numpy
#: dispatch, small enough that a first-hit early exit skips most work.
_EVENT_CHUNK = 2048


def sweeping_area(ctx: QueryContext, pole_row: int, diameter: float) -> np.ndarray:
    """Rows of O' within (closed) distance ``diameter`` of the pole.

    This is the paper's Figure-4 sweeping area: any object enclosed by some
    rotation position lies within ``D`` of the pole.
    """
    return ctx.pole_cache(pole_row).rows_within(diameter)


def _sweep_events(ctx: QueryContext, pole_row: int, diameter: float):
    """Shared setup: prechecks + vectorised enter/exit event arrays.

    Returns ``None`` when the sweeping area cannot cover the query, else
    ``(inside_rows, angles, kinds, event_rows)`` where ``inside_rows`` are
    the rows inside the disc at centre angle 0 (including always-inside
    rows at the pole itself), and events are sorted by angle with enters
    (kind 1) before exits (kind 0) on ties — the enclosing disc is closed,
    so at a tie angle both the entering and the exiting object are
    enclosed, and an object at distance exactly ``D`` (a degenerate
    single-angle interval) must be entered before it is exited.

    The columnar path reads the pole cache's precomputed polar angles and
    drops enter events at angle exactly 0 (those rows are already in
    ``inside_rows``, so the event is a no-op the batched walk would
    double-count); the object path recomputes ``arctan2`` per probe and
    keeps the redundant events, exactly as the original implementation did
    (its in-set guard makes them no-ops).  Both paths emit the same event
    permutation: a stable sort of angles with enters listed first equals
    the original ``lexsort((-kinds, angles))``.
    """
    if diameter < ctx.cover_radii[pole_row] * (1.0 - 1e-12):
        # Even the whole sweeping area cannot cover the query: the rotation
        # (paper: "the checking on o is thus avoided") is skipped.
        return None

    if not vectorized_enabled():
        cache = ctx.pole_cache(pole_row)
        k = cache.prefix_length(diameter)
        if k == 0 or cache.prefix_union[k] != ctx.full_mask:
            return None
        return _sweep_events_object(
            ctx, pole_row, cache.rows[:k], cache.dists[:k], diameter
        )

    view = ctx.sweep_view(pole_row, diameter)
    if view is None:
        return None
    rows, dists, view_phis = view

    # Rows essentially at the pole are inside at every rotation position;
    # distances are sorted ascending, so they form a prefix.
    still = int(np.searchsorted(dists, max(1e-12, 1e-15 * diameter), side="right"))
    always_rows = rows[:still]
    mrows = rows[still:]
    if len(mrows) == 0:
        return list(map(int, always_rows)), _EMPTY, _EMPTY_KINDS, _EMPTY_ROWS

    ratio = np.minimum(dists[still:] / diameter, 1.0)
    beta = np.arccos(ratio)
    phi = view_phis[still:]
    enter = np.mod(phi - beta, _TWO_PI)
    exit_ = np.mod(phi + beta, _TWO_PI)

    # Inside at angle 0: the interval wraps (enter > exit) or starts at 0.
    at_zero = enter == 0.0
    wraps = (enter > exit_) | at_zero
    inside_rows = [int(r) for r in always_rows]
    inside_rows.extend(int(r) for r in mrows[wraps])

    if at_zero.any():
        live = ~at_zero
        angles = np.concatenate([enter[live], exit_])
        kinds = np.concatenate(
            [
                np.ones(int(live.sum()), dtype=np.int8),
                np.zeros(len(mrows), dtype=np.int8),
            ]
        )
        event_rows = np.concatenate([mrows[live], mrows])
    else:
        angles = np.concatenate([enter, exit_])
        kinds = np.concatenate(
            [np.ones(len(mrows), dtype=np.int8), np.zeros(len(mrows), dtype=np.int8)]
        )
        event_rows = np.concatenate([mrows, mrows])
    # Enters precede exits in the unsorted arrays, so a stable sort on
    # angle alone yields the enter-before-exit tie order.
    order = np.argsort(angles, kind="stable")
    return inside_rows, angles[order], kinds[order], event_rows[order]


def _sweep_events_object(
    ctx: QueryContext,
    pole_row: int,
    rows: np.ndarray,
    dists: np.ndarray,
    diameter: float,
):
    """Object-path event construction: the original per-probe sequence."""
    pole = ctx.coords[pole_row]

    moving = dists > max(1e-12, 1e-15 * diameter)
    always_rows = rows[~moving]
    mrows = rows[moving]
    if len(mrows) == 0:
        return list(map(int, always_rows)), _EMPTY, _EMPTY_KINDS, _EMPTY_ROWS

    pts = ctx.coords[mrows]
    delta_x = pts[:, 0] - pole[0]
    delta_y = pts[:, 1] - pole[1]
    ratio = np.minimum(dists[moving] / diameter, 1.0)
    beta = np.arccos(ratio)
    phi = np.arctan2(delta_y, delta_x)
    enter = np.mod(phi - beta, _TWO_PI)
    exit_ = np.mod(phi + beta, _TWO_PI)

    wraps = (enter > exit_) | (enter == 0.0)
    inside_rows = [int(r) for r in always_rows]
    inside_rows.extend(int(r) for r in mrows[wraps])

    angles = np.concatenate([enter, exit_])
    kinds = np.concatenate(
        [np.ones(len(mrows), dtype=np.int8), np.zeros(len(mrows), dtype=np.int8)]
    )
    event_rows = np.concatenate([mrows, mrows])
    order = np.lexsort((-kinds, angles))
    return inside_rows, angles[order], kinds[order], event_rows[order]


_EMPTY = np.empty(0, dtype=np.float64)
_EMPTY_KINDS = np.empty(0, dtype=np.int8)
_EMPTY_ROWS = np.empty(0, dtype=np.intp)


def circle_scan(
    ctx: QueryContext, pole_row: int, diameter: float
) -> Optional[Tuple[List[int], float]]:
    """Find one o-across keywords enclosing circle of diameter ``diameter``.

    Returns ``(rows, theta)`` where ``rows`` are the O' rows enclosed at
    centre angle ``theta`` (radians around the pole) and together cover all
    query keywords, or ``None`` when no rotation position works — by
    Property 1 this also rules out every smaller diameter at this pole.
    """
    # Chaos site: tests arm a delay here to model a stalled sweep.
    _faults.fire("core.circlescan", pole=pole_row, diameter=diameter)
    setup = _sweep_events(ctx, pole_row, diameter)
    if setup is None:
        return None
    inside_rows, angles, kinds, event_rows = setup

    bits = ctx.bits_matrix if vectorized_enabled() else None
    if bits is not None:
        return _first_cover_batched(ctx, bits, inside_rows, angles, kinds, event_rows)
    return _first_cover_scalar(ctx, inside_rows, angles, kinds, event_rows)


def _first_cover_batched(
    ctx: QueryContext,
    bits: np.ndarray,
    inside_rows: List[int],
    angles: np.ndarray,
    kinds: np.ndarray,
    event_rows: np.ndarray,
) -> Optional[Tuple[List[int], float]]:
    """Columnar event walk: chunked running per-keyword counts.

    ``bits`` is the O' ``(n, m)`` 0/1 keyword matrix; each event batch
    contributes a signed delta block whose column-wise cumulative sum is
    the per-keyword frequency table at every event position in the batch.
    Coverage holds where all m running counts are positive; the first such
    position is the answer, and earlier batches bail out without touching
    the rest of the sweep.
    """
    inside_arr = np.asarray(inside_rows, dtype=np.intp)
    m = bits.shape[1]
    if len(inside_arr):
        counts = bits[inside_arr].sum(axis=0, dtype=np.int32)
        if int((counts > 0).sum()) == m:
            return sorted(inside_rows), 0.0
    else:
        counts = np.zeros(m, dtype=np.int32)

    n_events = len(angles)
    if n_events == 0:
        return None
    signs = kinds.astype(np.int32) * 2 - 1
    for start in range(0, n_events, _EVENT_CHUNK):
        stop = min(start + _EVENT_CHUNK, n_events)
        deltas = bits[event_rows[start:stop]].astype(np.int32)
        deltas *= signs[start:stop, None]
        running = np.cumsum(deltas, axis=0)
        running += counts
        covered = (running > 0).all(axis=1)
        hits = np.flatnonzero(covered)
        if hits.size:
            i = start + int(hits[0])
            rows = _enclosed_rows_at(len(ctx.coords), inside_arr, event_rows, signs, i)
            return rows, float(angles[i])
        counts = running[-1]
    return None


def _enclosed_rows_at(
    n_rows: int,
    inside_arr: np.ndarray,
    event_rows: np.ndarray,
    signs: np.ndarray,
    i: int,
) -> List[int]:
    """Reconstruct the enclosed set right after event ``i``.

    Each row's membership is its initial inside flag plus the net of its
    enter/exit events up to ``i`` — one scatter-add over the event prefix.
    """
    state = np.zeros(n_rows, dtype=np.int32)
    state[inside_arr] = 1
    np.add.at(state, event_rows[: i + 1], signs[: i + 1])
    return [int(r) for r in np.flatnonzero(state == 1)]


def _first_cover_scalar(
    ctx: QueryContext,
    inside_rows: List[int],
    angles: np.ndarray,
    kinds: np.ndarray,
    event_rows: np.ndarray,
) -> Optional[Tuple[List[int], float]]:
    """Object-path event walk: the original per-event reference loop."""
    masks = ctx.masks
    full = ctx.full_mask

    m = full.bit_length()
    counts = [0] * m
    covered = 0
    inside = set(inside_rows)
    for r in inside:
        covered = _add_mask(masks[r], counts, covered)
    if covered == full:
        return sorted(inside), 0.0

    for i in range(len(angles)):
        r = int(event_rows[i])
        if kinds[i]:  # enter
            if r in inside:
                continue
            inside.add(r)
            covered = _add_mask(masks[r], counts, covered)
            if covered == full:
                return sorted(inside), float(angles[i])
        else:  # exit
            if r not in inside:
                continue
            inside.discard(r)
            covered = _remove_mask(masks[r], counts, covered)
    return None


def circle_scan_candidates(
    ctx: QueryContext, pole_row: int, diameter: float
) -> List[List[int]]:
    """All maximal enclosed sets covering the query over the full rotation.

    Unlike :func:`circle_scan`, the sweep continues past the first hit and
    snapshots the enclosed set at every event position where coverage
    holds.  Snapshots that are subsets of other snapshots are dropped: the
    exhaustive search over a superset subsumes the search over its subsets.
    """
    setup = _sweep_events(ctx, pole_row, diameter)
    if setup is None:
        return []
    inside_rows, angles, kinds, event_rows = setup

    bits = ctx.bits_matrix if vectorized_enabled() else None
    if bits is not None:
        snapshots = _covering_snapshots_batched(
            ctx, bits, inside_rows, angles, kinds, event_rows
        )
    else:
        snapshots = _covering_snapshots_scalar(
            ctx, inside_rows, angles, kinds, event_rows
        )
    return _maximal_sets(snapshots)


def _covering_snapshots_batched(
    ctx: QueryContext,
    bits: np.ndarray,
    inside_rows: List[int],
    angles: np.ndarray,
    kinds: np.ndarray,
    event_rows: np.ndarray,
) -> set:
    """Columnar full-rotation sweep for EXACT's candidate enumeration.

    The coverage profile over all events is computed in one batch; the
    enclosed set is then only materialised at *locally maximal* covering
    positions (those followed by an exit or the sweep end — a covering
    position followed by an enter is strictly contained in its successor,
    which stays covering, so skipping it never loses a maximal set).
    """
    inside_arr = np.asarray(inside_rows, dtype=np.intp)
    m = bits.shape[1]
    if len(inside_arr):
        counts0 = bits[inside_arr].sum(axis=0, dtype=np.int32)
    else:
        counts0 = np.zeros(m, dtype=np.int32)
    covered0 = int((counts0 > 0).sum()) == m

    n_events = len(angles)
    snapshots: set = set()
    if n_events == 0:
        if covered0:
            snapshots.add(frozenset(inside_rows))
        return snapshots

    signs = kinds.astype(np.int32) * 2 - 1
    deltas = bits[event_rows].astype(np.int32)
    deltas *= signs[:, None]
    running = np.cumsum(deltas, axis=0)
    running += counts0
    covered = (running > 0).all(axis=1)

    covering = np.flatnonzero(covered)
    if covering.size:
        last = covering == n_events - 1
        followed_by_exit = np.zeros(covering.size, dtype=bool)
        followed_by_exit[~last] = kinds[covering[~last] + 1] == 0
        snap_idx = covering[last | followed_by_exit]
    else:
        snap_idx = covering

    if covered0 and kinds[0] == 0:
        # The initial enclosed set is maximal only when the sweep opens
        # with an exit; an opening enter strictly grows it.
        snapshots.add(frozenset(inside_rows))

    state = np.zeros(len(ctx.coords), dtype=np.int32)
    state[inside_arr] = 1
    prev = 0
    for i in snap_idx:
        i = int(i)
        np.add.at(state, event_rows[prev : i + 1], signs[prev : i + 1])
        prev = i + 1
        snapshots.add(frozenset(np.flatnonzero(state == 1).tolist()))
    return snapshots


def _covering_snapshots_scalar(
    ctx: QueryContext,
    inside_rows: List[int],
    angles: np.ndarray,
    kinds: np.ndarray,
    event_rows: np.ndarray,
) -> set:
    """Object-path full-rotation sweep (reference loop)."""
    masks = ctx.masks
    full = ctx.full_mask

    m = full.bit_length()
    counts = [0] * m
    covered = 0
    inside = set(inside_rows)
    for r in inside:
        covered = _add_mask(masks[r], counts, covered)

    snapshots: set = set()
    if covered == full:
        snapshots.add(frozenset(inside))
    for i in range(len(angles)):
        r = int(event_rows[i])
        if kinds[i]:
            if r in inside:
                continue
            inside.add(r)
            covered = _add_mask(masks[r], counts, covered)
        else:
            if r not in inside:
                continue
            inside.discard(r)
            covered = _remove_mask(masks[r], counts, covered)
        if covered == full:
            snapshots.add(frozenset(inside))
    return snapshots


def _maximal_sets(snapshots) -> List[List[int]]:
    """Drop snapshots strictly contained in another; return sorted lists.

    The candidate order feeds EXACT's branch-and-bound incumbent updates,
    so ties are broken deterministically (by content, not set-iteration
    order) — both kernel paths must emit candidates identically.
    """
    ordered = sorted(snapshots, key=lambda s: (-len(s), tuple(sorted(s))))
    maximal: List[frozenset] = []
    for candidate in ordered:
        if any(candidate <= kept for kept in maximal):
            continue
        maximal.append(candidate)
    return [sorted(s) for s in maximal]


def _add_mask(mask: int, counts: List[int], covered: int) -> int:
    while mask:
        low = mask & -mask
        bit_pos = low.bit_length() - 1
        counts[bit_pos] += 1
        if counts[bit_pos] == 1:
            covered |= low
        mask ^= low
    return covered


def _remove_mask(mask: int, counts: List[int], covered: int) -> int:
    while mask:
        low = mask & -mask
        bit_pos = low.bit_length() - 1
        counts[bit_pos] -= 1
        if counts[bit_pos] == 0:
            covered &= ~low
        mask ^= low
    return covered
