"""The mCK query and its per-dataset compiled context.

A raw :class:`MCKQuery` is just the m keyword strings.  Before an algorithm
runs, the query is *compiled* against a dataset into a
:class:`QueryContext`: keyword strings become global term ids, objects in
``O'`` get query-local bitmap masks (bit i = query keyword i), and the
virtual bR*-tree plus packed coordinate arrays are materialised.  All five
algorithms and all three baselines consume the same context, which is what
makes the paper's "same index for all methods" comparison fair (§3).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import QueryError
from ..index.virtual import VirtualBRTree
from ..observability.tracer import span as _trace_span
from .objects import Dataset

__all__ = ["MCKQuery", "QueryContext", "PoleCache", "compile_query"]


class PoleCache:
    """Distance-sorted view of O' around one pole object.

    The SKEC-family algorithms probe the same pole with many diameters
    (binary search).  Sorting O' by distance from the pole once makes every
    subsequent sweeping-area query a ``searchsorted`` + slice, and the
    prefix-union array answers "can the objects within distance D cover the
    query?" in O(1) — the precheck that skips most circleScan invocations.
    """

    __slots__ = ("dists", "rows", "prefix_union")

    def __init__(self, dists: np.ndarray, rows: np.ndarray, prefix_union: np.ndarray):
        self.dists = dists
        self.rows = rows
        self.prefix_union = prefix_union

    def prefix_length(self, radius: float) -> int:
        """Number of O' objects within (closed) distance ``radius``."""
        bound = radius * (1.0 + 1e-12) + 1e-18
        return int(np.searchsorted(self.dists, bound, side="right"))

    def union_within(self, radius: float) -> int:
        """Keyword union mask of all objects within ``radius`` of the pole."""
        return self.prefix_union[self.prefix_length(radius)]

    def rows_within(self, radius: float) -> np.ndarray:
        """O' rows within ``radius`` of the pole, nearest first."""
        return self.rows[: self.prefix_length(radius)]


@dataclass(frozen=True)
class MCKQuery:
    """An m-closest-keywords query: a tuple of distinct keywords."""

    keywords: Tuple[str, ...]

    def __init__(self, keywords: Sequence[str]):
        cleaned = tuple(dict.fromkeys(str(k) for k in keywords))
        if not cleaned:
            raise QueryError("query must contain at least one keyword")
        object.__setattr__(self, "keywords", cleaned)

    @property
    def m(self) -> int:
        return len(self.keywords)

    def __iter__(self):
        return iter(self.keywords)

    def __len__(self) -> int:
        return len(self.keywords)


class QueryContext:
    """A query compiled against a dataset.

    Exposes everything the algorithms share:

    * ``relevant_ids`` / ``coords`` / ``masks`` — ``O'`` with row-aligned
      locations and query-local keyword masks;
    * ``full_mask`` — coverage target ``(1 << m) - 1``;
    * ``virtual_tree`` — the per-query virtual bR*-tree;
    * ``t_inf`` — the least frequent query keyword (GKG §3);
    * distance helpers over the packed array.
    """

    def __init__(
        self,
        dataset: Dataset,
        query: MCKQuery,
        exclude: Optional[frozenset] = None,
    ):
        self.dataset = dataset
        self.query = query
        self.excluded_ids = frozenset(exclude or ())
        self.term_ids = [dataset.vocabulary.id_of(t) for t in query.keywords]
        self.virtual_tree = VirtualBRTree.build(
            dataset.inverted,
            self.term_ids,
            dataset.locations,
            dataset.term_ids,
            query_terms=query.keywords,
            exclude=self.excluded_ids or None,
        )
        self.relevant_ids: List[int] = self.virtual_tree.object_ids
        self.coords: np.ndarray = self.virtual_tree.coords
        self.masks: List[int] = self.virtual_tree.masks
        self.full_mask: int = self.virtual_tree.full_mask
        self.t_inf: str = dataset.vocabulary.least_frequent(list(query.keywords))
        self.t_inf_bit: int = 1 << query.keywords.index(self.t_inf)
        self._pole_caches: "OrderedDict[int, PoleCache]" = OrderedDict()
        #: Cap on cached poles; 1024 poles over a few thousand relevant
        #: objects stays well under 100 MB.
        self._pole_cache_limit = 1024
        self._cover_radii: Optional[np.ndarray] = None
        self._keyword_trees: dict = {}
        self._masks_np: Optional[np.ndarray] = None
        self._ir_tree = None

    # ------------------------------------------------------------------ #

    @property
    def m(self) -> int:
        return self.query.m

    def __len__(self) -> int:
        """Number of relevant objects |O'|."""
        return len(self.relevant_ids)

    def row_of(self, oid: int) -> int:
        return self.virtual_tree.row_of(oid)

    def mask_of_row(self, row: int) -> int:
        return self.masks[row]

    def location_of_row(self, row: int) -> Tuple[float, float]:
        return (float(self.coords[row, 0]), float(self.coords[row, 1]))

    def rows_with_bit(self, bit: int) -> List[int]:
        """Rows of O' whose mask has ``bit`` set (e.g. holders of t_inf)."""
        return [row for row, mask in enumerate(self.masks) if mask & bit]

    def rows_within(self, cx: float, cy: float, r: float) -> np.ndarray:
        return self.virtual_tree.rows_within(cx, cy, r)

    def union_mask(self, rows) -> int:
        return self.virtual_tree.union_mask(rows)

    def covers(self, rows) -> bool:
        return self.virtual_tree.covers_query(rows)

    @property
    def cover_radii(self) -> np.ndarray:
        """Per-pole coverage radius (computed lazily, once per query).

        ``cover_radii[row]`` is the largest over the m query keywords of
        the distance from pole ``row`` to its nearest holder of that
        keyword.  A closed disc of diameter D around the pole can enclose a
        covering group iff ``D >= cover_radii[row]`` — the O(1) precheck
        that lets circleScan skip hopeless (pole, diameter) probes without
        touching the sweeping area.
        """
        if self._cover_radii is None:
            radii = np.zeros(len(self.relevant_ids), dtype=np.float64)
            for bit_pos in range(self.m):
                tree, _holders = self.keyword_tree(bit_pos)
                nearest, _idx = tree.query(self.coords, k=1)
                np.maximum(radii, nearest, out=radii)
            self._cover_radii = radii
        return self._cover_radii

    def keyword_tree(self, bit_pos: int):
        """KD-tree over the holders of query keyword ``bit_pos``.

        Returns ``(tree, holder_rows)`` where ``holder_rows`` maps tree
        indices back to O' rows.  Built lazily once per keyword and shared
        by GKG's nearest-holder lookups and the coverage-radius
        computation.
        """
        cached = self._keyword_trees.get(bit_pos)
        if cached is None:
            from scipy.spatial import cKDTree

            with _trace_span("index.keyword_tree_build", keyword_bit=bit_pos):
                bit = 1 << bit_pos
                holder_rows = np.array(
                    [r for r, msk in enumerate(self.masks) if msk & bit],
                    dtype=np.intp,
                )
                cached = (cKDTree(self.coords[holder_rows]), holder_rows)
            self._keyword_trees[bit_pos] = cached
        return cached

    def ir_tree(self):
        """An IR-tree over O' keyed by query-local bit positions.

        The alternative geo-textual index the paper names in §3; GKG's
        ``method="irtree"`` descends its per-node inverted files instead of
        the bR*-tree bitmaps.  Built lazily once per query.
        """
        if self._ir_tree is None:
            from ..index.irtree import IRTree

            records = []
            for row, oid in enumerate(self.relevant_ids):
                mask = self.masks[row]
                bits = []
                while mask:
                    low = mask & -mask
                    bits.append(low.bit_length() - 1)
                    mask ^= low
                records.append((oid, self.coords[row, 0], self.coords[row, 1], bits))
            self._ir_tree = IRTree.build(records)
        return self._ir_tree

    def pole_cache(self, row: int) -> PoleCache:
        """Distance-sorted O' view around one pole (LRU-cached)."""
        cache = self._pole_caches.get(row)
        if cache is not None:
            self._pole_caches.move_to_end(row)
            return cache
        with _trace_span("index.pole_cache_build", pole=row):
            dists = self.distances_from_row(row)
            order = np.argsort(dists, kind="stable")
            sorted_dists = dists[order]
            if self._masks_np is None:
                # Query-local masks have at most m <= 64 bits; pack them once.
                self._masks_np = np.asarray(self.masks, dtype=np.uint64)
            acc = np.bitwise_or.accumulate(self._masks_np[order])
            prefix_union = np.concatenate(([np.uint64(0)], acc))
            cache = PoleCache(sorted_dists, order.astype(np.intp), prefix_union)
        self._pole_caches[row] = cache
        while len(self._pole_caches) > self._pole_cache_limit:
            self._pole_caches.popitem(last=False)
        return cache

    def distances_from_row(self, row: int) -> np.ndarray:
        """Distances from one relevant object to all of O' (vectorised)."""
        delta = self.coords - self.coords[row]
        return np.hypot(delta[:, 0], delta[:, 1])

    def group_diameter_rows(self, rows: Sequence[int]) -> float:
        """Diameter (Definition 1) of a set of O' rows."""
        if len(rows) < 2:
            return 0.0
        pts = self.coords[np.asarray(rows, dtype=np.intp)]
        best = 0.0
        for i in range(len(pts)):
            dx = pts[i + 1 :, 0] - pts[i, 0]
            dy = pts[i + 1 :, 1] - pts[i, 1]
            if len(dx):
                cand = float(np.max(dx * dx + dy * dy))
                if cand > best:
                    best = cand
        return best**0.5


def compile_query(dataset: Dataset, query, exclude=None) -> QueryContext:
    """Compile ``query`` (an :class:`MCKQuery` or a keyword sequence).

    ``exclude`` removes specific object ids from O' — the top-k extension
    uses this to forbid members of already-returned groups.
    """
    if not isinstance(query, MCKQuery):
        query = MCKQuery(query)
    unknown = [t for t in query.keywords if t not in dataset.vocabulary]
    if unknown:
        from ..exceptions import InfeasibleQueryError

        raise InfeasibleQueryError(unknown)
    return QueryContext(dataset, query, exclude=exclude)
