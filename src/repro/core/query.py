"""The mCK query and its per-dataset compiled context.

A raw :class:`MCKQuery` is just the m keyword strings.  Before an algorithm
runs, the query is *compiled* against a dataset into a
:class:`QueryContext`: keyword strings become global term ids, objects in
``O'`` get query-local bitmap masks (bit i = query keyword i), and the
virtual bR*-tree plus packed coordinate arrays are materialised.  All five
algorithms and all three baselines consume the same context, which is what
makes the paper's "same index for all methods" comparison fair (§3).
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import QueryError
from ..index.virtual import VirtualBRTree
from ..kernels import vectorized_enabled as _vectorized_enabled
from ..observability.tracer import span as _trace_span
from .objects import Dataset

__all__ = ["MCKQuery", "QueryContext", "PoleCache", "compile_query"]


class PoleCache:
    """Distance-sorted view of O' around one pole object.

    The SKEC-family algorithms probe the same pole with many diameters
    (binary search).  Sorting O' by distance from the pole once makes every
    subsequent sweeping-area query a ``searchsorted`` + slice, and the
    prefix-union array answers "can the objects within distance D cover the
    query?" in O(1) — the precheck that skips most circleScan invocations.
    ``phis`` carries each object's polar angle around the pole (aligned
    with ``rows``), so per-probe event construction skips the ``arctan2``.
    """

    __slots__ = ("dists", "rows", "prefix_union", "phis", "radius_bound")

    def __init__(
        self,
        dists: np.ndarray,
        rows: np.ndarray,
        prefix_union: np.ndarray,
        phis: np.ndarray,
        radius_bound: float = float("inf"),
    ):
        self.dists = dists
        self.rows = rows
        self.prefix_union = prefix_union
        self.phis = phis
        #: Largest query radius this cache fully covers; a *bounded* cache
        #: (columnar path) holds only the rows within this distance — a
        #: bit-identical prefix of the full distance sort.
        self.radius_bound = radius_bound

    def prefix_length(self, radius: float) -> int:
        """Number of O' objects within (closed) distance ``radius``."""
        bound = radius * (1.0 + 1e-12) + 1e-18
        return int(np.searchsorted(self.dists, bound, side="right"))

    def union_within(self, radius: float) -> int:
        """Keyword union mask of all objects within ``radius`` of the pole."""
        return self.prefix_union[self.prefix_length(radius)]

    def rows_within(self, radius: float) -> np.ndarray:
        """O' rows within ``radius`` of the pole, nearest first."""
        return self.rows[: self.prefix_length(radius)]


@dataclass(frozen=True)
class MCKQuery:
    """An m-closest-keywords query: a tuple of distinct keywords."""

    keywords: Tuple[str, ...]

    def __init__(self, keywords: Sequence[str]):
        cleaned = tuple(dict.fromkeys(str(k) for k in keywords))
        if not cleaned:
            raise QueryError("query must contain at least one keyword")
        object.__setattr__(self, "keywords", cleaned)

    @property
    def m(self) -> int:
        return len(self.keywords)

    def __iter__(self):
        return iter(self.keywords)

    def __len__(self) -> int:
        return len(self.keywords)


class QueryContext:
    """A query compiled against a dataset.

    Exposes everything the algorithms share:

    * ``relevant_ids`` / ``coords`` / ``masks`` — ``O'`` with row-aligned
      locations and query-local keyword masks;
    * ``full_mask`` — coverage target ``(1 << m) - 1``;
    * ``virtual_tree`` — the per-query virtual bR*-tree;
    * ``t_inf`` — the least frequent query keyword (GKG §3);
    * distance helpers over the packed array.
    """

    def __init__(
        self,
        dataset: Dataset,
        query: MCKQuery,
        exclude: Optional[frozenset] = None,
    ):
        self.dataset = dataset
        self.query = query
        self.excluded_ids = frozenset(exclude or ())
        self.term_ids = [dataset.vocabulary.id_of(t) for t in query.keywords]
        self.virtual_tree = VirtualBRTree.build(
            dataset.inverted,
            self.term_ids,
            dataset.locations,
            dataset.term_ids,
            query_terms=query.keywords,
            exclude=self.excluded_ids or None,
            columns=_columns_of(dataset),
        )
        self.relevant_ids: List[int] = self.virtual_tree.object_ids
        self.coords: np.ndarray = self.virtual_tree.coords
        self.masks: List[int] = self.virtual_tree.masks
        self.full_mask: int = self.virtual_tree.full_mask
        self.t_inf: str = dataset.vocabulary.least_frequent(list(query.keywords))
        self.t_inf_bit: int = 1 << query.keywords.index(self.t_inf)
        self._pole_caches: "OrderedDict[int, PoleCache]" = OrderedDict()
        #: Poles probed once via a bounded sweep view; a second probe
        #: promotes the pole to a full distance-sorted cache.
        self._pole_probes: dict = {}
        #: Cap on cached poles; 1024 poles over a few thousand relevant
        #: objects stays well under 100 MB.
        self._pole_cache_limit = 1024
        self._cover_radii: Optional[np.ndarray] = None
        self._keyword_trees: dict = {}
        self._relevant_kdtree = None
        self._masks_np: Optional[np.ndarray] = self.virtual_tree.masks_np
        self._bits_matrix: Optional[np.ndarray] = None
        self._ir_tree = None

    # ------------------------------------------------------------------ #

    @property
    def m(self) -> int:
        return self.query.m

    def __len__(self) -> int:
        """Number of relevant objects |O'|."""
        return len(self.relevant_ids)

    def row_of(self, oid: int) -> int:
        return self.virtual_tree.row_of(oid)

    def mask_of_row(self, row: int) -> int:
        return self.masks[row]

    def location_of_row(self, row: int) -> Tuple[float, float]:
        return (float(self.coords[row, 0]), float(self.coords[row, 1]))

    @property
    def masks_np(self) -> np.ndarray:
        """Flat uint64 column of the query-local masks (m <= 64 bits)."""
        if self._masks_np is None:
            self._masks_np = np.asarray(self.masks, dtype=np.uint64)
        return self._masks_np

    @property
    def bits_matrix(self) -> np.ndarray:
        """``(|O'|, m)`` uint8 keyword-membership matrix (lazy).

        Column ``i`` flags the holders of query keyword ``i`` — the
        struct-of-arrays form of ``masks`` that the batched circleScan
        event walk consumes.
        """
        if self._bits_matrix is None:
            from ..index.bitmap import bits_matrix as _bits

            if self.m <= 64:
                self._bits_matrix = _bits(self.masks_np, self.m)
            else:
                self._bits_matrix = _bits(self.masks, self.m)
        return self._bits_matrix

    def rows_with_bit(self, bit: int) -> List[int]:
        """Rows of O' whose mask has ``bit`` set (e.g. holders of t_inf)."""
        if self.m <= 64:
            hits = np.flatnonzero(self.masks_np & np.uint64(bit))
            return [int(r) for r in hits]
        return [row for row, mask in enumerate(self.masks) if mask & bit]

    def rows_within(self, cx: float, cy: float, r: float) -> np.ndarray:
        return self.virtual_tree.rows_within(cx, cy, r)

    def union_mask(self, rows) -> int:
        return self.virtual_tree.union_mask(rows)

    def covers(self, rows) -> bool:
        return self.virtual_tree.covers_query(rows)

    @property
    def cover_radii(self) -> np.ndarray:
        """Per-pole coverage radius (computed lazily, once per query).

        ``cover_radii[row]`` is the largest over the m query keywords of
        the distance from pole ``row`` to its nearest holder of that
        keyword.  A closed disc of diameter D around the pole can enclose a
        covering group iff ``D >= cover_radii[row]`` — the O(1) precheck
        that lets circleScan skip hopeless (pole, diameter) probes without
        touching the sweeping area.
        """
        if self._cover_radii is None:
            radii = None
            if _vectorized_enabled() and not self.excluded_ids:
                radii = self._cover_radii_columnar()
            if radii is None:
                radii = np.zeros(len(self.relevant_ids), dtype=np.float64)
                for bit_pos in range(self.m):
                    tree, _holders = self.keyword_tree(bit_pos)
                    nearest, _idx = tree.query(self.coords, k=1)
                    np.maximum(radii, nearest, out=radii)
            self._cover_radii = radii
        return self._cover_radii

    def _cover_radii_columnar(self) -> Optional[np.ndarray]:
        """Coverage radii from the store's per-term NN-distance columns.

        Each query keyword's nearest-holder distances are computed once
        per dataset (and shared across queries); a compile then gathers
        the O' rows and takes the running maximum.  Bit-identical to the
        per-query KD path — every holder of a query keyword belongs to
        O', so both minimise over the same holder set — but invalid under
        ``exclude`` (the holder set shrinks), where the caller falls back.
        """
        columns = _columns_of(self.dataset)
        if columns is None:
            return None
        with _trace_span("index.cover_radii_columnar"):
            positions = columns.positions_of(self.relevant_ids)
            radii = np.zeros(len(positions), dtype=np.float64)
            for tid in self.term_ids:
                dists = columns.term_nn_dists(tid)
                if dists is None:
                    return None
                np.maximum(radii, dists[positions], out=radii)
        return radii

    def keyword_tree(self, bit_pos: int):
        """KD-tree over the holders of query keyword ``bit_pos``.

        Returns ``(tree, holder_rows)`` where ``holder_rows`` maps tree
        indices back to O' rows.  Built lazily once per keyword and shared
        by GKG's nearest-holder lookups and the coverage-radius
        computation.
        """
        cached = self._keyword_trees.get(bit_pos)
        if cached is None:
            from scipy.spatial import cKDTree

            with _trace_span("index.keyword_tree_build", keyword_bit=bit_pos):
                bit = 1 << bit_pos
                if self.m <= 64:
                    holder_rows = np.flatnonzero(
                        self.masks_np & np.uint64(bit)
                    ).astype(np.intp)
                else:
                    holder_rows = np.array(
                        [r for r, msk in enumerate(self.masks) if msk & bit],
                        dtype=np.intp,
                    )
                cached = (cKDTree(self.coords[holder_rows]), holder_rows)
            self._keyword_trees[bit_pos] = cached
        return cached

    def ir_tree(self):
        """An IR-tree over O' keyed by query-local bit positions.

        The alternative geo-textual index the paper names in §3; GKG's
        ``method="irtree"`` descends its per-node inverted files instead of
        the bR*-tree bitmaps.  Built lazily once per query.
        """
        if self._ir_tree is None:
            from ..index.irtree import IRTree

            records = []
            for row, oid in enumerate(self.relevant_ids):
                mask = self.masks[row]
                bits = []
                while mask:
                    low = mask & -mask
                    bits.append(low.bit_length() - 1)
                    mask ^= low
                records.append((oid, self.coords[row, 0], self.coords[row, 1], bits))
            self._ir_tree = IRTree.build(records)
        return self._ir_tree

    def pole_cache(self, row: int) -> PoleCache:
        """Distance-sorted O' view around one pole (LRU-cached)."""
        cache = self._pole_caches.get(row)
        if cache is not None and math.isinf(cache.radius_bound):
            self._pole_caches.move_to_end(row)
            return cache
        with _trace_span("index.pole_cache_build", pole=row):
            delta = self.coords - self.coords[row]
            dists = np.hypot(delta[:, 0], delta[:, 1])
            order = np.argsort(dists, kind="stable")
            sorted_dists = dists[order]
            phis = np.arctan2(delta[order, 1], delta[order, 0])
            acc = np.bitwise_or.accumulate(self.masks_np[order])
            prefix_union = np.concatenate(([np.uint64(0)], acc))
            cache = PoleCache(sorted_dists, order.astype(np.intp), prefix_union, phis)
        self._pole_caches[row] = cache
        while len(self._pole_caches) > self._pole_cache_limit:
            self._pole_caches.popitem(last=False)
        return cache

    def distances_from_row(self, row: int) -> np.ndarray:
        """Distances from one relevant object to all of O' (vectorised)."""
        delta = self.coords - self.coords[row]
        return np.hypot(delta[:, 0], delta[:, 1])

    def _disc_candidates(self, row: int, bound: float) -> np.ndarray:
        """Ascending O' rows guaranteed to include all within ``bound``.

        A KD ball query (built lazily, once per compile) with a slightly
        inflated radius: the tree's internal distance rounding differs
        from ``np.hypot`` by at most a few ulps, which the 1e-9 relative
        inflation dominates, so no row with ``hypot <= bound`` can be
        missed.  Callers re-filter with the exact ``hypot <= bound`` test;
        the surviving selection is identical to a full-array scan.
        """
        if self._relevant_kdtree is None:
            from scipy.spatial import cKDTree

            self._relevant_kdtree = cKDTree(self.coords)
        hits = self._relevant_kdtree.query_ball_point(
            self.coords[row], bound * (1.0 + 1e-9) + 1e-12, return_sorted=True
        )
        return np.asarray(hits, dtype=np.intp)

    def pole_cache_bounded(self, row: int, radius: float) -> PoleCache:
        """A :class:`PoleCache` covering queries up to ``radius`` (LRU-cached).

        Selects the rows within ``radius`` with one vectorised ``hypot``
        pass and sorts only those — O(n + k log k) against the full
        cache's O(n log n), a large win because sweeping areas are tiny
        compared to O'.  The result is a bit-identical prefix of the full
        stable distance sort (ties break by row index in both), so any
        probe at ``diameter <= radius`` sees exactly the full cache's
        view.  A cached cache with a smaller bound is rebuilt with
        doubled headroom; probes shrink in every caller, so rebuilds are
        rare.
        """
        cache = self._pole_caches.get(row)
        if cache is not None and radius <= cache.radius_bound:
            self._pole_caches.move_to_end(row)
            return cache
        if cache is not None:
            # A probe outgrew the cached bound: rebuild with headroom.
            radius = max(radius * 2.0, cache.radius_bound * 2.0)
        with _trace_span("index.pole_cache_build", pole=row, bounded=True):
            bound = radius * (1.0 + 1e-12) + 1e-18
            cand = self._disc_candidates(row, bound)
            dx = self.coords[cand, 0] - self.coords[row, 0]
            dy = self.coords[cand, 1] - self.coords[row, 1]
            d = np.hypot(dx, dy)
            keep = d <= bound
            sel = cand[keep]
            dsel = d[keep]
            order = np.argsort(dsel, kind="stable")
            rows = sel[order]
            phis = np.arctan2(dy[keep][order], dx[keep][order])
            acc = np.bitwise_or.accumulate(self.masks_np[rows])
            prefix_union = np.concatenate(([np.uint64(0)], acc))
            cache = PoleCache(
                dsel[order], rows, prefix_union, phis, radius_bound=radius
            )
        self._pole_caches[row] = cache
        while len(self._pole_caches) > self._pole_cache_limit:
            self._pole_caches.popitem(last=False)
        return cache

    def sweep_view(self, row: int, diameter: float):
        """Sweeping-area view around a pole: ``(rows, dists, phis)`` or None.

        Rows within (closed) distance ``diameter`` of the pole, sorted by
        distance (ties by row index), with their polar angles; None when
        the area is empty or its keyword union cannot cover the query.

        A pole probed once gets a one-shot *bounded* selection (no cache
        allocation); a pole probed again (the binary-search pattern)
        promotes to a bounded :class:`PoleCache` so later probes are a
        ``searchsorted`` + slice.  All variants produce bit-identical
        views: a bounded selection is exactly the prefix of the stable
        full distance sort.
        """
        cache = self._pole_caches.get(row)
        if cache is None:
            probes = self._pole_probes
            if probes.get(row, 0):
                cache = self.pole_cache_bounded(row, diameter)
            else:
                probes[row] = 1
        elif diameter > cache.radius_bound:
            cache = self.pole_cache_bounded(row, diameter)
        else:
            self._pole_caches.move_to_end(row)
        if cache is not None:
            k = cache.prefix_length(diameter)
            if k == 0 or cache.prefix_union[k] != self.full_mask:
                return None
            return cache.rows[:k], cache.dists[:k], cache.phis[:k]

        bound = diameter * (1.0 + 1e-12) + 1e-18
        cand = self._disc_candidates(row, bound)
        dx = self.coords[cand, 0] - self.coords[row, 0]
        dy = self.coords[cand, 1] - self.coords[row, 1]
        d = np.hypot(dx, dy)
        keep = d <= bound
        sel = cand[keep]
        if len(sel) == 0:
            return None
        if self.m <= 64:
            union = int(np.bitwise_or.reduce(self.masks_np[sel]))
        else:
            union = 0
            masks = self.masks
            for r in sel:
                union |= masks[r]
        if union != self.full_mask:
            return None
        dsel = d[keep]
        order = np.argsort(dsel, kind="stable")
        rows = sel[order]
        phis = np.arctan2(dy[keep][order], dx[keep][order])
        return rows, dsel[order], phis

    def group_diameter_rows(self, rows: Sequence[int]) -> float:
        """Diameter (Definition 1) of a set of O' rows."""
        if len(rows) < 2:
            return 0.0
        pts = self.coords[np.asarray(rows, dtype=np.intp)]
        if _vectorized_enabled():
            from ..geometry.diameter import diameter_batch

            return diameter_batch(pts)
        best = 0.0
        for i in range(len(pts)):
            dx = pts[i + 1 :, 0] - pts[i, 0]
            dy = pts[i + 1 :, 1] - pts[i, 1]
            if len(dx):
                cand = float(np.max(dx * dx + dy * dy))
                if cand > best:
                    best = cand
        return best**0.5


def _columns_of(dataset):
    """The dataset's struct-of-arrays view, or None when unavailable."""
    try:
        return dataset.columns
    except Exception:
        return None


def compile_query(dataset: Dataset, query, exclude=None) -> QueryContext:
    """Compile ``query`` (an :class:`MCKQuery` or a keyword sequence).

    ``exclude`` removes specific object ids from O' — the top-k extension
    uses this to forbid members of already-returned groups.
    """
    if not isinstance(query, MCKQuery):
        query = MCKQuery(query)
    unknown = [t for t in query.keywords if t not in dataset.vocabulary]
    if unknown:
        from ..exceptions import InfeasibleQueryError

        raise InfeasibleQueryError(unknown)
    return QueryContext(dataset, query, exclude=exclude)
