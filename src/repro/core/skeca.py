"""Algorithm SKECa — approximate SKECq by per-object binary search (§4.3).

Property 1 makes the predicate "does an o-across keywords enclosing circle
of diameter D exist?" monotone in D, so the smallest such diameter can be
binary-searched with Procedure circleScan as the oracle.  Procedure
findAppOSKEC runs that search around one pole; Algorithm SKECa runs it
around every relevant object, threading the best circle found so far as
the upper bound.

With the error tolerance α = ε·δ(G_gkg)/2 the returned group answers the
mCK query within 2/√3 + ε (Theorem 6).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..geometry.circle import Circle
from ..geometry.mcc import minimum_covering_circle
from ..kernels import kernel_mode, vectorized_enabled
from .circlescan import circle_scan
from .common import QUALITY_APPROX, QUALITY_EXACT, Deadline
from .gkg import gkg
from .query import QueryContext
from .result import Group

__all__ = ["skeca", "find_app_oskec", "DEFAULT_EPSILON"]

#: The paper's default after the Figure-7 tuning study.
DEFAULT_EPSILON = 0.01


@dataclass
class _FoundCircle:
    """A successful circleScan outcome around one pole."""

    pole_row: int
    diameter: float
    theta: float
    rows: List[int]

    def circle(self, ctx: QueryContext) -> Circle:
        px, py = ctx.location_of_row(self.pole_row)
        r = self.diameter / 2.0
        return Circle(px + r * math.cos(self.theta), py + r * math.sin(self.theta), r)


def skeca(
    ctx: QueryContext,
    epsilon: float = DEFAULT_EPSILON,
    deadline: Optional[Deadline] = None,
) -> Group:
    """Run SKECa; ratio 2/√3 + ε."""
    deadline = deadline or Deadline.unlimited("SKECa")
    with deadline.span(
        "skeca.plan",
        kernel=kernel_mode(),
        m=ctx.m,
        epsilon=epsilon,
        poles=len(ctx.relevant_ids),
    ):
        pass
    deadline.count("kernel_vectorized", 1.0 if vectorized_enabled() else 0.0)
    with deadline.span("gkg.run"):
        greedy = gkg(ctx, deadline)

    single = _single_object_answer(ctx, "SKECa")
    if single is not None:
        return single

    alpha = epsilon * greedy.diameter / 2.0
    search_lb = greedy.diameter / 2.0
    gkg_rows = [ctx.row_of(oid) for oid in greedy.object_ids]
    current_circle = minimum_covering_circle(ctx.coords[r] for r in gkg_rows)
    current_rows = gkg_rows
    current_ub = current_circle.diameter
    binary_steps = 0

    # Poles are visited in natural O' order, as in the paper's Algorithm 1:
    # SKECa's weakness — a loose upper bound when early poles yield large
    # circles — is part of what Figure 7 measures, so no reordering here.
    for pole in range(len(ctx.relevant_ids)):
        deadline.check()
        with deadline.span("skeca.pole", pole=pole):
            found, steps = find_app_oskec(
                ctx, pole, search_lb, current_ub, alpha, deadline
            )
        binary_steps += steps
        if found is not None and found.diameter < current_ub:
            current_ub = found.diameter
            current_circle = found.circle(ctx)
            current_rows = found.rows

    group = Group.from_rows(
        ctx, current_rows, algorithm="SKECa", enclosing_circle=current_circle
    )
    group.stats["binary_steps"] = float(binary_steps)
    group.stats["alpha"] = alpha
    # The converged search certifies the Theorem-6 ratio for this group.
    deadline.note_bound(QUALITY_APPROX, group.diameter)
    deadline.offer(ctx, current_rows, group.diameter)
    group.quality = QUALITY_APPROX
    return group


def find_app_oskec(
    ctx: QueryContext,
    pole_row: int,
    search_lb: float,
    current_ub: float,
    alpha: float,
    deadline: Optional[Deadline] = None,
) -> Tuple[Optional[_FoundCircle], int]:
    """Procedure findAppOSKEC: binary search for SKECo around one pole.

    Returns ``(found, steps)``; ``found`` is ``None`` when no o-across
    circle beats the incoming upper bound (Property 1 line 3 of the
    procedure), otherwise the best circle located within tolerance α.
    """
    deadline = deadline or Deadline.unlimited("SKECa")
    deadline.count("circle_scans")
    with deadline.span("circlescan", pole=pole_row):
        hit = circle_scan(ctx, pole_row, current_ub)
    if hit is None:
        return None, 1

    rows, theta = hit
    best = _FoundCircle(pole_row, current_ub, theta, rows)
    # Enclosed group feasible with diameter ≤ the circle diameter: a valid
    # (conservatively bounded) anytime incumbent.
    deadline.offer(ctx, rows, current_ub)
    ub = current_ub
    lb = max(search_lb, 0.0)
    steps = 1
    while ub - lb > alpha:
        deadline.check()
        diam = (ub + lb) / 2.0
        steps += 1
        deadline.count("binary_steps")
        deadline.count("circle_scans")
        with deadline.span("skeca.binary_step", diameter=diam):
            with deadline.span("circlescan", pole=pole_row):
                hit = circle_scan(ctx, pole_row, diam)
        if hit is not None:
            ub = diam
            best = _FoundCircle(pole_row, diam, hit[1], hit[0])
            deadline.offer(ctx, hit[0], diam)
        else:
            lb = diam
    return best, steps


def _single_object_answer(ctx: QueryContext, algorithm: str) -> Optional[Group]:
    full = ctx.full_mask
    for row, mask in enumerate(ctx.masks):
        if mask == full:
            x, y = ctx.location_of_row(row)
            group = Group.from_rows(
                ctx, [row], algorithm=algorithm, enclosing_circle=Circle(x, y, 0.0)
            )
            group.quality = QUALITY_EXACT
            return group
    return None
