"""Result groups returned by the mCK algorithms.

A :class:`Group` records the chosen objects, the diameter δ(G)
(Definition 1), the minimum covering circle when the producing algorithm
computed one, and provenance (algorithm name, elapsed time, counters) so
the experiment harness can report the paper's metrics without re-measuring.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..geometry.circle import Circle
from ..geometry.diameter import group_diameter
from ..geometry.mcc import minimum_covering_circle
from .objects import Dataset, GeoObject

__all__ = ["Group"]


@dataclass
class Group:
    """An answer to an mCK query."""

    object_ids: Tuple[int, ...]
    diameter: float
    algorithm: str = ""
    enclosing_circle: Optional[Circle] = None
    elapsed_seconds: float = 0.0
    stats: Dict[str, float] = field(default_factory=dict)
    #: Certified answer quality (``exact`` / ``approx_2sqrt3`` /
    #: ``greedy_2x`` / ``partial``), or ``None`` when the producing code
    #: predates the tagging.  Degraded (anytime) answers additionally set
    #: ``stats["degraded"] = 1.0``.
    quality: Optional[str] = None

    @property
    def degraded(self) -> bool:
        """True when this answer was returned on an expired deadline."""
        return bool(self.stats.get("degraded"))

    @classmethod
    def from_rows(
        cls,
        ctx,
        rows: Sequence[int],
        algorithm: str = "",
        enclosing_circle: Optional[Circle] = None,
    ) -> "Group":
        """Build from O'-row indices of a compiled query context."""
        rows = sorted(set(int(r) for r in rows))
        oids = tuple(ctx.relevant_ids[r] for r in rows)
        diam = ctx.group_diameter_rows(rows)
        return cls(
            object_ids=oids,
            diameter=diam,
            algorithm=algorithm,
            enclosing_circle=enclosing_circle,
        )

    @classmethod
    def from_object_ids(
        cls, dataset: Dataset, oids: Sequence[int], algorithm: str = ""
    ) -> "Group":
        """Build directly from dataset object ids."""
        oids = tuple(sorted(set(int(o) for o in oids)))
        pts = [dataset.location_of(o) for o in oids]
        return cls(
            object_ids=oids, diameter=group_diameter(pts), algorithm=algorithm
        )

    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self.object_ids)

    def objects(self, dataset: Dataset) -> List[GeoObject]:
        return [dataset[oid] for oid in self.object_ids]

    def keywords(self, dataset: Dataset) -> frozenset:
        merged = frozenset()
        for oid in self.object_ids:
            merged |= dataset[oid].keywords
        return merged

    def covers(self, dataset: Dataset, query_keywords: Sequence[str]) -> bool:
        """Feasibility check (Definition 3)."""
        return set(query_keywords) <= self.keywords(dataset)

    def mcc(self, dataset: Dataset) -> Circle:
        """Minimum covering circle of the group's locations."""
        if self.enclosing_circle is not None:
            return self.enclosing_circle
        return minimum_covering_circle(
            dataset.location_of(o) for o in self.object_ids
        )

    def explain(self, dataset: Dataset, query_keywords: Sequence[str]) -> Dict[str, List[int]]:
        """Which group members cover each query keyword.

        Returns ``keyword -> [object ids]`` (empty list for an uncovered
        keyword — a feasible group never has one, so an empty list flags a
        broken result in debugging sessions).
        """
        coverage: Dict[str, List[int]] = {t: [] for t in query_keywords}
        for oid in self.object_ids:
            for t in dataset[oid].keywords:
                if t in coverage:
                    coverage[t].append(oid)
        return coverage

    def ratio_to(self, optimal: "Group") -> float:
        """Approximation ratio δ(G)/δ(G_opt); 1.0 when both are zero."""
        if optimal.diameter <= 0.0:
            return 1.0 if self.diameter <= 1e-12 else float("inf")
        return self.diameter / optimal.diameter

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ids = ",".join(str(o) for o in self.object_ids)
        return (
            f"Group([{ids}], diameter={self.diameter:.6g},"
            f" algorithm={self.algorithm!r})"
        )
