"""Geo-textual objects and the dataset container.

A :class:`GeoObject` is the paper's ``o``: a 2-D location ``o.λ`` plus a
keyword set ``o.ψ``.  :class:`Dataset` is the database ``O`` together with
the shared substrate every algorithm needs — the keyword vocabulary, the
inverted file, a packed coordinate array, and a lazily built global
bR*-tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import DatasetError
from ..index.bitmap import KeywordVocabulary
from ..index.brtree import BRStarTree
from ..index.columns import ColumnarStore
from ..index.inverted import InvertedIndex

__all__ = ["GeoObject", "Dataset"]


@dataclass(frozen=True, slots=True)
class GeoObject:
    """A geo-textual object: id, location, keyword strings."""

    oid: int
    x: float
    y: float
    keywords: FrozenSet[str]

    @property
    def location(self) -> Tuple[float, float]:
        return (self.x, self.y)

    def covers(self, terms: Iterable[str]) -> bool:
        """True when this object alone contains every term."""
        return all(t in self.keywords for t in terms)


class Dataset:
    """The geo-textual database ``O`` with its query-time substrate.

    Build it once from records; all mCK algorithms then share its inverted
    file, vocabulary and indexes.  Object ids are the dense range
    ``0..len-1`` in insertion order.
    """

    def __init__(self, name: str = "dataset"):
        self.name = name
        self.objects: List[GeoObject] = []
        self.vocabulary = KeywordVocabulary()
        self.inverted = InvertedIndex()
        self._term_ids: List[Tuple[int, ...]] = []
        self._coords: Optional[np.ndarray] = None
        self._columns: Optional[ColumnarStore] = None
        self._brtree: Optional[BRStarTree] = None
        self._brtree_fanout = 100
        self._finalized = False

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def from_records(
        cls,
        records: Iterable[Tuple[float, float, Iterable[str]]],
        name: str = "dataset",
    ) -> "Dataset":
        """Build from ``(x, y, keywords)`` records and finalize."""
        ds = cls(name=name)
        for x, y, keywords in records:
            ds.add(x, y, keywords)
        ds.finalize()
        return ds

    def add(self, x: float, y: float, keywords: Iterable[str]) -> int:
        """Append one object; returns its id."""
        if self._finalized:
            raise DatasetError("dataset already finalized; create a new one")
        kw = frozenset(str(k) for k in keywords)
        if not kw:
            raise DatasetError("objects must carry at least one keyword")
        oid = len(self.objects)
        self.objects.append(GeoObject(oid, float(x), float(y), kw))
        # Intern keywords in sorted order: frozenset iteration order depends
        # on the process hash seed, and term-id assignment must be stable
        # for datasets and query workloads to be reproducible across runs.
        term_ids = tuple(sorted(self.vocabulary.observe(t) for t in sorted(kw)))
        self._term_ids.append(term_ids)
        self.inverted.add_object(oid, term_ids)
        return oid

    def finalize(self) -> None:
        """Freeze the dataset and pack the coordinate array."""
        if self._finalized:
            return
        self.inverted.finalize()
        self._coords = np.array(
            [(o.x, o.y) for o in self.objects], dtype=np.float64
        ).reshape(len(self.objects), 2)
        self._finalized = True

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self.objects)

    def __iter__(self) -> Iterator[GeoObject]:
        return iter(self.objects)

    def __getitem__(self, oid: int) -> GeoObject:
        return self.objects[oid]

    @property
    def coords(self) -> np.ndarray:
        """``(n, 2)`` float64 array of locations (requires finalize())."""
        if self._coords is None:
            raise DatasetError("dataset not finalized")
        return self._coords

    @property
    def columns(self) -> ColumnarStore:
        """Struct-of-arrays view: x/y columns + CSR term ids (lazy)."""
        if self._columns is None:
            if self._coords is None:
                raise DatasetError("dataset not finalized")
            n = len(self.objects)
            indptr = np.zeros(n + 1, dtype=np.int64)
            lengths = [len(t) for t in self._term_ids]
            np.cumsum(lengths, out=indptr[1:])
            flat = np.fromiter(
                (tid for terms in self._term_ids for tid in terms),
                dtype=np.int64,
                count=int(indptr[-1]),
            )
            self._columns = ColumnarStore(
                np.arange(n, dtype=np.int64),
                np.ascontiguousarray(self._coords[:, 0]),
                np.ascontiguousarray(self._coords[:, 1]),
                indptr,
                flat,
            )
        return self._columns

    def location_of(self, oid: int) -> Tuple[float, float]:
        o = self.objects[oid]
        return (o.x, o.y)

    def term_ids_of(self, oid: int) -> Tuple[int, ...]:
        """Global term ids of an object's keywords."""
        return self._term_ids[oid]

    @property
    def term_ids(self) -> List[Tuple[int, ...]]:
        """``oid -> tuple of global term ids`` (used by VirtualBRTree.build)."""
        return self._term_ids

    @property
    def locations(self):
        """``oid -> (x, y)`` indexable view (used by VirtualBRTree.build)."""
        return _LocationView(self)

    def brtree(self, fanout: int = 100) -> BRStarTree:
        """The dataset-wide bR*-tree, built lazily and cached per fanout."""
        if self._brtree is None or self._brtree_fanout != fanout:
            records = (
                (o.oid, o.x, o.y, _mask_from_ids(self._term_ids[o.oid]))
                for o in self.objects
            )
            self._brtree = BRStarTree.build(records, max_entries=fanout)
            self._brtree_fanout = fanout
        return self._brtree

    # ------------------------------------------------------------------ #
    # Derived datasets
    # ------------------------------------------------------------------ #

    def sample(self, n: int, seed: int = 0, name: Optional[str] = None) -> "Dataset":
        """A new dataset of ``n`` objects sampled without replacement.

        The paper's scalability study (§6.2.5) samples its 1M–4M datasets
        from the 5M crawl; this reproduces that methodology.  Object ids
        are re-densified in the sample.
        """
        if not 0 <= n <= len(self.objects):
            raise DatasetError(
                f"cannot sample {n} of {len(self.objects)} objects"
            )
        import random as _random

        rng = _random.Random(seed)
        chosen = sorted(rng.sample(range(len(self.objects)), n))
        return Dataset.from_records(
            ((self.objects[i].x, self.objects[i].y, self.objects[i].keywords)
             for i in chosen),
            name=name or f"{self.name}-sample{n}",
        )

    def extended(
        self,
        records: Iterable[Tuple[float, float, Iterable[str]]],
        name: Optional[str] = None,
    ) -> "Dataset":
        """A new dataset with ``records`` appended (functional update).

        Post-finalize datasets are deliberately immutable (packed arrays,
        cached indexes); evolving data is modelled by deriving a new
        dataset, which shares nothing mutable with its parent.
        """
        def chain():
            for o in self.objects:
                yield (o.x, o.y, o.keywords)
            yield from records

        return Dataset.from_records(chain(), name=name or self.name)

    def without(self, object_ids, name: Optional[str] = None) -> "Dataset":
        """A new dataset with the given object ids removed (re-densified)."""
        drop = set(int(o) for o in object_ids)
        return Dataset.from_records(
            (
                (o.x, o.y, o.keywords)
                for o in self.objects
                if o.oid not in drop
            ),
            name=name or self.name,
        )

    def filter_bbox(
        self, x1: float, y1: float, x2: float, y2: float, name: Optional[str] = None
    ) -> "Dataset":
        """A new dataset restricted to a bounding box (e.g. one city area)."""
        return Dataset.from_records(
            (
                (o.x, o.y, o.keywords)
                for o in self.objects
                if x1 <= o.x <= x2 and y1 <= o.y <= y2
            ),
            name=name or f"{self.name}-bbox",
        )

    # ------------------------------------------------------------------ #
    # Statistics (Table 1 of the paper)
    # ------------------------------------------------------------------ #

    def unique_word_count(self) -> int:
        return len(self.vocabulary)

    def total_word_count(self) -> int:
        return sum(len(o.keywords) for o in self.objects)

    def extent_diameter(self) -> float:
        """Diameter of the dataset's bounding box diagonal.

        Used by the paper's query generator ("20% of the diameter of the
        whole dataset", §6.1).
        """
        coords = self.coords
        if len(coords) == 0:
            return 0.0
        min_xy = coords.min(axis=0)
        max_xy = coords.max(axis=0)
        return float(np.hypot(*(max_xy - min_xy)))


def _mask_from_ids(term_ids: Sequence[int]) -> int:
    mask = 0
    for tid in term_ids:
        mask |= 1 << tid
    return mask


class _LocationView:
    """Adapter exposing ``view[oid] -> (x, y)`` over the packed array."""

    __slots__ = ("_dataset",)

    def __init__(self, dataset: Dataset):
        self._dataset = dataset

    def __getitem__(self, oid: int) -> Tuple[float, float]:
        row = self._dataset.coords[oid]
        return (float(row[0]), float(row[1]))

    def __len__(self) -> int:
        return len(self._dataset)
