"""Algorithm GKG — the Greedy Keyword Group 2-approximation (paper §3, Alg. 4).

For every object ``o`` containing the least frequent query keyword
``t_inf``, GKG assembles the feasible group ``G_o`` consisting of ``o``
plus, for each keyword ``t`` not yet covered, the object nearest to ``o``
containing ``t``.  The smallest-diameter ``G_o`` over all holders of
``t_inf`` is returned; Theorem 2 proves δ(G_gkg) ≤ 2 · δ(G_opt).

Two nearest-holder strategies are provided:

* ``"kdtree"`` (default) — per-keyword KD-trees, with all anchors batched
  into one vectorised query per keyword;
* ``"brtree"`` — best-first search on the virtual bR*-tree with bitmap
  pruning, the paper's original index primitive (§3 uses the same index
  for all methods; this path exercises it).

Both return groups satisfying the Theorem-2 bound; they may differ only in
tie-breaking among equidistant holders.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..exceptions import InfeasibleQueryError, QueryError
from ..kernels import kernel_mode, vectorized_enabled
from .common import QUALITY_EXACT, QUALITY_GREEDY, QUALITY_PARTIAL, Deadline
from .query import QueryContext
from .result import Group

__all__ = ["gkg"]


def gkg(
    ctx: QueryContext,
    deadline: Optional[Deadline] = None,
    method: str = "kdtree",
) -> Group:
    """Run GKG on a compiled query; returns the greedy group."""
    deadline = deadline or Deadline.unlimited("GKG")
    anchor_rows = ctx.rows_with_bit(ctx.t_inf_bit)
    if not anchor_rows:
        raise InfeasibleQueryError([ctx.t_inf])
    deadline.count("anchors", len(anchor_rows))
    # Zero-duration "plan" marker: records the chosen strategy and kernel
    # mode on the trace so EXPLAIN can report them post-hoc.
    with deadline.span(
        "gkg.plan",
        method=method,
        kernel=kernel_mode(),
        m=ctx.m,
        anchors=len(anchor_rows),
    ):
        pass
    deadline.count("kernel_vectorized", 1.0 if vectorized_enabled() else 0.0)

    full = ctx.full_mask
    for anchor in anchor_rows:
        if ctx.masks[anchor] == full:
            # A single object covering everything is optimal (δ = 0).
            deadline.offer(ctx, [anchor], 0.0, quality=QUALITY_EXACT)
            group = Group.from_rows(ctx, [anchor], algorithm="GKG")
            group.quality = QUALITY_EXACT
            return group

    if method == "kdtree":
        best_rows = _best_group_kdtree(ctx, anchor_rows, deadline)
    elif method == "brtree":
        best_rows = _best_group_brtree(ctx, anchor_rows, deadline)
    elif method == "irtree":
        best_rows = _best_group_irtree(ctx, anchor_rows, deadline)
    else:
        raise QueryError(
            f"unknown GKG method {method!r}; use 'kdtree', 'brtree' or 'irtree'"
        )

    if best_rows is None:
        raise InfeasibleQueryError(ctx.query.keywords)
    group = Group.from_rows(ctx, best_rows, algorithm="GKG")
    group.stats["anchors"] = float(len(anchor_rows))
    # The greedy group is a certified 2-approximation only once every
    # t_inf anchor has been tried (Theorem 2); record the bound and
    # re-offer the finished group so a later timeout degrades to it.
    deadline.note_bound(QUALITY_GREEDY, group.diameter)
    deadline.offer(ctx, best_rows, group.diameter)
    group.quality = QUALITY_GREEDY
    return group


def _best_group_kdtree(
    ctx: QueryContext, anchor_rows: List[int], deadline: Deadline
) -> Optional[List[int]]:
    """Vectorised strategy: one batched KD-tree query per query keyword."""
    full = ctx.full_mask
    m = ctx.m
    anchors = np.asarray(anchor_rows, dtype=np.intp)
    anchor_pts = ctx.coords[anchors]

    # nearest_row[bit][i] = O' row of the holder of `bit` nearest anchor i.
    nearest_row: List[Optional[np.ndarray]] = [None] * m
    with deadline.span("gkg.knn_batch", anchors=len(anchor_rows)):
        for bit_pos in range(m):
            if all(ctx.masks[a] & (1 << bit_pos) for a in anchor_rows):
                continue  # every anchor already covers it; lookup never needed
            tree, holders = ctx.keyword_tree(bit_pos)
            _d, idx = tree.query(anchor_pts, k=1)
            nearest_row[bit_pos] = holders[idx]

    if vectorized_enabled() and ctx.m <= 64:
        return _assemble_groups_batched(ctx, anchors, nearest_row, deadline)

    best_rows: Optional[List[int]] = None
    best_diameter = float("inf")
    for i, anchor in enumerate(anchor_rows):
        deadline.check()
        with deadline.span("gkg.anchor_round", anchor=int(anchor)):
            covered = ctx.masks[anchor]
            group_rows = [anchor]
            missing = full & ~covered
            while missing:
                bit_pos = (missing & -missing).bit_length() - 1
                lookup = nearest_row[bit_pos]
                assert lookup is not None  # bit uncovered => lookup was built
                row = int(lookup[i])
                group_rows.append(row)
                covered |= ctx.masks[row]
                missing = full & ~covered
            diameter = ctx.group_diameter_rows(group_rows)
        if diameter < best_diameter:
            best_diameter = diameter
            best_rows = group_rows
            # Feasible but unrated until the anchor loop completes.
            deadline.offer(ctx, group_rows, diameter, quality=QUALITY_PARTIAL)
    return best_rows


def _assemble_groups_batched(
    ctx: QueryContext,
    anchors: np.ndarray,
    nearest_row: List[Optional[np.ndarray]],
    deadline: Deadline,
) -> List[int]:
    """Columnar anchor rounds: all G_o groups assembled simultaneously.

    Round ``r`` resolves, for every still-uncovered anchor at once, the
    lowest uncovered keyword bit and gathers that keyword's nearest
    holder — the same member sequence the per-anchor loop produces, so
    the winning group (first index of the minimum diameter, matching the
    scalar loop's strict-improvement rule) is identical.
    """
    m = ctx.m
    n_a = len(anchors)
    masks_np = ctx.masks_np
    fullv = np.uint64(ctx.full_mask)

    # One span for the whole batch — the columnar path runs every anchor
    # round simultaneously, so the per-anchor span collapses to a single
    # emission with the anchor count attached.
    with deadline.span("gkg.anchor_round", anchors=n_a):
        return _assemble_rounds(ctx, anchors, nearest_row, deadline)


def _assemble_rounds(
    ctx: QueryContext,
    anchors: np.ndarray,
    nearest_row: List[Optional[np.ndarray]],
    deadline: Deadline,
) -> List[int]:
    m = ctx.m
    n_a = len(anchors)
    masks_np = ctx.masks_np
    fullv = np.uint64(ctx.full_mask)

    covered = masks_np[anchors].copy()
    members = np.broadcast_to(anchors[:, None], (n_a, m + 1)).copy()
    counts = np.ones(n_a, dtype=np.intp)

    # One check up front (like the scalar loop's first iteration), none
    # inside the rounds: the whole assembly is <= m short vector passes,
    # and raising mid-assembly would time out before the first incumbent
    # offer — the degraded path expects GKG to leave an incumbent behind.
    deadline.check()
    for _round in range(m):
        active = np.flatnonzero(covered != fullv)
        if active.size == 0:
            break
        miss = (~covered[active]) & fullv
        low = miss & (np.uint64(0) - miss)
        # frexp on an exact power of two returns (0.5, k+1) — an exact
        # lowest-set-bit position without per-element Python.
        bitpos = np.frexp(low.astype(np.float64))[1] - 1
        picked = np.empty(active.size, dtype=np.intp)
        for bit in np.unique(bitpos):
            lookup = nearest_row[int(bit)]
            assert lookup is not None  # bit uncovered => lookup was built
            sel = bitpos == bit
            picked[sel] = lookup[active[sel]]
        members[active, counts[active]] = picked
        counts[active] += 1
        covered[active] |= masks_np[picked]

    # Padding repeats the anchor row, which never changes the pairwise max.
    pts = ctx.coords[members]
    diff = pts[:, :, None, :] - pts[:, None, :, :]
    sq = diff[..., 0] * diff[..., 0] + diff[..., 1] * diff[..., 1]
    per_group = sq.reshape(n_a, -1).max(axis=1)
    best = int(np.argmin(per_group))

    best_rows = [int(r) for r in members[best, : counts[best]]]
    deadline.offer(
        ctx, best_rows, float(per_group[best]) ** 0.5, quality=QUALITY_PARTIAL
    )
    return best_rows


def _best_group_irtree(
    ctx: QueryContext, anchor_rows: List[int], deadline: Deadline
) -> Optional[List[int]]:
    """IR-tree strategy: per-node inverted-file descent per keyword."""
    full = ctx.full_mask
    tree = ctx.ir_tree()

    best_rows: Optional[List[int]] = None
    best_diameter = float("inf")
    for anchor in anchor_rows:
        deadline.check()
        with deadline.span("gkg.anchor_round", anchor=int(anchor)):
            ax, ay = ctx.location_of_row(anchor)
            covered = ctx.masks[anchor]
            group_rows = [anchor]
            missing = full & ~covered
            feasible = True
            while missing:
                bit_pos = (missing & -missing).bit_length() - 1
                entry = tree.nearest_with_term(ax, ay, bit_pos)
                if entry is None:
                    feasible = False
                    break
                row = ctx.row_of(entry.item)
                group_rows.append(row)
                covered |= ctx.masks[row]
                missing = full & ~covered
        if not feasible:
            continue
        diameter = ctx.group_diameter_rows(group_rows)
        if diameter < best_diameter:
            best_diameter = diameter
            best_rows = group_rows
            deadline.offer(ctx, group_rows, diameter, quality=QUALITY_PARTIAL)
    return best_rows


def _best_group_brtree(
    ctx: QueryContext, anchor_rows: List[int], deadline: Deadline
) -> Optional[List[int]]:
    """Index strategy: bitmap-pruned nearest search per uncovered keyword."""
    full = ctx.full_mask
    tree = ctx.virtual_tree.tree

    best_rows: Optional[List[int]] = None
    best_diameter = float("inf")
    for anchor in anchor_rows:
        deadline.check()
        with deadline.span("gkg.anchor_round", anchor=int(anchor)):
            ax, ay = ctx.location_of_row(anchor)
            covered = ctx.masks[anchor]
            group_rows = [anchor]
            missing = full & ~covered
            feasible = True
            while missing:
                bit = missing & -missing
                entry = tree.nearest_with_mask(ax, ay, bit)
                if entry is None:
                    feasible = False
                    break
                row = ctx.row_of(entry.item)
                group_rows.append(row)
                covered |= ctx.masks[row]
                missing = full & ~covered
        if not feasible:
            continue
        diameter = ctx.group_diameter_rows(group_rows)
        if diameter < best_diameter:
            best_diameter = diameter
            best_rows = group_rows
            deadline.offer(ctx, group_rows, diameter, quality=QUALITY_PARTIAL)
    return best_rows
