"""Algorithm SKECa+ — global binary search for SKECq (paper §4.4, Alg. 2).

SKECa performs a full binary search around every pole; when early poles
yield large circles the upper bound stays loose for the rest.  SKECa+
instead binary-searches the diameter of SKECq itself: one probe diameter is
tried against *all* poles, stopping at the first pole where a circle is
found (the diameter is then an upper bound for SKECq) and recording, per
pole, the largest diameter known to fail (``maxInvalidRange``) so later
probes skip hopeless poles via Property 1.

The output circle and group are the same as SKECa's; EXACT additionally
consumes the ``max_invalid_range`` array for its Lemma-3 pruning, so the
full state is exposed through :func:`skeca_plus_state`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..geometry.circle import Circle
from ..geometry.mcc import minimum_covering_circle
from ..kernels import kernel_mode, vectorized_enabled
from .circlescan import circle_scan
from .common import QUALITY_APPROX, Deadline
from .gkg import gkg
from .query import QueryContext
from .result import Group
from .skeca import DEFAULT_EPSILON, _single_object_answer

__all__ = ["skeca_plus", "skeca_plus_state", "SkecaPlusState"]


@dataclass
class SkecaPlusState:
    """Full outcome of Algorithm 2, consumed by EXACT (Algorithm 3)."""

    group: Group
    gkg_group: Group
    alpha: float
    #: Per-O'-row largest diameter for which circleScan failed (0.0 when
    #: the pole was never probed unsuccessfully).
    max_invalid_range: List[float] = field(default_factory=list)
    binary_steps: int = 0
    scans: int = 0


def skeca_plus(
    ctx: QueryContext,
    epsilon: float = DEFAULT_EPSILON,
    deadline: Optional[Deadline] = None,
) -> Group:
    """Run SKECa+; ratio 2/√3 + ε."""
    return skeca_plus_state(ctx, epsilon, deadline).group


def skeca_plus_state(
    ctx: QueryContext,
    epsilon: float = DEFAULT_EPSILON,
    deadline: Optional[Deadline] = None,
) -> SkecaPlusState:
    """Run SKECa+ and return the group plus the internal pruning state."""
    deadline = deadline or Deadline.unlimited("SKECa+")
    with deadline.span(
        "skecaplus.plan",
        kernel=kernel_mode(),
        m=ctx.m,
        epsilon=epsilon,
        poles=len(ctx.relevant_ids),
    ):
        pass
    deadline.count("kernel_vectorized", 1.0 if vectorized_enabled() else 0.0)
    with deadline.span("gkg.run"):
        greedy = gkg(ctx, deadline)
    n_relevant = len(ctx.relevant_ids)

    single = _single_object_answer(ctx, "SKECa+")
    if single is not None:
        return SkecaPlusState(
            group=single,
            gkg_group=greedy,
            alpha=epsilon * greedy.diameter / 2.0,
            max_invalid_range=[0.0] * n_relevant,
        )

    alpha = epsilon * greedy.diameter / 2.0
    gkg_rows = [ctx.row_of(oid) for oid in greedy.object_ids]
    current_circle = minimum_covering_circle(ctx.coords[r] for r in gkg_rows)
    current_rows = gkg_rows

    search_ub = current_circle.diameter
    search_lb = greedy.diameter / 2.0
    max_invalid = [0.0] * n_relevant

    # Probe poles in ascending coverage-radius order: poles that can host a
    # small keywords enclosing circle come first, so successful probes break
    # early, and the searchsorted prefix skips every pole whose surrounding
    # objects cannot cover the query at the probe diameter at all.
    radii = ctx.cover_radii
    pole_order = np.argsort(radii, kind="stable")
    sorted_radii = radii[pole_order]

    # Warm-up: fully binary-search the single most promising pole (smallest
    # coverage radius).  Its o-across SKEC is an upper bound on SKECq, so
    # the global search starts with a near-tight range and failing probes —
    # the expensive case, each sweeping every eligible pole — become rare.
    from .skeca import find_app_oskec

    steps = 0
    scans = 0
    last_success_pole = -1
    if len(pole_order) > 0:
        warm_pole = int(pole_order[0])
        with deadline.span("skecaplus.warmup", pole=warm_pole):
            warm, warm_steps = find_app_oskec(
                ctx, warm_pole, search_lb, search_ub, alpha, deadline
            )
        steps += warm_steps
        scans += warm_steps
        if warm is not None:
            # Any successful warm probe makes this pole the last-success
            # pole; previously a probe matching search_ub exactly was
            # discarded and the first binary step lost its fast path.
            last_success_pole = warm_pole
            if warm.diameter < search_ub:
                search_ub = warm.diameter
                current_rows = warm.rows
                current_circle = warm.circle(ctx)
    while search_ub - search_lb > alpha:
        deadline.check()
        diam = (search_ub + search_lb) / 2.0
        steps += 1
        deadline.count("binary_steps")
        found_result = False
        eligible = int(np.searchsorted(sorted_radii, diam * (1.0 + 1e-12), side="right"))
        with deadline.span(
            "skecaplus.binary_step", diameter=diam, eligible_poles=eligible
        ) as step_span:
            # The pole that hosted the last successful probe is the most
            # likely to host the next (the probe shrank only a little);
            # trying it first turns most successful probes into a single
            # sweep.
            candidates = (
                range(-1, eligible) if last_success_pole >= 0 else range(eligible)
            )
            for pole_idx in candidates:
                pole = last_success_pole if pole_idx < 0 else int(pole_order[pole_idx])
                if pole_idx >= 0 and pole == last_success_pole:
                    continue
                if diam <= max_invalid[pole]:
                    # Property 1: a diameter known to fail at this pole also
                    # rules out every smaller diameter.
                    deadline.count("property1_skips")
                    continue
                scans += 1
                deadline.count("circle_scans")
                with deadline.span("circlescan", pole=pole):
                    hit = circle_scan(ctx, pole, diam)
                if hit is not None:
                    search_ub = diam
                    rows, theta = hit
                    current_rows = rows
                    current_circle = _circle_at(ctx, pole, diam, theta)
                    deadline.offer(ctx, rows, diam)
                    found_result = True
                    last_success_pole = pole
                    break
                if diam > max_invalid[pole]:
                    max_invalid[pole] = diam
            step_span.set_attribute("found", found_result)
        if not found_result:
            search_lb = diam

    group = Group.from_rows(
        ctx, current_rows, algorithm="SKECa+", enclosing_circle=current_circle
    )
    group.stats["binary_steps"] = float(steps)
    group.stats["circle_scans"] = float(scans)
    group.stats["alpha"] = alpha
    # Converged: the Theorem-6 certificate holds for this group, and for
    # any smaller incumbent EXACT finds while refining it.
    deadline.note_bound(QUALITY_APPROX, group.diameter)
    deadline.offer(ctx, current_rows, group.diameter)
    group.quality = QUALITY_APPROX
    return SkecaPlusState(
        group=group,
        gkg_group=greedy,
        alpha=alpha,
        max_invalid_range=max_invalid,
        binary_steps=steps,
        scans=scans,
    )


def _circle_at(ctx: QueryContext, pole_row: int, diameter: float, theta: float) -> Circle:
    px, py = ctx.location_of_row(pole_row)
    r = diameter / 2.0
    return Circle(px + r * math.cos(theta), py + r * math.sin(theta), r)
