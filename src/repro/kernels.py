"""Kernel-mode switch: columnar/vectorized hot paths vs the object path.

The inner loops the paper's algorithms spend their time in — circleScan's
angular sweep, pairwise diameter, posting-list merging, grid bucketing and
R*-tree frontier scans — each have two implementations:

* the **columnar** path: batch numpy kernels over struct-of-arrays storage
  (the default), and
* the **object** path: the original scalar-Python loops over
  :class:`~repro.core.objects.GeoObject`-shaped rows, kept as the trusted
  reference implementation.

Both paths are maintained and must return bit-identical groups (the parity
suite in ``tests/core/test_columnar_parity.py`` enforces this); the perf
gate (``benchmarks/perf_gate.py``) times them against each other so the
columnar speedup is measured, not asserted.

Switch globally with the ``REPRO_SCALAR_KERNELS`` environment variable
(``1``/``true``/``yes`` selects the object path at import time), or
locally with :func:`scalar_kernels` / :func:`set_vectorized`.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

__all__ = ["vectorized_enabled", "set_vectorized", "scalar_kernels", "kernel_mode"]

_TRUTHY = ("1", "true", "yes", "on")

_vectorized: bool = os.environ.get("REPRO_SCALAR_KERNELS", "").strip().lower() not in _TRUTHY


def vectorized_enabled() -> bool:
    """True when the columnar/vectorized kernels are active."""
    return _vectorized


def kernel_mode() -> str:
    """Current mode as the label EXPLAIN and the span layer use."""
    return "vectorized" if _vectorized else "scalar"


def set_vectorized(enabled: bool) -> bool:
    """Set the kernel mode; returns the previous mode."""
    global _vectorized
    previous = _vectorized
    _vectorized = bool(enabled)
    return previous


@contextmanager
def scalar_kernels():
    """Run a block on the object (scalar reference) path."""
    previous = set_vectorized(False)
    try:
        yield
    finally:
        set_vectorized(previous)
