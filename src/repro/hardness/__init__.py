"""NP-hardness machinery: 3-SAT, DPLL, and the Theorem-1 reduction."""

from .reduction import MCKReduction, decide_3sat_via_mck, reduce_3sat_to_mck
from .threesat import ThreeSatFormula, dpll_satisfiable, random_3sat

__all__ = [
    "MCKReduction",
    "decide_3sat_via_mck",
    "reduce_3sat_to_mck",
    "ThreeSatFormula",
    "dpll_satisfiable",
    "random_3sat",
]
