"""The Theorem-1 reduction: 3-SAT → mCK (paper Appendix A).

Construction: take a circle of diameter ``d' = d + ε``.  Each variable
``u_i`` becomes a point on the circle with its negation placed
diametrically opposite (distance exactly ``d'``).  A keyword ``q_i`` is
attached to both points of pair i, and a keyword ``q_{m+j}`` to the three
points whose literals appear in clause ``C_j``.  With the variable angles
spread evenly over ``[0, π)``, every non-antipodal pair of points is at
distance at most ``d = d' · cos(π / (2m)) < d'``.

An mCK query over all ``m + n`` keywords then has a solution of diameter
at most ``d`` **iff** the formula is satisfiable: a group within ``d``
can never contain both points of a pair (they are ``d'`` apart), so it
picks one literal per variable — an assignment — and covering the clause
keywords means every clause contains a chosen literal.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.engine import MCKEngine
from ..core.objects import Dataset
from ..core.result import Group
from .threesat import ThreeSatFormula

__all__ = ["MCKReduction", "reduce_3sat_to_mck", "decide_3sat_via_mck"]


@dataclass
class MCKReduction:
    """The mCK instance produced from a 3-SAT formula."""

    formula: ThreeSatFormula
    dataset: Dataset
    query_keywords: Tuple[str, ...]
    #: Decision threshold: satisfiable iff the optimal diameter <= this.
    threshold: float
    #: Distance between a variable point and its negation (= d + ε).
    antipodal_distance: float
    #: object id -> signed literal it represents.
    literal_of_object: Dict[int, int]

    def assignment_from_group(self, group: Group) -> Dict[int, bool]:
        """Read a truth assignment off a group of diameter <= threshold.

        Variables whose points are absent from the group are unconstrained
        and default to False.
        """
        assignment = {v: False for v in range(1, self.formula.n_variables + 1)}
        for oid in group.object_ids:
            lit = self.literal_of_object[oid]
            assignment[abs(lit)] = lit > 0
        return assignment


def reduce_3sat_to_mck(
    formula: ThreeSatFormula, diameter_prime: float = 2.0
) -> MCKReduction:
    """Build the Appendix-A mCK instance for ``formula``."""
    m = formula.n_variables
    radius = diameter_prime / 2.0
    threshold = diameter_prime * math.cos(math.pi / (2.0 * m))

    # Keywords attached to each literal point.
    keywords_of_literal: Dict[int, List[str]] = {}
    for v in range(1, m + 1):
        keywords_of_literal[v] = [f"q{v}"]
        keywords_of_literal[-v] = [f"q{v}"]
    for j, clause in enumerate(formula.clauses, start=1):
        for lit in clause:
            keywords_of_literal[lit].append(f"q{m + j}")

    dataset = Dataset(name="3sat-reduction")
    literal_of_object: Dict[int, int] = {}
    for v in range(1, m + 1):
        angle = (v - 1) * math.pi / m
        x = radius * math.cos(angle)
        y = radius * math.sin(angle)
        oid = dataset.add(x, y, keywords_of_literal[v])
        literal_of_object[oid] = v
        oid = dataset.add(-x, -y, keywords_of_literal[-v])
        literal_of_object[oid] = -v
    dataset.finalize()

    query_keywords = tuple(
        [f"q{v}" for v in range(1, m + 1)]
        + [f"q{m + j}" for j in range(1, formula.n_clauses + 1)]
    )
    return MCKReduction(
        formula=formula,
        dataset=dataset,
        query_keywords=query_keywords,
        threshold=threshold,
        antipodal_distance=diameter_prime,
        literal_of_object=literal_of_object,
    )


def decide_3sat_via_mck(
    formula: ThreeSatFormula, algorithm: str = "EXACT"
) -> Tuple[bool, Optional[Dict[int, bool]]]:
    """Decide satisfiability by solving the reduced mCK instance.

    Returns ``(satisfiable, model)``.  Any exact mCK algorithm works;
    an approximate one would only be sound for "unsatisfiable" answers.
    """
    reduction = reduce_3sat_to_mck(formula)
    engine = MCKEngine(reduction.dataset)
    group = engine.query(reduction.query_keywords, algorithm=algorithm)
    # Strictly below the antipodal distance is the clean separation; use
    # the midpoint of [threshold, d'] to absorb float error.
    cutoff = (reduction.threshold + reduction.antipodal_distance) / 2.0
    if group.diameter <= cutoff:
        model = reduction.assignment_from_group(group)
        return True, model
    return False, None
