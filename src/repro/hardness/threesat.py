"""3-SAT formulas and a small DPLL solver.

Support machinery for the paper's NP-hardness proof (Theorem 1 /
Appendix A): the reduction module maps 3-SAT instances to mCK instances,
and the tests verify that the mCK decision answer matches a ground-truth
SAT answer computed here.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

__all__ = ["ThreeSatFormula", "dpll_satisfiable", "random_3sat"]


@dataclass(frozen=True)
class ThreeSatFormula:
    """A CNF formula with clauses of at most three literals.

    A literal is a non-zero int: ``+i`` for variable i, ``-i`` for its
    negation, with variables numbered from 1 (DIMACS convention).
    """

    n_variables: int
    clauses: Tuple[Tuple[int, ...], ...]

    def __post_init__(self):
        for clause in self.clauses:
            if not clause or len(clause) > 3:
                raise ValueError(f"clause size must be 1..3, got {clause}")
            for lit in clause:
                if lit == 0 or abs(lit) > self.n_variables:
                    raise ValueError(f"literal {lit} out of range")

    @property
    def n_clauses(self) -> int:
        return len(self.clauses)

    def evaluate(self, assignment: Dict[int, bool]) -> bool:
        """True when ``assignment`` (variable -> bool) satisfies the formula."""
        for clause in self.clauses:
            if not any(
                assignment.get(abs(lit), False) == (lit > 0) for lit in clause
            ):
                return False
        return True


def dpll_satisfiable(
    formula: ThreeSatFormula,
) -> Tuple[bool, Optional[Dict[int, bool]]]:
    """Decide satisfiability by DPLL with unit propagation.

    Returns ``(satisfiable, model)``; the model is a full assignment when
    satisfiable, otherwise ``None``.
    """
    clauses = [frozenset(c) for c in formula.clauses]
    assignment: Dict[int, bool] = {}

    result = _dpll(clauses, assignment)
    if result is None:
        return False, None
    # Unconstrained variables default to False.
    for v in range(1, formula.n_variables + 1):
        result.setdefault(v, False)
    return True, result


def _dpll(
    clauses: List[FrozenSet[int]], assignment: Dict[int, bool]
) -> Optional[Dict[int, bool]]:
    clauses = list(clauses)

    # Unit propagation.
    changed = True
    while changed:
        changed = False
        unit = next((c for c in clauses if len(c) == 1), None)
        if unit is not None:
            lit = next(iter(unit))
            assignment = dict(assignment)
            assignment[abs(lit)] = lit > 0
            new_clauses = _assign(clauses, lit)
            if new_clauses is None:
                return None
            clauses = new_clauses
            changed = True

    if not clauses:
        return assignment
    # Branch on the first literal of the first clause.
    lit = next(iter(clauses[0]))
    for choice in (lit, -lit):
        reduced = _assign(clauses, choice)
        if reduced is None:
            continue
        branch_assignment = dict(assignment)
        branch_assignment[abs(choice)] = choice > 0
        result = _dpll(reduced, branch_assignment)
        if result is not None:
            return result
    return None


def _assign(
    clauses: List[FrozenSet[int]], lit: int
) -> Optional[List[FrozenSet[int]]]:
    """Apply literal ``lit`` := true; ``None`` signals an empty clause."""
    out: List[FrozenSet[int]] = []
    for clause in clauses:
        if lit in clause:
            continue
        if -lit in clause:
            reduced = clause - {-lit}
            if not reduced:
                return None
            out.append(reduced)
        else:
            out.append(clause)
    return out


def random_3sat(
    n_variables: int, n_clauses: int, seed: int = 0
) -> ThreeSatFormula:
    """A uniformly random 3-SAT instance (distinct variables per clause)."""
    if n_variables < 3:
        raise ValueError("need at least 3 variables for 3-literal clauses")
    rng = random.Random(seed)
    clauses = []
    for _ in range(n_clauses):
        variables = rng.sample(range(1, n_variables + 1), 3)
        clause = tuple(v if rng.random() < 0.5 else -v for v in variables)
        clauses.append(clause)
    return ThreeSatFormula(n_variables, tuple(clauses))
