"""Exporters: Prometheus text exposition and Chrome trace-event JSON.

Two consumers, two formats:

* :func:`render_prometheus` — the `text exposition format
  <https://prometheus.io/docs/instrumenting/exposition_formats/>`_ a
  Prometheus scraper (or ``curl`` + eyeballs) understands.  Works on any
  iterable of :mod:`repro.observability.metrics` families.
* :func:`chrome_trace` / :func:`write_chrome_trace` — the Trace Event JSON
  format (``{"traceEvents": [...]}``, complete ``"ph": "X"`` events) that
  Perfetto and ``chrome://tracing`` load directly.  Works on a
  :class:`~repro.observability.tracer.Tracer` or a plain span-dict list.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterable, List, Optional, Union

from .tracer import Tracer

__all__ = [
    "render_prometheus",
    "chrome_trace",
    "write_chrome_trace",
]

_ESCAPES = str.maketrans({"\\": r"\\", '"': r"\"", "\n": r"\n"})


def _escape(value: str) -> str:
    return str(value).translate(_ESCAPES)


def _render_labels(labels: Dict[str, str], extra=None) -> str:
    parts = [f'{k}="{_escape(v)}"' for k, v in sorted(labels.items())]
    if extra is not None:
        parts.append(f'{extra[0]}="{_escape(extra[1])}"')
    return "{" + ",".join(parts) + "}" if parts else ""


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def render_prometheus(metrics: Iterable[Any], exemplars: bool = False) -> str:
    """Render metric families as Prometheus text exposition (version 0.0.4).

    Each family must expose ``name``, ``kind``, ``help`` and a
    ``samples()`` iterator of ``(suffix, labels, extra_label, value)``
    tuples — the protocol of :class:`~repro.observability.metrics.Counter`,
    :class:`~repro.observability.metrics.Gauge` and
    :class:`~repro.observability.metrics.Histogram`.

    With ``exemplars=True``, histogram ``_bucket`` lines carry an
    OpenMetrics-style exemplar suffix — ``... 5 # {trace_id="..."} 0.042``
    — linking the bucket to a retained trace.  Classic Prometheus text
    parsers reject that syntax, so it is opt-in; the OpenMetrics format
    (and Perfetto-adjacent tooling) accepts it.
    """
    lines: List[str] = []
    for metric in metrics:
        if metric.help:
            lines.append(f"# HELP {metric.name} {_escape(metric.help)}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        use_exemplars = exemplars and hasattr(metric, "samples_with_exemplars")
        sample_iter = (
            metric.samples_with_exemplars() if use_exemplars else metric.samples()
        )
        for sample in sample_iter:
            if use_exemplars:
                suffix, labels, extra, value, exemplar = sample
            else:
                suffix, labels, extra, value = sample
                exemplar = None
            label_text = _render_labels(labels, extra)
            line = f"{metric.name}{suffix}{label_text} {_format_value(value)}"
            if exemplar is not None:
                ex_labels, ex_value = exemplar
                line += f" # {_render_labels(ex_labels)} {_format_value(ex_value)}"
            lines.append(line)
    return "\n".join(lines) + "\n" if lines else ""


# --------------------------------------------------------------------- #
# Chrome trace events
# --------------------------------------------------------------------- #


def _spans_of(source: Union[Tracer, Iterable[Dict[str, Any]]]) -> List[Dict[str, Any]]:
    if isinstance(source, Tracer):
        return source.finished_spans()
    return list(source)


def chrome_trace(
    source: Union[Tracer, Iterable[Dict[str, Any]]],
    main_pid: Optional[int] = None,
) -> Dict[str, Any]:
    """Build a Chrome trace-event document from spans.

    Every span becomes one complete ("ph": "X") event; trace/span ids and
    attributes ride along in ``args`` so Perfetto's query view can slice by
    them.  Timestamps are microseconds (the format's unit), preserving the
    monotonic-clock origin — only relative times are meaningful.

    ``process_name`` / ``thread_name`` metadata events (``"ph": "M"``) are
    prepended so Perfetto groups the coordinator process and its pool
    workers under readable labels.  ``main_pid`` names which pid is the
    coordinator; it defaults to the exporting process, which is correct
    whenever the parent does the exporting.
    """
    spans = _spans_of(source)
    events: List[Dict[str, Any]] = _metadata_events(spans, main_pid)
    for sp in sorted(spans, key=lambda s: s["start_ns"]):
        args = {k: _json_safe(v) for k, v in sp.get("attributes", {}).items()}
        args["trace_id"] = sp.get("trace_id")
        args["span_id"] = sp.get("span_id")
        if sp.get("parent_id"):
            args["parent_id"] = sp["parent_id"]
        events.append(
            {
                "name": sp["name"],
                "ph": "X",
                "ts": sp["start_ns"] / 1000.0,
                "dur": max(sp["end_ns"] - sp["start_ns"], 0) / 1000.0,
                "pid": sp.get("pid", 0),
                "tid": sp.get("thread_id", 0),
                "cat": sp["name"].split(".", 1)[0],
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def _metadata_events(
    spans: List[Dict[str, Any]], main_pid: Optional[int]
) -> List[Dict[str, Any]]:
    """``process_name``/``thread_name`` metadata for every pid / thread.

    The exporting process (or ``main_pid``) is labelled the coordinator;
    any other pid in the span set is a pool worker — the distinction the
    EXACT process pool and the distributed simulation both produce.
    """
    if main_pid is None:
        main_pid = os.getpid()
    events: List[Dict[str, Any]] = []
    seen_pids: Dict[int, None] = {}
    seen_threads: Dict[tuple, str] = {}
    for sp in spans:
        pid = sp.get("pid", 0)
        tid = sp.get("thread_id", 0)
        seen_pids.setdefault(pid, None)
        key = (pid, tid)
        if key not in seen_threads:
            seen_threads[key] = str(sp.get("thread_name") or f"thread-{tid}")
    for pid in sorted(seen_pids):
        label = (
            f"coordinator (pid {pid})"
            if pid == main_pid
            else f"pool-worker (pid {pid})"
        )
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "args": {"name": label},
            }
        )
    for (pid, tid), tname in sorted(seen_threads.items()):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": tname},
            }
        )
    return events


def write_chrome_trace(
    source: Union[Tracer, Iterable[Dict[str, Any]]], path: str
) -> int:
    """Write the Chrome trace JSON to ``path``; returns the event count."""
    document = chrome_trace(source)
    with open(path, "w") as fh:
        json.dump(document, fh, indent=1)
        fh.write("\n")
    return len(document["traceEvents"])


def _json_safe(value: Any) -> Any:
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if isinstance(value, float):
        return value if value == value and abs(value) != float("inf") else str(value)
    return str(value)
