"""Exporters: Prometheus text exposition and Chrome trace-event JSON.

Two consumers, two formats:

* :func:`render_prometheus` — the `text exposition format
  <https://prometheus.io/docs/instrumenting/exposition_formats/>`_ a
  Prometheus scraper (or ``curl`` + eyeballs) understands.  Works on any
  iterable of :mod:`repro.observability.metrics` families.
* :func:`chrome_trace` / :func:`write_chrome_trace` — the Trace Event JSON
  format (``{"traceEvents": [...]}``, complete ``"ph": "X"`` events) that
  Perfetto and ``chrome://tracing`` load directly.  Works on a
  :class:`~repro.observability.tracer.Tracer` or a plain span-dict list.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Union

from .tracer import Tracer

__all__ = [
    "render_prometheus",
    "chrome_trace",
    "write_chrome_trace",
]

_ESCAPES = str.maketrans({"\\": r"\\", '"': r"\"", "\n": r"\n"})


def _escape(value: str) -> str:
    return str(value).translate(_ESCAPES)


def _render_labels(labels: Dict[str, str], extra=None) -> str:
    parts = [f'{k}="{_escape(v)}"' for k, v in sorted(labels.items())]
    if extra is not None:
        parts.append(f'{extra[0]}="{_escape(extra[1])}"')
    return "{" + ",".join(parts) + "}" if parts else ""


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def render_prometheus(metrics: Iterable[Any]) -> str:
    """Render metric families as Prometheus text exposition (version 0.0.4).

    Each family must expose ``name``, ``kind``, ``help`` and a
    ``samples()`` iterator of ``(suffix, labels, extra_label, value)``
    tuples — the protocol of :class:`~repro.observability.metrics.Counter`,
    :class:`~repro.observability.metrics.Gauge` and
    :class:`~repro.observability.metrics.Histogram`.
    """
    lines: List[str] = []
    for metric in metrics:
        if metric.help:
            lines.append(f"# HELP {metric.name} {_escape(metric.help)}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        for suffix, labels, extra, value in metric.samples():
            label_text = _render_labels(labels, extra)
            lines.append(f"{metric.name}{suffix}{label_text} {_format_value(value)}")
    return "\n".join(lines) + "\n" if lines else ""


# --------------------------------------------------------------------- #
# Chrome trace events
# --------------------------------------------------------------------- #


def _spans_of(source: Union[Tracer, Iterable[Dict[str, Any]]]) -> List[Dict[str, Any]]:
    if isinstance(source, Tracer):
        return source.finished_spans()
    return list(source)


def chrome_trace(source: Union[Tracer, Iterable[Dict[str, Any]]]) -> Dict[str, Any]:
    """Build a Chrome trace-event document from spans.

    Every span becomes one complete ("ph": "X") event; trace/span ids and
    attributes ride along in ``args`` so Perfetto's query view can slice by
    them.  Timestamps are microseconds (the format's unit), preserving the
    monotonic-clock origin — only relative times are meaningful.
    """
    events: List[Dict[str, Any]] = []
    for sp in sorted(_spans_of(source), key=lambda s: s["start_ns"]):
        args = {k: _json_safe(v) for k, v in sp.get("attributes", {}).items()}
        args["trace_id"] = sp.get("trace_id")
        args["span_id"] = sp.get("span_id")
        if sp.get("parent_id"):
            args["parent_id"] = sp["parent_id"]
        events.append(
            {
                "name": sp["name"],
                "ph": "X",
                "ts": sp["start_ns"] / 1000.0,
                "dur": max(sp["end_ns"] - sp["start_ns"], 0) / 1000.0,
                "pid": sp.get("pid", 0),
                "tid": sp.get("thread_id", 0),
                "cat": sp["name"].split(".", 1)[0],
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    source: Union[Tracer, Iterable[Dict[str, Any]]], path: str
) -> int:
    """Write the Chrome trace JSON to ``path``; returns the event count."""
    document = chrome_trace(source)
    with open(path, "w") as fh:
        json.dump(document, fh, indent=1)
        fh.write("\n")
    return len(document["traceEvents"])


def _json_safe(value: Any) -> Any:
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if isinstance(value, float):
        return value if value == value and abs(value) != float("inf") else str(value)
    return str(value)
