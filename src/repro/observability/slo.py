"""SLO tracking: rolling-window burn rates, error budgets, alerts.

An SLO ("99% of queries answer in under 250 ms over the window") is
tracked as a stream of good/bad events bucketed per second into rolling
windows.  From those the tracker derives the quantities SRE practice
actually pages on:

* **burn rate** — the window's bad-event rate divided by the budgeted
  rate ``1 - objective``.  Burn 1.0 spends the error budget exactly at
  the sustainable pace; burn 10.0 exhausts it 10× too fast.
* **multi-window alerts** — a policy ``(short, long, factor)`` fires
  when *both* the short and the long window burn at ≥ ``factor``; the
  long window keeps one latency spike from paging, the short window
  makes the alert reset quickly once the incident ends.
* **error budget remaining** — the fraction of the longest window's
  budget still unspent (clamped to [0, 1]).

Wire a tracker to a :class:`~repro.serving.stats.MetricsRegistry` (or
pass one at construction) and the gauges ride the existing Prometheus
export: ``mck_slo_burn_rate{slo,window}``,
``mck_slo_error_budget_remaining{slo}``, ``mck_slo_alert{slo}`` and the
``mck_slo_events_total{slo,outcome}`` counter.

Arithmetic contract: an empty window yields burn 0.0 and budget 1.0 —
never NaN — so the burn-rate math is safe to export from a cold start.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "SLObjective",
    "SLOTracker",
    "DEFAULT_WINDOWS",
    "DEFAULT_ALERT_POLICIES",
    "default_objectives",
]

#: Rolling windows, seconds: fast signal, paging signal, budget window.
DEFAULT_WINDOWS: Tuple[int, ...] = (60, 300, 1800)

#: Multi-window alert policies ``(short_s, long_s, factor)`` — the
#: classic fast-burn and slow-burn pair.
DEFAULT_ALERT_POLICIES: Tuple[Tuple[int, int, float], ...] = (
    (60, 300, 10.0),
    (300, 1800, 2.0),
)


@dataclass(frozen=True)
class SLObjective:
    """One service-level objective.

    ``kind`` selects how a :class:`~repro.serving.stats.QueryStats`
    record is classified:

    * ``"latency"`` — SLI over *answered* requests only (rejected and
      errored requests are excluded; they are availability's problem);
      good when ``total_seconds <= latency_target``.
    * ``"availability"`` — SLI over all requests; bad when the request
      errored **or was rejected by admission control** (a shed request
      is unavailability from the client's side of the socket).
    """

    name: str
    kind: str  # "latency" | "availability"
    objective: float  # good-event fraction target in (0, 1)
    latency_target: Optional[float] = None  # seconds; latency kind only

    def __post_init__(self) -> None:
        if self.kind not in ("latency", "availability"):
            raise ValueError(f"unknown SLO kind {self.kind!r}")
        if not 0.0 < self.objective < 1.0:
            raise ValueError("objective must be a fraction in (0, 1)")
        if self.kind == "latency" and not self.latency_target:
            raise ValueError("latency SLO needs a latency_target")

    def classify(self, stats) -> Optional[bool]:
        """True good / False bad / None not-applicable for this SLI."""
        rejected = bool(getattr(stats, "rejected", False))
        success = bool(getattr(stats, "success", True))
        if self.kind == "availability":
            return success and not rejected
        if rejected or not success:
            return None
        return float(getattr(stats, "total_seconds", 0.0)) <= self.latency_target


def default_objectives(
    latency_target: float = 0.25,
    latency_objective: float = 0.95,
    availability_objective: float = 0.99,
) -> Tuple[SLObjective, ...]:
    """The serving layer's stock pair: latency-under-target + availability."""
    return (
        SLObjective("latency", "latency", latency_objective, latency_target),
        SLObjective("availability", "availability", availability_objective),
    )


class _Ring:
    """Per-second good/bad buckets covering the last ``horizon`` seconds."""

    __slots__ = ("horizon", "_buckets")

    def __init__(self, horizon: int):
        self.horizon = int(horizon)
        self._buckets: Dict[int, List[float]] = {}

    def add(self, now: float, good: bool) -> None:
        second = int(now)
        bucket = self._buckets.get(second)
        if bucket is None:
            self._evict(second)
            bucket = self._buckets[second] = [0.0, 0.0]
        bucket[0 if good else 1] += 1.0

    def totals(self, now: float, window: int) -> Tuple[float, float]:
        """(good, bad) counts over the trailing ``window`` seconds."""
        second = int(now)
        cutoff = second - int(window)
        good = bad = 0.0
        for ts, bucket in self._buckets.items():
            if cutoff < ts <= second:
                good += bucket[0]
                bad += bucket[1]
        return good, bad

    def _evict(self, now_second: int) -> None:
        cutoff = now_second - self.horizon
        if len(self._buckets) > self.horizon:
            for ts in [t for t in self._buckets if t <= cutoff]:
                del self._buckets[ts]


class SLOTracker:
    """Track a set of :class:`SLObjective` over rolling windows.

    Parameters
    ----------
    objectives:
        The SLOs to track; defaults to :func:`default_objectives`.
    windows:
        Rolling window lengths in seconds; the longest one is the error
        budget window.
    alert_policies:
        ``(short_s, long_s, factor)`` triples; both windows must burn at
        ≥ factor for the alert to fire.  Windows referenced here are
        tracked even if absent from ``windows``.
    registry:
        Optional :class:`~repro.serving.stats.MetricsRegistry` to bind
        gauges onto immediately (see :meth:`bind`).
    clock:
        Injectable time source (seconds); tests pass a fake.
    """

    def __init__(
        self,
        objectives: Optional[Sequence[SLObjective]] = None,
        windows: Sequence[int] = DEFAULT_WINDOWS,
        alert_policies: Sequence[Tuple[int, int, float]] = DEFAULT_ALERT_POLICIES,
        registry=None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.objectives: Tuple[SLObjective, ...] = tuple(
            objectives if objectives is not None else default_objectives()
        )
        names = [o.name for o in self.objectives]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate SLO names: {names}")
        window_set = {int(w) for w in windows}
        for short, long_, _factor in alert_policies:
            window_set.add(int(short))
            window_set.add(int(long_))
        self.windows: Tuple[int, ...] = tuple(sorted(window_set))
        if not self.windows:
            raise ValueError("need at least one window")
        self.alert_policies = tuple(
            (int(s), int(l), float(f)) for s, l, f in alert_policies
        )
        self.clock = clock
        self._lock = threading.Lock()
        horizon = max(self.windows)
        self._rings: Dict[str, _Ring] = {
            o.name: _Ring(horizon) for o in self.objectives
        }
        self._events: Dict[Tuple[str, str], int] = {}
        self._burn_gauge = None
        self._budget_gauge = None
        self._alert_gauge = None
        self._events_counter = None
        if registry is not None:
            self.bind(registry)

    # -- wiring ---------------------------------------------------------- #

    def bind(self, registry) -> "SLOTracker":
        """Create/attach the SLO metric families on a registry.

        Gauges are refreshed by :meth:`refresh_gauges` (called from
        :meth:`as_dict`), not per record — burn rates are derived state,
        and deriving on read keeps the record path O(1).
        """
        self._burn_gauge = registry.gauge(
            "mck_slo_burn_rate",
            help="Error-budget burn rate per SLO and rolling window "
            "(1.0 = budget spent exactly at the sustainable pace).",
            label_names=("slo", "window"),
        )
        self._budget_gauge = registry.gauge(
            "mck_slo_error_budget_remaining",
            help="Fraction of the budget window's error budget unspent.",
            label_names=("slo",),
        )
        self._alert_gauge = registry.gauge(
            "mck_slo_alert",
            help="1 while any multi-window burn-rate alert fires for the SLO.",
            label_names=("slo",),
        )
        self._events_counter = registry.counter(
            "mck_slo_events_total",
            help="SLI events classified per SLO.",
            label_names=("slo", "outcome"),
        )
        return self

    # -- recording ------------------------------------------------------- #

    def record(self, stats) -> Dict[str, bool]:
        """Classify one QueryStats-shaped record against every objective.

        Returns ``{slo_name: good}`` for the objectives that applied.
        """
        now = self.clock()
        outcome: Dict[str, bool] = {}
        with self._lock:
            for objective in self.objectives:
                verdict = objective.classify(stats)
                if verdict is None:
                    continue
                outcome[objective.name] = verdict
                self._record_locked(objective.name, verdict, now)
        for name, good in outcome.items():
            if self._events_counter is not None:
                self._events_counter.inc(
                    1.0, slo=name, outcome="good" if good else "bad"
                )
        return outcome

    def record_event(self, name: str, good: bool) -> None:
        """Record a raw SLI event for one objective by name."""
        now = self.clock()
        with self._lock:
            if name not in self._rings:
                raise KeyError(f"unknown SLO {name!r}")
            self._record_locked(name, good, now)
        if self._events_counter is not None:
            self._events_counter.inc(
                1.0, slo=name, outcome="good" if good else "bad"
            )

    def _record_locked(self, name: str, good: bool, now: float) -> None:
        self._rings[name].add(now, good)
        key = (name, "good" if good else "bad")
        self._events[key] = self._events.get(key, 0) + 1

    # -- derived quantities ---------------------------------------------- #

    def burn_rate(self, name: str, window: int) -> float:
        """Bad-event rate over ``window`` divided by the budgeted rate.

        0.0 for an empty window (cold start burns nothing).
        """
        objective = self._objective(name)
        now = self.clock()
        with self._lock:
            good, bad = self._rings[name].totals(now, window)
        total = good + bad
        if total <= 0.0:
            return 0.0
        return (bad / total) / (1.0 - objective.objective)

    def error_budget_remaining(self, name: str) -> float:
        """Unspent budget fraction over the longest window, in [0, 1]."""
        burn = self.burn_rate(name, max(self.windows))
        return max(0.0, min(1.0, 1.0 - burn))

    def alerts(self, name: str) -> List[Dict[str, Any]]:
        """The alert policies currently firing for one objective."""
        firing = []
        for short, long_, factor in self.alert_policies:
            short_burn = self.burn_rate(name, short)
            long_burn = self.burn_rate(name, long_)
            if short_burn >= factor and long_burn >= factor:
                firing.append(
                    {
                        "short_window": short,
                        "long_window": long_,
                        "factor": factor,
                        "short_burn": short_burn,
                        "long_burn": long_burn,
                    }
                )
        return firing

    def refresh_gauges(self) -> None:
        """Push current burn/budget/alert values into the bound gauges."""
        if self._burn_gauge is None:
            return
        for objective in self.objectives:
            for window in self.windows:
                self._burn_gauge.set(
                    self.burn_rate(objective.name, window),
                    slo=objective.name,
                    window=str(window),
                )
            self._budget_gauge.set(
                self.error_budget_remaining(objective.name), slo=objective.name
            )
            self._alert_gauge.set(
                1.0 if self.alerts(objective.name) else 0.0, slo=objective.name
            )

    def as_dict(self) -> Dict[str, Any]:
        """The ``slo`` block of bench dumps; also refreshes bound gauges."""
        now = self.clock()
        out: Dict[str, Any] = {}
        for objective in self.objectives:
            with self._lock:
                ring = self._rings[objective.name]
                window_totals = {
                    window: ring.totals(now, window) for window in self.windows
                }
                good_total = self._events.get((objective.name, "good"), 0)
                bad_total = self._events.get((objective.name, "bad"), 0)
            windows = {}
            for window, (good, bad) in sorted(window_totals.items()):
                total = good + bad
                bad_rate = bad / total if total else 0.0
                windows[str(window)] = {
                    "good": good,
                    "bad": bad,
                    "burn_rate": bad_rate / (1.0 - objective.objective),
                }
            out[objective.name] = {
                "kind": objective.kind,
                "objective": objective.objective,
                "latency_target": objective.latency_target,
                "events": {"good": good_total, "bad": bad_total},
                "windows": windows,
                "error_budget_remaining": self.error_budget_remaining(
                    objective.name
                ),
                "alerts": self.alerts(objective.name),
            }
        self.refresh_gauges()
        return out

    # ------------------------------------------------------------------ #

    def _objective(self, name: str) -> SLObjective:
        for objective in self.objectives:
            if objective.name == name:
                return objective
        raise KeyError(f"unknown SLO {name!r}")
