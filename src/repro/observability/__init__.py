"""End-to-end observability for the mCK query stack.

Three cooperating layers (see ``docs/observability.md``):

* :mod:`~repro.observability.tracer` — low-overhead nested spans around
  every algorithm phase (binary-search steps, circleScan calls, EXACT's
  branch-and-bound, serving stages), exported as Chrome trace-event JSON;
* :mod:`~repro.observability.metrics` — histogram / counter / gauge
  families with labels, feeding the serving
  :class:`~repro.serving.stats.MetricsRegistry` and the Prometheus text
  exposition in :mod:`~repro.observability.exporters`;
* :mod:`~repro.observability.logging` — structured JSON logs with
  per-query correlation ids propagated across thread pools, the EXACT
  process pool, and the distributed coordinator→worker calls.
"""

from .exporters import chrome_trace, render_prometheus, write_chrome_trace
from .logging import (
    JsonFormatter,
    StructuredLogger,
    configure_logging,
    correlation_scope,
    get_correlation_id,
    get_logger,
    new_correlation_id,
    set_correlation_id,
)
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    log_buckets,
)
from .tracer import NULL_SPAN, Span, Tracer, get_tracer, set_tracer, span, traced

__all__ = [
    "Tracer",
    "Span",
    "NULL_SPAN",
    "get_tracer",
    "set_tracer",
    "span",
    "traced",
    "Histogram",
    "Counter",
    "Gauge",
    "log_buckets",
    "DEFAULT_LATENCY_BUCKETS",
    "render_prometheus",
    "chrome_trace",
    "write_chrome_trace",
    "JsonFormatter",
    "StructuredLogger",
    "configure_logging",
    "get_logger",
    "correlation_scope",
    "new_correlation_id",
    "set_correlation_id",
    "get_correlation_id",
]
