"""End-to-end observability for the mCK query stack.

Three cooperating layers (see ``docs/observability.md``):

* :mod:`~repro.observability.tracer` — low-overhead nested spans around
  every algorithm phase (binary-search steps, circleScan calls, EXACT's
  branch-and-bound, serving stages), exported as Chrome trace-event JSON;
* :mod:`~repro.observability.metrics` — histogram / counter / gauge
  families with labels, feeding the serving
  :class:`~repro.serving.stats.MetricsRegistry` and the Prometheus text
  exposition in :mod:`~repro.observability.exporters`;
* :mod:`~repro.observability.logging` — structured JSON logs with
  per-query correlation ids propagated across thread pools, the EXACT
  process pool, and the distributed coordinator→worker calls.

Plus the tail-latency forensics layer built on top of them:

* :mod:`~repro.observability.flight` — bounded flight recorder with
  tail-based sampling (keep the traces worth debugging, drop the bulk);
* :mod:`~repro.observability.explain` — per-query EXPLAIN reports from
  the span tree and instrumentation counters;
* :mod:`~repro.observability.slo` — rolling-window SLO tracking with
  multi-window burn-rate alerts and error-budget gauges;
* :mod:`~repro.observability.profiler` — continuous stack-sampling
  profiler emitting collapsed stacks for flame graphs.
"""

from .explain import build_explain, collect_trace_spans, render_explain
from .exporters import chrome_trace, render_prometheus, write_chrome_trace
from .flight import FlightRecorder, RetainedTrace, TraceOutcome
from .logging import (
    JsonFormatter,
    StructuredLogger,
    configure_logging,
    correlation_scope,
    get_correlation_id,
    get_logger,
    new_correlation_id,
    set_correlation_id,
)
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    log_buckets,
)
from .profiler import StackProfiler
from .slo import SLObjective, SLOTracker, default_objectives
from .tracer import NULL_SPAN, Span, Tracer, get_tracer, set_tracer, span, traced

__all__ = [
    "FlightRecorder",
    "RetainedTrace",
    "TraceOutcome",
    "build_explain",
    "render_explain",
    "collect_trace_spans",
    "SLOTracker",
    "SLObjective",
    "default_objectives",
    "StackProfiler",
    "Tracer",
    "Span",
    "NULL_SPAN",
    "get_tracer",
    "set_tracer",
    "span",
    "traced",
    "Histogram",
    "Counter",
    "Gauge",
    "log_buckets",
    "DEFAULT_LATENCY_BUCKETS",
    "render_prometheus",
    "chrome_trace",
    "write_chrome_trace",
    "JsonFormatter",
    "StructuredLogger",
    "configure_logging",
    "get_logger",
    "correlation_scope",
    "new_correlation_id",
    "set_correlation_id",
    "get_correlation_id",
]
