"""Histogram / counter / gauge metric primitives with labels.

The serving layer's :class:`~repro.serving.stats.MetricsRegistry` is built
on these: a :class:`Histogram` with fixed log-scale buckets records
per-algorithm latency (p50/p95/p99 without storing every sample),
:class:`Counter` and :class:`Gauge` families carry labelled counts, and
:func:`repro.observability.exporters.render_prometheus` turns any of them
into Prometheus text exposition.

All three metric types are *families*: one object per metric name, with
children keyed by label values.  ``observe``/``inc``/``set`` take the
labels as keyword arguments::

    hist = Histogram("mck_query_latency_seconds", label_names=("algorithm", "cache"))
    hist.observe(0.012, algorithm="SKECa+", cache="miss")
    hist.percentile(95.0, algorithm="SKECa+", cache="miss")

Thread safety: one lock per family, held only for the few dict/array
operations of a single observation.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "log_buckets",
    "DEFAULT_LATENCY_BUCKETS",
    "Histogram",
    "Counter",
    "Gauge",
]


def log_buckets(
    lo: float = 1e-6, hi: float = 100.0, per_decade: int = 4
) -> Tuple[float, ...]:
    """Fixed log-scale bucket upper bounds from ``lo`` to at least ``hi``.

    Bounds are ``lo * 10**(i / per_decade)`` — the same bucket geometry for
    every histogram, so percentile error is a constant relative factor
    (≤ 10**(1/per_decade), ~78% at the default 4/decade before the
    intra-bucket interpolation tightens it).
    """
    if lo <= 0 or hi <= lo:
        raise ValueError("need 0 < lo < hi")
    if per_decade < 1:
        raise ValueError("per_decade must be >= 1")
    bounds: List[float] = []
    i = 0
    while True:
        bound = lo * 10.0 ** (i / per_decade)
        bounds.append(bound)
        if bound >= hi:
            break
        i += 1
    return tuple(bounds)


#: Default bucket bounds for latency histograms: 1µs .. 100s, 4 per decade.
DEFAULT_LATENCY_BUCKETS = log_buckets(1e-6, 100.0, 4)


class _Metric:
    """Shared family plumbing: name, help text, label keying."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", label_names: Sequence[str] = ()):
        self.name = name
        self.help = help
        self.label_names = tuple(label_names)
        self._children: Dict[Tuple[str, ...], Any] = {}
        self._lock = threading.Lock()

    def _key(self, labels: Dict[str, Any]) -> Tuple[str, ...]:
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[k]) for k in self.label_names)

    def label_sets(self) -> List[Tuple[str, ...]]:
        with self._lock:
            return sorted(self._children)


class Histogram(_Metric):
    """Fixed-bucket histogram family (cumulative-bucket semantics).

    Bucket counts are *non-cumulative* internally; the exporter and
    :meth:`snapshot` render the Prometheus-style cumulative form.  Beyond
    the largest bound, samples land in the implicit ``+Inf`` bucket.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        label_names: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ):
        super().__init__(name, help, label_names)
        bounds = tuple(buckets) if buckets is not None else DEFAULT_LATENCY_BUCKETS
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("bucket bounds must be strictly increasing")
        self.bounds = bounds

    class _Child:
        __slots__ = ("counts", "inf_count", "count", "sum", "min", "max",
                     "exemplars")

        def __init__(self, n_bounds: int):
            self.counts = [0] * n_bounds
            self.inf_count = 0
            self.count = 0
            self.sum = 0.0
            self.min = math.inf
            self.max = -math.inf
            #: Last-observed exemplar per bucket index (``n_bounds`` is the
            #: +Inf bucket): ``{idx: (labels_dict, observed_value)}``.
            self.exemplars: Dict[int, Tuple[Dict[str, str], float]] = {}

    def _child(self, labels: Dict[str, Any]) -> "Histogram._Child":
        key = self._key(labels)
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = Histogram._Child(len(self.bounds))
        return child

    def observe(
        self,
        value: float,
        exemplar: Optional[Dict[str, Any]] = None,
        **labels: Any,
    ) -> None:
        """Record one sample; ``exemplar`` optionally attaches reference
        labels (OpenMetrics-style, e.g. ``{"trace_id": ...}``) to the
        bucket the sample lands in — the last exemplar per bucket wins."""
        value = float(value)
        with self._lock:
            child = self._child(labels)
            child.count += 1
            child.sum += value
            if value < child.min:
                child.min = value
            if value > child.max:
                child.max = value
            idx = self._bucket_index(value)
            if idx is None:
                child.inf_count += 1
                idx = len(self.bounds)
            else:
                child.counts[idx] += 1
            if exemplar:
                child.exemplars[idx] = (
                    {str(k): str(v) for k, v in exemplar.items()},
                    value,
                )

    def _bucket_index(self, value: float) -> Optional[int]:
        bounds = self.bounds
        lo, hi = 0, len(bounds)
        if value > bounds[-1]:
            return None
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        return lo

    # -- reading --------------------------------------------------------- #

    def count(self, **labels: Any) -> int:
        with self._lock:
            child = self._children.get(self._key(labels))
            return child.count if child else 0

    def percentile(self, q: float, **labels: Any) -> Optional[float]:
        """Estimated q-th percentile (linear interpolation inside the
        bucket); ``None`` when no samples were observed."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        with self._lock:
            child = self._children.get(self._key(labels))
            if child is None or child.count == 0:
                return None
            return self._estimate(child, q)

    def _estimate(self, child: "Histogram._Child", q: float) -> float:
        rank = q / 100.0 * child.count
        cumulative = 0
        for i, n in enumerate(child.counts):
            if n == 0:
                continue
            if cumulative + n >= rank:
                lower = self.bounds[i - 1] if i > 0 else 0.0
                upper = self.bounds[i]
                frac = (rank - cumulative) / n
                estimate = lower + (upper - lower) * max(0.0, min(1.0, frac))
                # Never extrapolate past the observed extremes.
                return min(max(estimate, child.min), child.max)
            cumulative += n
        # Rank falls in the +Inf bucket: the max is the best estimate.
        return child.max

    def snapshot(self) -> Dict[str, Any]:
        """JSON-friendly dump: per label-set counts, sum, and percentiles."""
        with self._lock:
            out: Dict[str, Any] = {
                "name": self.name,
                "kind": self.kind,
                "label_names": list(self.label_names),
                "series": [],
            }
            for key in sorted(self._children):
                child = self._children[key]
                cumulative = 0
                buckets = []
                for bound, n in zip(self.bounds, child.counts):
                    cumulative += n
                    if n:
                        buckets.append({"le": bound, "count": cumulative})
                out["series"].append(
                    {
                        "labels": dict(zip(self.label_names, key)),
                        "count": child.count,
                        "sum": child.sum,
                        "min": child.min if child.count else None,
                        "max": child.max if child.count else None,
                        "p50": self._estimate(child, 50.0) if child.count else None,
                        "p95": self._estimate(child, 95.0) if child.count else None,
                        "p99": self._estimate(child, 99.0) if child.count else None,
                        "buckets": buckets,
                    }
                )
            return out

    def samples(self):
        """Prometheus sample tuples: (suffix, labels, extra_label, value)."""
        with self._lock:
            for key in sorted(self._children):
                child = self._children[key]
                labels = dict(zip(self.label_names, key))
                cumulative = 0
                for bound, n in zip(self.bounds, child.counts):
                    cumulative += n
                    yield ("_bucket", labels, ("le", _format_float(bound)), float(cumulative))
                yield ("_bucket", labels, ("le", "+Inf"), float(child.count))
                yield ("_sum", labels, None, child.sum)
                yield ("_count", labels, None, float(child.count))

    def samples_with_exemplars(self):
        """Like :meth:`samples` but 5-tuples whose last element is the
        bucket's exemplar ``(labels_dict, observed_value)`` or ``None``.
        Only ``_bucket`` samples carry exemplars (OpenMetrics rules)."""
        with self._lock:
            for key in sorted(self._children):
                child = self._children[key]
                labels = dict(zip(self.label_names, key))
                cumulative = 0
                for i, (bound, n) in enumerate(zip(self.bounds, child.counts)):
                    cumulative += n
                    yield (
                        "_bucket",
                        labels,
                        ("le", _format_float(bound)),
                        float(cumulative),
                        child.exemplars.get(i),
                    )
                yield (
                    "_bucket",
                    labels,
                    ("le", "+Inf"),
                    float(child.count),
                    child.exemplars.get(len(self.bounds)),
                )
                yield ("_sum", labels, None, child.sum, None)
                yield ("_count", labels, None, float(child.count), None)

    def exemplars(self, **labels: Any) -> List[Tuple[Dict[str, str], float]]:
        """All exemplars currently held for one label set."""
        with self._lock:
            child = self._children.get(self._key(labels))
            if child is None:
                return []
            return [child.exemplars[i] for i in sorted(child.exemplars)]


class Counter(_Metric):
    """Monotonically increasing counter family."""

    kind = "counter"

    def inc(self, n: float = 1.0, **labels: Any) -> None:
        if n < 0:
            raise ValueError("counters only go up")
        key = self._key(labels)
        with self._lock:
            self._children[key] = self._children.get(key, 0.0) + float(n)

    def value(self, **labels: Any) -> float:
        with self._lock:
            return float(self._children.get(self._key(labels), 0.0))

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "name": self.name,
                "kind": self.kind,
                "label_names": list(self.label_names),
                "series": [
                    {"labels": dict(zip(self.label_names, key)), "value": value}
                    for key, value in sorted(self._children.items())
                ],
            }

    def samples(self):
        with self._lock:
            for key, value in sorted(self._children.items()):
                yield ("", dict(zip(self.label_names, key)), None, float(value))


class Gauge(_Metric):
    """Set-to-current-value gauge family."""

    kind = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        key = self._key(labels)
        with self._lock:
            self._children[key] = float(value)

    def inc(self, n: float = 1.0, **labels: Any) -> None:
        key = self._key(labels)
        with self._lock:
            self._children[key] = self._children.get(key, 0.0) + float(n)

    def dec(self, n: float = 1.0, **labels: Any) -> None:
        self.inc(-n, **labels)

    def value(self, **labels: Any) -> float:
        with self._lock:
            return float(self._children.get(self._key(labels), 0.0))

    snapshot = Counter.snapshot
    samples = Counter.samples


def _format_float(value: float) -> str:
    """Compact, exact-round-trip float formatting for bucket bounds."""
    text = repr(float(value))
    return text[:-2] if text.endswith(".0") else text
