"""Per-query EXPLAIN: one request's plan and fate, assembled post-hoc.

An EXPLAIN report answers, for a single query, the questions the
aggregate dashboards cannot: which algorithm and kernel mode ran, did
the cache probe hit (and against which keyword-generation stamp), how
long did admission hold the request and under what limiter state, how
hard did the pruning work (``candidate_circles`` / ``pruned_poles``),
which snapshot epoch served a live read, and where inside the request
the time actually went (per-phase breakdown plus the span tree).

The report is a plain JSON-able dict built by :func:`build_explain` from
two inputs that already exist everywhere in the stack — the request's
span dicts and its :class:`~repro.core.common.Instrumentation` counters
— so any layer can produce one: ``MCKEngine.query(explain=True)``,
``QueryService.submit(explain=True)``, or the ``mck explain`` CLI.
:func:`render_explain` turns it into the human-readable block the CLI
prints.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence

__all__ = ["build_explain", "render_explain", "collect_trace_spans"]

#: Pruning/search counters surfaced prominently (everything else still
#: appears under ``counters``).
_KEY_COUNTERS = (
    "circle_scans",
    "binary_steps",
    "candidate_circles",
    "pruned_poles",
    "property1_skips",
    "poles_scanned",
    "anchors",
    "coalesced",
)

#: Counters that are really metadata, not work (excluded from the
#: counters table; surfaced in their own fields).
_META_COUNTERS = frozenset(
    {"epoch", "delta_size", "kernel_vectorized", "degraded", "alpha"}
)


def collect_trace_spans(tracer, trace_id: Optional[str]) -> List[Dict[str, Any]]:
    """All finished spans of one trace currently in a tracer's buffer."""
    if tracer is None or not trace_id:
        return []
    return [
        sp for sp in tracer.finished_spans() if sp.get("trace_id") == trace_id
    ]


def build_explain(
    *,
    keywords: Sequence[str],
    algorithm: str,
    epsilon: float,
    timeout: Optional[float] = None,
    spans: Optional[List[Dict[str, Any]]] = None,
    counters: Optional[Dict[str, float]] = None,
    timings: Optional[Dict[str, float]] = None,
    engine_kind: str = "sealed",
    status: str = "ok",
    quality: str = "",
    diameter: Optional[float] = None,
    group_size: int = 0,
    object_ids: Sequence[int] = (),
    error: Optional[str] = None,
    cache_hit: Optional[bool] = None,
    trace_id: str = "",
    correlation_id: str = "",
) -> Dict[str, Any]:
    """Assemble the EXPLAIN report dict (see module docstring).

    ``spans`` may be empty (untraced runs still get counters, timings and
    outcome); span-derived sections then degrade to ``None``/defaults.
    """
    spans = spans or []
    counters = dict(counters or {})
    timings = dict(timings or {})

    by_id = {sp["span_id"]: sp for sp in spans if sp.get("span_id")}
    tree = _span_tree(spans, by_id)
    phases = _phase_breakdown(spans, by_id)

    cache = _cache_section(spans, cache_hit)
    admission = _admission_section(spans)
    kernel_mode = _kernel_mode(spans, counters)
    epoch = counters.get("epoch")
    delta_size = counters.get("delta_size")

    if diameter is not None and isinstance(diameter, float) and math.isnan(diameter):
        diameter = None

    work = {
        name: counters[name] for name in _KEY_COUNTERS if name in counters
    }
    other = {
        name: value
        for name, value in sorted(counters.items())
        if name not in work and name not in _META_COUNTERS
    }

    return {
        "query": {
            "keywords": [str(k) for k in keywords],
            "m": len(keywords),
            "algorithm": algorithm,
            "epsilon": epsilon,
            "timeout": timeout,
        },
        "outcome": {
            "status": status,
            "quality": quality,
            "diameter": diameter,
            "group_size": group_size,
            "object_ids": [int(o) for o in object_ids],
            "error": error,
        },
        "execution": {
            "engine": engine_kind,
            "kernel_mode": kernel_mode,
            "cache": cache,
            "admission": admission,
            "epoch": int(epoch) if epoch is not None else None,
            "delta_size": int(delta_size) if delta_size is not None else None,
        },
        "counters": {"key": work, "other": other},
        "timings": {
            "context_seconds": timings.get("context_seconds"),
            "algorithm_seconds": timings.get("algorithm_seconds"),
            "total_seconds": timings.get("total_seconds"),
        },
        "phases": phases,
        "tree": tree,
        "ids": {"trace_id": trace_id or "", "correlation_id": correlation_id or ""},
        "span_count": len(spans),
    }


# --------------------------------------------------------------------- #
# Span-derived sections
# --------------------------------------------------------------------- #


def _span_tree(
    spans: List[Dict[str, Any]], by_id: Dict[str, Dict[str, Any]]
) -> List[Dict[str, Any]]:
    """Nested ``{name, duration_ms, attributes, children}`` span forest.

    A span whose parent is missing from the set (e.g. the tracer's buffer
    rotated, or a worker root pinned to the request's trace id) becomes a
    root — the forest is always complete over the given spans.
    """
    children: Dict[Optional[str], List[Dict[str, Any]]] = {}
    for sp in spans:
        parent = sp.get("parent_id")
        if parent is not None and parent not in by_id:
            parent = None
        children.setdefault(parent, []).append(sp)
    for bucket in children.values():
        bucket.sort(key=lambda s: s.get("start_ns", 0))

    def node(sp: Dict[str, Any]) -> Dict[str, Any]:
        duration_ms = max(0, sp.get("end_ns", 0) - sp.get("start_ns", 0)) / 1e6
        return {
            "name": sp.get("name", "?"),
            "duration_ms": duration_ms,
            "pid": sp.get("pid"),
            "attributes": dict(sp.get("attributes", {})),
            "children": [
                node(child) for child in children.get(sp.get("span_id"), [])
            ],
        }

    return [node(sp) for sp in children.get(None, [])]


def _phase_breakdown(
    spans: List[Dict[str, Any]], by_id: Dict[str, Dict[str, Any]]
) -> List[Dict[str, Any]]:
    """Aggregate spans by name: count, total time, self time.

    Self time subtracts only *direct* children, so the sum of self times
    over all phases equals the root wall time (no double counting).
    """
    child_total_ns: Dict[str, int] = {}
    for sp in spans:
        parent = sp.get("parent_id")
        if parent and parent in by_id:
            dur = max(0, sp.get("end_ns", 0) - sp.get("start_ns", 0))
            child_total_ns[parent] = child_total_ns.get(parent, 0) + dur
    agg: Dict[str, Dict[str, float]] = {}
    for sp in spans:
        name = sp.get("name", "?")
        dur = max(0, sp.get("end_ns", 0) - sp.get("start_ns", 0))
        self_ns = max(0, dur - child_total_ns.get(sp.get("span_id", ""), 0))
        entry = agg.setdefault(
            name, {"count": 0, "total_ns": 0, "self_ns": 0, "max_ns": 0}
        )
        entry["count"] += 1
        entry["total_ns"] += dur
        entry["self_ns"] += self_ns
        entry["max_ns"] = max(entry["max_ns"], dur)
    return [
        {
            "name": name,
            "count": int(entry["count"]),
            "total_seconds": entry["total_ns"] / 1e9,
            "self_seconds": entry["self_ns"] / 1e9,
            "max_seconds": entry["max_ns"] / 1e9,
        }
        for name, entry in sorted(
            agg.items(), key=lambda kv: -kv[1]["total_ns"]
        )
    ]


def _cache_section(
    spans: List[Dict[str, Any]], cache_hit: Optional[bool]
) -> Dict[str, Any]:
    probe = _first_span(spans, "serve.cache_probe")
    if probe is None:
        outcome = (
            "bypass" if cache_hit is None else ("hit" if cache_hit else "miss")
        )
        return {"outcome": outcome, "stamp": None}
    attrs = probe.get("attributes", {})
    hit = attrs.get("hit")
    if cache_hit is not None:
        hit = cache_hit
    return {
        "outcome": "hit" if hit else "miss",
        "stamp": attrs.get("stamp"),
    }


def _admission_section(spans: List[Dict[str, Any]]) -> Dict[str, Any]:
    queue = _first_span(spans, "serve.queue")
    admission = _first_span(spans, "serve.admission")
    rejected = _first_span(spans, "serve.rejected")
    wait = None
    if queue is not None:
        wait = max(0, queue.get("end_ns", 0) - queue.get("start_ns", 0)) / 1e9
    attrs = (admission or rejected or {}).get("attributes", {})
    return {
        "wait_seconds": wait,
        "policy": attrs.get("policy"),
        "queue_depth": attrs.get("queue_depth"),
        "concurrency_limit": attrs.get("concurrency_limit"),
        "rejected_reason": attrs.get("reason") if rejected is not None else None,
    }


def _kernel_mode(
    spans: List[Dict[str, Any]], counters: Dict[str, float]
) -> str:
    for sp in spans:
        kernel = sp.get("attributes", {}).get("kernel")
        if kernel:
            return str(kernel)
    flag = counters.get("kernel_vectorized")
    if flag is not None:
        return "vectorized" if flag else "scalar"
    return "unknown"


def _first_span(
    spans: List[Dict[str, Any]], name: str
) -> Optional[Dict[str, Any]]:
    for sp in spans:
        if sp.get("name") == name:
            return sp
    return None


# --------------------------------------------------------------------- #
# Rendering
# --------------------------------------------------------------------- #

#: Tree-rendering caps: children per node / total tree lines.
_MAX_CHILDREN = 8
_MAX_TREE_LINES = 48


def render_explain(report: Dict[str, Any]) -> str:
    """Human-readable EXPLAIN block (the ``mck explain`` output)."""
    q = report["query"]
    o = report["outcome"]
    x = report["execution"]
    t = report["timings"]
    ids = report["ids"]
    lines: List[str] = []
    head = f"EXPLAIN {ids['correlation_id'] or '(no correlation id)'}"
    if ids["trace_id"]:
        head += f"  trace={ids['trace_id']}"
    lines.append(head)
    lines.append(
        f"query      : {', '.join(q['keywords'])} (m={q['m']})  "
        f"algorithm={q['algorithm']}  epsilon={q['epsilon']:g}"
        + (f"  timeout={q['timeout']:g}s" if q["timeout"] else "")
    )
    outcome_bits = [o["status"]]
    if o["quality"]:
        outcome_bits.append(f"quality={o['quality']}")
    if o["diameter"] is not None:
        outcome_bits.append(f"diameter={o['diameter']:.6g}")
    if o["group_size"]:
        ids_text = ", ".join(str(i) for i in o["object_ids"][:8])
        if len(o["object_ids"]) > 8:
            ids_text += ", ..."
        outcome_bits.append(f"group={o['group_size']} [{ids_text}]")
    if o["error"]:
        outcome_bits.append(f"error={o['error']}")
    lines.append(f"outcome    : {'  '.join(outcome_bits)}")
    engine_text = x["engine"]
    if x["epoch"] is not None:
        engine_text += f" (epoch {x['epoch']}"
        if x["delta_size"] is not None:
            engine_text += f", delta {x['delta_size']}"
        engine_text += ")"
    lines.append(f"engine     : {engine_text}  kernel={x['kernel_mode']}")
    cache = x["cache"]
    cache_text = cache["outcome"]
    if cache["stamp"] is not None:
        cache_text += f" (stamp {cache['stamp']})"
    lines.append(f"cache      : {cache_text}")
    adm = x["admission"]
    adm_bits = []
    if adm["wait_seconds"] is not None:
        adm_bits.append(f"waited {adm['wait_seconds'] * 1000:.2f} ms")
    if adm["policy"]:
        adm_bits.append(f"policy={adm['policy']}")
    if adm["queue_depth"] is not None:
        adm_bits.append(f"depth={adm['queue_depth']}")
    if adm["concurrency_limit"] is not None:
        adm_bits.append(f"limit={adm['concurrency_limit']}")
    if adm["rejected_reason"]:
        adm_bits.append(f"rejected={adm['rejected_reason']}")
    lines.append(f"admission  : {'  '.join(adm_bits) if adm_bits else '(untracked)'}")
    timing_bits = []
    for label, key in (
        ("total", "total_seconds"),
        ("context", "context_seconds"),
        ("algorithm", "algorithm_seconds"),
    ):
        value = t.get(key)
        if value is not None:
            timing_bits.append(f"{label}={value * 1000:.2f}ms")
    if timing_bits:
        lines.append(f"timings    : {'  '.join(timing_bits)}")
    key_counters = report["counters"]["key"]
    if key_counters:
        counter_text = "  ".join(
            f"{name}={_fmt_count(value)}" for name, value in key_counters.items()
        )
        lines.append(f"counters   : {counter_text}")
    other = report["counters"]["other"]
    if other:
        other_text = "  ".join(
            f"{name}={_fmt_count(value)}" for name, value in sorted(other.items())
        )
        lines.append(f"             {other_text}")
    if report["tree"]:
        lines.append("phases     :")
        budget = [_MAX_TREE_LINES]
        for root in report["tree"]:
            _render_node(root, 0, lines, budget)
    elif report["phases"]:
        lines.append("phases     : (flat; span parents unavailable)")
        for phase in report["phases"][:12]:
            lines.append(
                f"  {phase['name']:<32s} x{phase['count']:<4d} "
                f"{phase['total_seconds'] * 1000:9.2f} ms"
            )
    return "\n".join(lines)


def _render_node(
    node: Dict[str, Any], depth: int, lines: List[str], budget: List[int]
) -> None:
    if budget[0] <= 0:
        return
    budget[0] -= 1
    indent = "  " * (depth + 1)
    label = f"{indent}{node['name']}"
    pid = node.get("pid")
    attrs = node.get("attributes", {})
    suffix = ""
    if attrs.get("kernel"):
        suffix += f"  kernel={attrs['kernel']}"
    if attrs.get("error"):
        suffix += f"  error={attrs['error']}"
    lines.append(f"{label:<44s} {node['duration_ms']:9.2f} ms{suffix}")
    children = node.get("children", [])
    shown = sorted(children, key=lambda c: -c["duration_ms"])[:_MAX_CHILDREN]
    # Re-sort the survivors back into start order for readability.
    shown_set = {id(c) for c in shown}
    ordered = [c for c in children if id(c) in shown_set]
    for child in ordered:
        _render_node(child, depth + 1, lines, budget)
    hidden = len(children) - len(ordered)
    if hidden > 0 and budget[0] > 0:
        budget[0] -= 1
        lines.append(f"{'  ' * (depth + 2)}... (+{hidden} more)")


def _fmt_count(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return f"{value:g}"
