"""A low-overhead span tracer for the mCK query stack.

A *span* is one named, timed piece of work (a binary-search step, a
``circleScan`` call, a cache probe).  Spans nest: each thread keeps its own
span stack, so a span started while another is open becomes its child, and
the whole tree of one request shares a ``trace_id``.  Finished spans are
buffered on the tracer and exported as Chrome trace-event JSON (loadable in
Perfetto / ``chrome://tracing``) by :mod:`repro.observability.exporters`.

Design constraints, in order:

* **Near-zero cost when disabled.**  The algorithm hot loops call
  ``deadline.span(...)`` unconditionally; when no tracer is wired (the
  default) that returns the shared :data:`NULL_SPAN` singleton — no
  allocation, no clock read.
* **Thread isolation.**  The span stack is thread-local; the serving
  layer's thread pool traces concurrent queries without cross-talk.
* **Picklable export.**  ``drain()`` returns plain dicts so worker
  processes (EXACT's process pool, the distributed simulation) can ship
  their spans back to the parent tracer via ``ingest()``.

The clock is ``time.monotonic_ns`` (never wall time) so span durations are
immune to clock steps.  A ``sample_rate`` knob drops whole traces at the
root: children follow their root's sampling decision, so a sampled trace
is always structurally complete.
"""

from __future__ import annotations

import functools
import os
import random
import threading
import time
import uuid
from typing import Any, Callable, Dict, Iterable, List, Optional

__all__ = [
    "Span",
    "Tracer",
    "NULL_SPAN",
    "get_tracer",
    "set_tracer",
    "span",
    "traced",
]


class Span:
    """One finished or in-flight span.

    Used both as the in-flight record (while its ``with`` block runs) and
    as the context-manager handle the block receives, so attributes can be
    attached mid-flight::

        with tracer.span("exact.search") as sp:
            ...
            sp.set_attribute("max_depth", depth)
    """

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "start_ns",
        "end_ns",
        "attributes",
        "thread_id",
        "thread_name",
        "pid",
        "_tracer",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        trace_id: str,
        parent_id: Optional[str],
        attributes: Optional[Dict[str, Any]],
    ):
        self._tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.span_id = uuid.uuid4().hex[:16]
        self.parent_id = parent_id
        self.start_ns = 0
        self.end_ns = 0
        self.attributes = attributes or {}
        self.thread_id = threading.get_ident()
        self.thread_name = threading.current_thread().name
        self.pid = os.getpid()

    # -- context manager ------------------------------------------------- #

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        self.start_ns = self._tracer._clock_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end_ns = self._tracer._clock_ns()
        if exc_type is not None:
            self.attributes.setdefault("error", exc_type.__name__)
        self._tracer._pop(self)
        return False

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "thread_id": self.thread_id,
            "thread_name": self.thread_name,
            "pid": self.pid,
            "attributes": dict(self.attributes),
        }


class _NullSpan:
    """Shared do-nothing span: the disabled-mode fast path.

    A single module-level instance serves every disabled/unsampled
    ``span()`` call, so tracing spots in hot loops allocate nothing when
    tracing is off.
    """

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set_attribute(self, key: str, value: Any) -> None:
        pass


NULL_SPAN = _NullSpan()


class Tracer:
    """Collects spans into a bounded buffer; thread-safe.

    Parameters
    ----------
    enabled:
        Master switch; a disabled tracer hands out :data:`NULL_SPAN`.
    sample_rate:
        Probability that a *root* span (and therefore its whole trace) is
        recorded.  Child spans inherit the decision, so sampling never
        produces orphaned children.
    max_spans:
        Finished-span buffer cap; beyond it new spans are counted in
        ``dropped`` but not stored.
    clock_ns:
        Injectable monotonic clock (tests pin it for deterministic spans).
    """

    def __init__(
        self,
        enabled: bool = True,
        sample_rate: float = 1.0,
        max_spans: int = 100_000,
        clock_ns: Callable[[], int] = time.monotonic_ns,
        rng: Optional[random.Random] = None,
    ):
        self.enabled = enabled
        self.sample_rate = float(sample_rate)
        self.max_spans = int(max_spans)
        self.dropped = 0
        self._clock_ns = clock_ns
        self._rng = rng or random.Random()
        self._finished: List[Span] = []
        self._foreign: List[Dict[str, Any]] = []
        self._lock = threading.Lock()
        self._local = threading.local()
        self._sinks: List[Callable[[Dict[str, Any]], None]] = []

    # -- span lifecycle -------------------------------------------------- #

    def span(self, name: str, **attributes: Any):
        """Start a span as a context manager; returns :data:`NULL_SPAN`
        when disabled or the enclosing trace is unsampled."""
        if not self.enabled:
            return NULL_SPAN
        stack = self._stack()
        if stack:
            parent = stack[-1]
            if parent is _UNSAMPLED:
                return _unsampled_span(stack)
            return Span(self, name, parent.trace_id, parent.span_id, attributes)
        # Root span: make the sampling decision for the whole trace.
        if self.sample_rate < 1.0 and self._rng.random() >= self.sample_rate:
            return _unsampled_span(stack)
        trace_id = self.current_trace_id() or uuid.uuid4().hex
        return Span(self, name, trace_id, None, attributes)

    def record_complete(
        self,
        name: str,
        start_ns: int,
        end_ns: int,
        **attributes: Any,
    ) -> None:
        """Record an already-measured interval (e.g. queue wait) as a span."""
        if not self.enabled:
            return
        stack = self._stack()
        parent = stack[-1] if stack else None
        if parent is _UNSAMPLED:
            return
        sp = Span(
            self,
            name,
            parent.trace_id if parent else (self.current_trace_id() or uuid.uuid4().hex),
            parent.span_id if parent else None,
            attributes,
        )
        sp.start_ns = start_ns
        sp.end_ns = end_ns
        self._store(sp)

    def set_trace_id(self, trace_id: Optional[str]) -> None:
        """Pin the trace id used by the next *root* span on this thread.

        Cross-process propagation: the parent sends its trace id along with
        the task; the worker pins it so its spans join the same trace.
        """
        self._local.trace_id = trace_id

    def current_trace_id(self) -> Optional[str]:
        stack = self._stack()
        for sp in reversed(stack):
            if sp is not _UNSAMPLED:
                return sp.trace_id
        return getattr(self._local, "trace_id", None)

    # -- buffer management ---------------------------------------------- #

    def finished_spans(self) -> List[Dict[str, Any]]:
        """Snapshot of all recorded spans (local + ingested) as dicts."""
        with self._lock:
            return [s.to_dict() for s in self._finished] + list(self._foreign)

    def drain(self) -> List[Dict[str, Any]]:
        """Pop and return all recorded spans (picklable plain dicts)."""
        with self._lock:
            out = [s.to_dict() for s in self._finished] + self._foreign
            self._finished = []
            self._foreign = []
            return out

    def ingest(self, spans: Iterable[Dict[str, Any]]) -> None:
        """Adopt span dicts produced by another tracer (other process)."""
        adopted: List[Dict[str, Any]] = []
        with self._lock:
            for sp in spans:
                if len(self._finished) + len(self._foreign) >= self.max_spans:
                    self.dropped += 1
                    continue
                record = dict(sp)
                self._foreign.append(record)
                adopted.append(record)
        if self._sinks and adopted:
            for record in adopted:
                self._emit(record)

    def add_sink(self, sink: Callable[[Dict[str, Any]], None]) -> None:
        """Register a callback fired with every finished span's dict.

        Sinks see locally finished spans and ingested foreign spans alike
        — even ones dropped from the bounded buffer — so a
        :class:`~repro.observability.flight.FlightRecorder` never loses a
        trace to buffer pressure.  Sinks run outside the tracer lock and
        must not raise.
        """
        self._sinks.append(sink)

    def remove_sink(self, sink: Callable[[Dict[str, Any]], None]) -> None:
        try:
            self._sinks.remove(sink)
        except ValueError:
            pass

    def reset(self) -> None:
        with self._lock:
            self._finished = []
            self._foreign = []
            self.dropped = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._finished) + len(self._foreign)

    # -- internals ------------------------------------------------------- #

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, sp) -> None:
        self._stack().append(sp)

    def _pop(self, sp) -> None:
        stack = self._stack()
        # Pop back to (and including) sp; tolerates a mis-nested exit
        # instead of corrupting the stack for the rest of the thread.
        while stack:
            top = stack.pop()
            if top is sp:
                break
        if sp is not _UNSAMPLED:
            self._store(sp)

    def _store(self, sp: Span) -> None:
        with self._lock:
            if len(self._finished) + len(self._foreign) >= self.max_spans:
                self.dropped += 1
            else:
                self._finished.append(sp)
        # Sinks fire outside the lock, even for buffer-dropped spans: the
        # flight recorder keeps its own bounded copies, so buffer pressure
        # cannot lose a trace.
        if self._sinks:
            self._emit(sp.to_dict())

    def _emit(self, record: Dict[str, Any]) -> None:
        for sink in list(self._sinks):
            try:
                sink(record)
            except Exception:  # pragma: no cover - sinks must not break tracing
                pass


class _UnsampledMarker:
    """Stack marker for an unsampled trace: children skip recording too."""

    __slots__ = ()

    trace_id = None
    span_id = None

    def __enter__(self):
        return NULL_SPAN

    def __exit__(self, exc_type, exc, tb):
        return False

    def set_attribute(self, key, value):
        pass


_UNSAMPLED = _UnsampledMarker()


class _UnsampledSpan:
    """Context manager that pushes/pops the unsampled marker."""

    __slots__ = ("_stack",)

    def __init__(self, stack):
        self._stack = stack

    def __enter__(self):
        self._stack.append(_UNSAMPLED)
        return NULL_SPAN

    def __exit__(self, exc_type, exc, tb):
        stack = self._stack
        if stack and stack[-1] is _UNSAMPLED:
            stack.pop()
        return False

    def set_attribute(self, key, value):
        pass


def _unsampled_span(stack):
    return _UnsampledSpan(stack)


# --------------------------------------------------------------------- #
# Global tracer.  ``None`` by default: every tracing spot in the library
# degrades to one module-attribute read plus returning NULL_SPAN.
# --------------------------------------------------------------------- #

_GLOBAL_TRACER: Optional[Tracer] = None


def set_tracer(tracer: Optional[Tracer]) -> Optional[Tracer]:
    """Install (or clear, with ``None``) the process-global tracer."""
    global _GLOBAL_TRACER
    previous = _GLOBAL_TRACER
    _GLOBAL_TRACER = tracer
    return previous


def get_tracer() -> Optional[Tracer]:
    return _GLOBAL_TRACER


def span(name: str, **attributes: Any):
    """Start a span on the global tracer (no-op when none is installed)."""
    tracer = _GLOBAL_TRACER
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, **attributes)


def traced(name: Optional[str] = None):
    """Decorator: wrap every call of the function in a global-tracer span.

    >>> @traced("index.rebuild")
    ... def rebuild(): ...
    """

    def decorate(fn):
        span_name = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            tracer = _GLOBAL_TRACER
            if tracer is None:
                return fn(*args, **kwargs)
            with tracer.span(span_name):
                return fn(*args, **kwargs)

        return wrapper

    return decorate
