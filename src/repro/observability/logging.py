"""Structured JSON logging with per-query correlation ids.

Every log record is one JSON object per line — machine-parseable, with a
stable field set (``ts``, ``level``, ``logger``, ``event``) plus arbitrary
structured fields and the current *correlation id*.  The correlation id is
a :mod:`contextvars` variable: the serving layer assigns one per query,
the EXACT process-pool workers and the distributed coordinator→worker
calls carry it across boundaries, so every line of one query's journey
greps together::

    {"ts": ..., "level": "info", "logger": "repro.serving",
     "event": "query.done", "correlation_id": "q-5f3a...", "algorithm": "SKECa+", ...}

Nothing is emitted unless :func:`configure_logging` (or the application's
own logging config) installs a handler — the library only ever *creates*
records under the ``repro`` logger namespace.
"""

from __future__ import annotations

import contextlib
import contextvars
import io
import json
import logging
import uuid
from typing import Any, Dict, Optional

__all__ = [
    "correlation_id",
    "new_correlation_id",
    "set_correlation_id",
    "get_correlation_id",
    "correlation_scope",
    "JsonFormatter",
    "StructuredLogger",
    "get_logger",
    "configure_logging",
]

#: The active query's correlation id ("" when outside any query).
correlation_id: contextvars.ContextVar[str] = contextvars.ContextVar(
    "repro_correlation_id", default=""
)


def new_correlation_id() -> str:
    """Mint a fresh correlation id (short, log-friendly)."""
    return "q-" + uuid.uuid4().hex[:12]


def set_correlation_id(value: str) -> None:
    correlation_id.set(value)


def get_correlation_id() -> str:
    return correlation_id.get()


@contextlib.contextmanager
def correlation_scope(value: Optional[str] = None):
    """Bind a correlation id for the duration of the block; yields the id."""
    cid = value or new_correlation_id()
    token = correlation_id.set(cid)
    try:
        yield cid
    finally:
        correlation_id.reset(token)


class JsonFormatter(logging.Formatter):
    """Format records as one JSON object per line.

    The record ``msg`` becomes the ``event`` field; structured fields
    attached by :class:`StructuredLogger` (under ``structured_fields``)
    are merged at the top level, and the active correlation id is added
    when one is bound.
    """

    def format(self, record: logging.LogRecord) -> str:
        document: Dict[str, Any] = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "event": record.getMessage(),
        }
        cid = getattr(record, "correlation_id", "") or correlation_id.get()
        if cid:
            document["correlation_id"] = cid
        fields = getattr(record, "structured_fields", None)
        if fields:
            for key, value in fields.items():
                if key not in document:
                    document[key] = _json_safe(value)
        if record.exc_info and record.exc_info[0] is not None:
            document["exception"] = record.exc_info[0].__name__
        return json.dumps(document, sort_keys=True, default=str)


class StructuredLogger:
    """Thin event-style façade over a stdlib logger.

    ``log.info("query.done", algorithm="EXACT", seconds=0.12)`` emits a
    record whose formatter-visible extras carry the fields; with
    :class:`JsonFormatter` installed they land as top-level JSON keys.
    The ``isEnabledFor`` check keeps disabled-level calls cheap.
    """

    __slots__ = ("_logger",)

    def __init__(self, logger: logging.Logger):
        self._logger = logger

    @property
    def raw(self) -> logging.Logger:
        return self._logger

    def _log(self, level: int, event: str, fields: Dict[str, Any]) -> None:
        if self._logger.isEnabledFor(level):
            self._logger.log(
                level,
                event,
                extra={
                    "structured_fields": fields,
                    "correlation_id": correlation_id.get(),
                },
            )

    def debug(self, event: str, **fields: Any) -> None:
        self._log(logging.DEBUG, event, fields)

    def info(self, event: str, **fields: Any) -> None:
        self._log(logging.INFO, event, fields)

    def warning(self, event: str, **fields: Any) -> None:
        self._log(logging.WARNING, event, fields)

    def error(self, event: str, **fields: Any) -> None:
        self._log(logging.ERROR, event, fields)


def get_logger(name: str) -> StructuredLogger:
    """A structured logger under the ``repro`` namespace."""
    if not name.startswith("repro"):
        name = f"repro.{name}"
    return StructuredLogger(logging.getLogger(name))


def configure_logging(
    stream: Optional[io.TextIOBase] = None,
    level: int = logging.INFO,
) -> logging.Handler:
    """Install a JSON handler on the ``repro`` logger (idempotent).

    Returns the handler so callers (tests, the CLI) can detach it or read
    its stream.  Repeated calls replace the previously installed handler
    rather than stacking duplicates.
    """
    logger = logging.getLogger("repro")
    for existing in list(logger.handlers):
        if getattr(existing, "_repro_json_handler", False):
            logger.removeHandler(existing)
    handler = logging.StreamHandler(stream) if stream is not None else logging.StreamHandler()
    handler.setFormatter(JsonFormatter())
    handler._repro_json_handler = True  # type: ignore[attr-defined]
    logger.addHandler(handler)
    logger.setLevel(level)
    return handler


def _json_safe(value: Any) -> Any:
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if isinstance(value, float):
        return value if value == value and abs(value) != float("inf") else str(value)
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    return str(value)
