"""Flight recorder: tail-based trace retention in a bounded ring buffer.

Aggregate histograms say *that* p99 regressed; the flight recorder says
*why*, by keeping the complete span trees of exactly the requests worth
debugging.  The sampling decision is **tail-based** — made at the *end*
of a request, when its outcome is known — so the recorder retains:

* requests slower than the rolling p99 of recent root latencies (after a
  short warm-up, see ``min_samples``);
* degraded answers (anytime incumbents, pool fallbacks);
* admission rejections (the serving layer synthesizes a minimal trace —
  a rejected request never executed, so it has no organic spans);
* errors and timeouts;
* requests during which an armed fault fired;
* plus an optional random ``boring_keep_rate`` sliver of the healthy bulk
  as a baseline for comparison.

Everything else is dropped at completion, so memory stays bounded by
``max_traces`` retained traces plus ``max_pending`` in-flight ones —
independent of traffic volume.

Wiring: :meth:`FlightRecorder.attach` registers the recorder as a span
*sink* on a :class:`~repro.observability.tracer.Tracer` (it sees every
finished span, including spans ingested from EXACT pool workers and
spans the tracer's own bounded buffer dropped).  The serving layer calls
:meth:`complete` once per request with the outcome flags; the recorder
then either retains the whole span tree or forgets it.

Dumps are Chrome trace-event JSON (:func:`~repro.observability.exporters
.chrome_trace`), loadable in Perfetto — per retained trace or all at
once, on demand or automatically on every triggered retention
(``auto_dump_dir``).
"""

from __future__ import annotations

import threading
import time
import uuid
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from .tracer import Tracer

__all__ = ["FlightRecorder", "RetainedTrace", "TraceOutcome"]

#: Retention reasons, in the order they are evaluated.
REASONS = ("rejected", "error", "degraded", "fault", "slow", "sampled")


@dataclass
class TraceOutcome:
    """What the serving layer knew about a request when it finished."""

    algorithm: str = ""
    correlation_id: str = ""
    latency_seconds: Optional[float] = None
    cache_hit: bool = False
    degraded: bool = False
    rejected: bool = False
    error: Optional[str] = None
    #: Armed-fault triggers observed during the request (approximate
    #: under concurrency; any positive count marks the trace fault-hit).
    fault_hits: int = 0
    quality: str = ""


@dataclass
class RetainedTrace:
    """One trace the recorder decided to keep."""

    trace_id: str
    reasons: Tuple[str, ...]
    outcome: TraceOutcome
    spans: List[Dict[str, Any]] = field(default_factory=list)
    #: Monotonic clock at retention (recorder clock; ordering only).
    retained_at: float = 0.0
    seq: int = 0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "reasons": list(self.reasons),
            "seq": self.seq,
            "algorithm": self.outcome.algorithm,
            "correlation_id": self.outcome.correlation_id,
            "latency_seconds": self.outcome.latency_seconds,
            "cache_hit": self.outcome.cache_hit,
            "degraded": self.outcome.degraded,
            "rejected": self.outcome.rejected,
            "error": self.outcome.error,
            "fault_hits": self.outcome.fault_hits,
            "quality": self.outcome.quality,
            "spans": len(self.spans),
        }


class FlightRecorder:
    """Bounded ring of retained traces with tail-based sampling.

    Parameters
    ----------
    max_traces:
        Retained-trace ring capacity; beyond it the oldest retained trace
        is evicted (``evicted`` counts them).
    max_pending:
        Cap on traces whose spans are accumulating but whose request has
        not completed yet.  Overflow evicts the oldest pending trace
        (``pending_evicted``) — a leak guard for traces that are never
        :meth:`complete`\\ d.
    p99_window / min_samples:
        The rolling-p99 slowness detector keeps the last ``p99_window``
        root latencies; until ``min_samples`` of them exist no trace is
        retained for slowness alone (flags always retain).
    boring_keep_rate:
        Probability (0..1) of keeping an otherwise-boring trace as a
        healthy baseline; 0 (default) keeps none.
    auto_dump_dir / auto_dump_limit:
        When set, every *triggered* retention (any reason except
        ``sampled``) writes ``trace-<id>.json`` Chrome-trace dumps into
        the directory, up to ``auto_dump_limit`` files per recorder.
    clock:
        Injectable monotonic clock (tests).
    """

    def __init__(
        self,
        max_traces: int = 256,
        max_pending: int = 1024,
        p99_window: int = 512,
        min_samples: int = 50,
        boring_keep_rate: float = 0.0,
        auto_dump_dir: Optional[str] = None,
        auto_dump_limit: int = 20,
        clock: Callable[[], float] = time.monotonic,
        rng: Optional[Any] = None,
    ):
        if max_traces < 1:
            raise ValueError("max_traces must be >= 1")
        if not 0.0 <= boring_keep_rate <= 1.0:
            raise ValueError("boring_keep_rate must be in [0, 1]")
        self.max_traces = int(max_traces)
        self.max_pending = int(max_pending)
        self.min_samples = int(min_samples)
        self.boring_keep_rate = float(boring_keep_rate)
        self.auto_dump_dir = auto_dump_dir
        self.auto_dump_limit = int(auto_dump_limit)
        self._clock = clock
        if rng is None:
            import random

            rng = random.Random()
        self._rng = rng
        self._lock = threading.Lock()
        self._pending: "OrderedDict[str, List[Dict[str, Any]]]" = OrderedDict()
        self._retained: "OrderedDict[str, RetainedTrace]" = OrderedDict()
        self._latencies: Deque[float] = deque(maxlen=int(p99_window))
        self._sorted_latencies: List[float] = []
        self._latencies_dirty = 0
        self._seq = 0
        self._attached: List[Tracer] = []
        # Counters (read via stats()).
        self.completed = 0
        self.dropped_boring = 0
        self.evicted = 0
        self.pending_evicted = 0
        self.auto_dumps = 0
        self.by_reason: Dict[str, int] = {r: 0 for r in REASONS}

    # ------------------------------------------------------------------ #
    # Tracer wiring
    # ------------------------------------------------------------------ #

    def attach(self, tracer: Tracer) -> "FlightRecorder":
        """Register as a span sink on ``tracer``; returns self.

        Idempotent per tracer — a service and a coordinator sharing one
        global tracer attach once, not twice.
        """
        if tracer in self._attached:
            return self
        tracer.add_sink(self.on_span)
        self._attached.append(tracer)
        return self

    def is_attached(self, tracer: Tracer) -> bool:
        """True when this recorder is already a sink on ``tracer``.

        Lifecycle code uses this to detach only attachments it made: a
        service sharing one recorder + global tracer with its siblings
        must not rip the sink out from under them on close.
        """
        return tracer in self._attached

    def detach(self, tracer: Optional[Tracer] = None) -> None:
        """Unregister from one tracer (or every attached one)."""
        targets = [tracer] if tracer is not None else list(self._attached)
        for t in targets:
            t.remove_sink(self.on_span)
            try:
                self._attached.remove(t)
            except ValueError:
                pass

    def on_span(self, span: Dict[str, Any]) -> None:
        """Span-sink callback: buffer the span under its trace id."""
        trace_id = span.get("trace_id")
        if not trace_id:
            return
        with self._lock:
            bucket = self._pending.get(trace_id)
            if bucket is None:
                bucket = self._pending[trace_id] = []
                while len(self._pending) > self.max_pending:
                    self._pending.popitem(last=False)
                    self.pending_evicted += 1
            bucket.append(dict(span))

    # ------------------------------------------------------------------ #
    # Completion: the tail-based sampling decision
    # ------------------------------------------------------------------ #

    def complete(
        self,
        trace_id: str,
        outcome: Optional[TraceOutcome] = None,
        extra_spans: Optional[List[Dict[str, Any]]] = None,
        **outcome_kwargs: Any,
    ) -> Optional[RetainedTrace]:
        """Finish one trace: retain it if interesting, else forget it.

        Accepts either a ready :class:`TraceOutcome` or its fields as
        keyword arguments.  ``extra_spans`` appends synthetic spans (the
        serving layer uses this for rejected requests, which never ran).
        Returns the :class:`RetainedTrace` when retained, else ``None``.
        """
        if outcome is None:
            outcome = TraceOutcome(**outcome_kwargs)
        dump: Optional[RetainedTrace] = None
        with self._lock:
            spans = self._pending.pop(trace_id, [])
            if extra_spans:
                spans.extend(dict(sp) for sp in extra_spans)
            self.completed += 1
            reasons = self._reasons_locked(outcome)
            # Feed the latency window *after* the slowness comparison so a
            # request is compared against its predecessors, not itself.
            if outcome.latency_seconds is not None and not outcome.rejected:
                self._latencies.append(float(outcome.latency_seconds))
                self._latencies_dirty += 1
            if not reasons:
                self.dropped_boring += 1
                return None
            self._seq += 1
            trace = RetainedTrace(
                trace_id=trace_id,
                reasons=tuple(reasons),
                outcome=outcome,
                spans=spans,
                retained_at=self._clock(),
                seq=self._seq,
            )
            self._retained[trace_id] = trace
            self._retained.move_to_end(trace_id)
            while len(self._retained) > self.max_traces:
                self._retained.popitem(last=False)
                self.evicted += 1
            for reason in reasons:
                self.by_reason[reason] += 1
            triggered = any(r != "sampled" for r in reasons)
            if (
                triggered
                and self.auto_dump_dir is not None
                and self.auto_dumps < self.auto_dump_limit
            ):
                self.auto_dumps += 1
                dump = trace
        if dump is not None:
            self._auto_dump(dump)
        return trace

    def _reasons_locked(self, outcome: TraceOutcome) -> List[str]:
        reasons: List[str] = []
        if outcome.rejected:
            reasons.append("rejected")
        if outcome.error:
            reasons.append("error")
        if outcome.degraded:
            reasons.append("degraded")
        if outcome.fault_hits > 0:
            reasons.append("fault")
        if (
            outcome.latency_seconds is not None
            and not outcome.rejected
            and len(self._latencies) >= self.min_samples
            and outcome.latency_seconds > self._rolling_p99_locked()
        ):
            reasons.append("slow")
        if not reasons and self.boring_keep_rate > 0.0:
            if self._rng.random() < self.boring_keep_rate:
                reasons.append("sampled")
        return reasons

    def _rolling_p99_locked(self) -> float:
        # Re-sort lazily: at most every 32 completions, or when the
        # window content is stale — O(n log n) amortized far below once
        # per request.
        if self._latencies_dirty >= 32 or len(self._sorted_latencies) != len(
            self._latencies
        ):
            self._sorted_latencies = sorted(self._latencies)
            self._latencies_dirty = 0
        data = self._sorted_latencies
        if not data:
            return float("inf")
        rank = max(0, min(len(data) - 1, int(0.99 * len(data))))
        return data[rank]

    def rolling_p99(self) -> Optional[float]:
        """Current rolling p99 of completed-request latencies (None cold)."""
        with self._lock:
            if len(self._latencies) < self.min_samples:
                return None
            return self._rolling_p99_locked()

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #

    def get(self, trace_id: str) -> Optional[RetainedTrace]:
        with self._lock:
            return self._retained.get(trace_id)

    def trace_ids(self) -> List[str]:
        with self._lock:
            return list(self._retained)

    def traces(self) -> List[RetainedTrace]:
        with self._lock:
            return list(self._retained.values())

    def spans_for(self, trace_id: str) -> List[Dict[str, Any]]:
        """Spans of one trace — retained or still pending (copies)."""
        with self._lock:
            trace = self._retained.get(trace_id)
            if trace is not None:
                return [dict(sp) for sp in trace.spans]
            return [dict(sp) for sp in self._pending.get(trace_id, [])]

    def __len__(self) -> int:
        with self._lock:
            return len(self._retained)

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "completed": self.completed,
                "retained": len(self._retained),
                "dropped_boring": self.dropped_boring,
                "evicted": self.evicted,
                "pending": len(self._pending),
                "pending_evicted": self.pending_evicted,
                "auto_dumps": self.auto_dumps,
                "by_reason": dict(self.by_reason),
                "p99_seconds": (
                    self._rolling_p99_locked()
                    if len(self._latencies) >= self.min_samples
                    else None
                ),
                "latency_samples": len(self._latencies),
            }

    # ------------------------------------------------------------------ #
    # Dumping
    # ------------------------------------------------------------------ #

    def to_chrome_trace(
        self, trace_id: Optional[str] = None, main_pid: Optional[int] = None
    ) -> Dict[str, Any]:
        """Chrome trace-event document of one retained trace (or all)."""
        from .exporters import chrome_trace

        with self._lock:
            if trace_id is not None:
                trace = self._retained.get(trace_id)
                spans = list(trace.spans) if trace is not None else []
            else:
                spans = [
                    sp for t in self._retained.values() for sp in t.spans
                ]
        return chrome_trace(spans, main_pid=main_pid)

    def dump(
        self, path: str, trace_id: Optional[str] = None
    ) -> int:
        """Write a Chrome-trace JSON dump to ``path``; returns event count."""
        import json

        document = self.to_chrome_trace(trace_id)
        with open(path, "w") as fh:
            json.dump(document, fh, indent=1)
            fh.write("\n")
        return len(document["traceEvents"])

    def _auto_dump(self, trace: RetainedTrace) -> None:
        import os

        try:
            os.makedirs(self.auto_dump_dir, exist_ok=True)
            path = os.path.join(
                self.auto_dump_dir, f"trace-{trace.trace_id}.json"
            )
            self.dump(path, trace.trace_id)
        except OSError:  # pragma: no cover - best effort
            pass

    # ------------------------------------------------------------------ #

    @staticmethod
    def synthetic_span(
        name: str,
        trace_id: Optional[str] = None,
        parent_id: Optional[str] = None,
        duration_ns: int = 0,
        **attributes: Any,
    ) -> Dict[str, Any]:
        """A minimal span dict for events with no organic span (rejections)."""
        import os as _os
        import threading as _threading

        now_ns = time.monotonic_ns()
        return {
            "name": name,
            "trace_id": trace_id or uuid.uuid4().hex,
            "span_id": uuid.uuid4().hex[:16],
            "parent_id": parent_id,
            "start_ns": now_ns - max(0, duration_ns),
            "end_ns": now_ns,
            "thread_id": _threading.get_ident(),
            "thread_name": _threading.current_thread().name,
            "pid": _os.getpid(),
            "attributes": dict(attributes),
        }
