"""Continuous profiling: low-overhead stack sampling to collapsed stacks.

:class:`StackProfiler` wakes every ``interval`` seconds, snapshots every
thread's Python stack via :func:`sys._current_frames` (a C-level dict
copy — no tracing hooks, no per-call cost to the profiled code), and
folds each stack into a ``root;caller;...;leaf -> count`` table.  That is
exactly Brendan Gregg's *collapsed stack* format, so the output of
:meth:`write_collapsed` feeds ``flamegraph.pl`` / speedscope / Perfetto
directly.

The profiler measures its own cost: :meth:`stats` reports
``overhead_fraction`` — time spent inside the sampling loop divided by
wall time profiled — which the forensics smoke gates below 5%.  At the
default 10 ms interval a sample costs tens of microseconds, keeping the
fraction well under 1% for typical thread counts.

Usage::

    with StackProfiler(interval=0.01) as prof:
        run_workload()
    prof.write_collapsed("profile.folded")

``mck serve-bench --profile out.folded`` and ``live-bench --profile``
wire this around the whole benchmark run.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from typing import Any, Dict, List, Optional

__all__ = ["StackProfiler"]


class StackProfiler:
    """Background sampling profiler emitting collapsed stacks.

    Parameters
    ----------
    interval:
        Seconds between samples.  Lower = finer profile, higher overhead;
        the forensics smoke uses 25 ms to stay far under its 5% gate.
    max_stacks:
        Bound on distinct stack strings kept; beyond it new stacks fold
        into the ``(other)`` bucket so memory stays fixed.
    include_idle:
        Keep samples of threads parked in ``wait``/``select``/``poll``
        leaf frames.  Off by default: idle pool threads would otherwise
        dominate every profile.
    """

    def __init__(
        self,
        interval: float = 0.01,
        max_stacks: int = 10_000,
        include_idle: bool = False,
    ):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.interval = float(interval)
        self.max_stacks = int(max_stacks)
        self.include_idle = bool(include_idle)
        self._counts: Dict[str, int] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._samples = 0
        self._threads_seen = 0
        self._work_seconds = 0.0
        self._started_at: Optional[float] = None
        self._wall_seconds = 0.0

    _IDLE_LEAVES = frozenset(
        {"wait", "select", "poll", "accept", "recv", "sleep", "_recv_bytes"}
    )

    # -- lifecycle ------------------------------------------------------- #

    def start(self) -> "StackProfiler":
        if self._thread is not None:
            raise RuntimeError("profiler already started")
        self._stop.clear()
        self._started_at = time.perf_counter()
        self._thread = threading.Thread(
            target=self._run, name="mck-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None
        if self._started_at is not None:
            self._wall_seconds += time.perf_counter() - self._started_at
            self._started_at = None

    def __enter__(self) -> "StackProfiler":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False

    # -- sampling loop --------------------------------------------------- #

    def _run(self) -> None:
        own_ident = threading.get_ident()
        while not self._stop.wait(self.interval):
            began = time.perf_counter()
            try:
                frames = sys._current_frames()
            except Exception:
                continue
            stacks: List[str] = []
            for ident, frame in frames.items():
                if ident == own_ident:
                    continue
                stack = self._fold(frame)
                if stack is not None:
                    stacks.append(stack)
            with self._lock:
                self._samples += 1
                self._threads_seen = max(self._threads_seen, len(frames) - 1)
                for stack in stacks:
                    if (
                        stack not in self._counts
                        and len(self._counts) >= self.max_stacks
                    ):
                        stack = "(other)"
                    self._counts[stack] = self._counts.get(stack, 0) + 1
                self._work_seconds += time.perf_counter() - began

    def _fold(self, frame) -> Optional[str]:
        parts: List[str] = []
        leaf_name = None
        depth = 0
        while frame is not None and depth < 128:
            code = frame.f_code
            if leaf_name is None:
                leaf_name = code.co_name
            module = os.path.splitext(os.path.basename(code.co_filename))[0]
            parts.append(f"{module}.{code.co_name}")
            frame = frame.f_back
            depth += 1
        if not parts:
            return None
        if not self.include_idle and leaf_name in self._IDLE_LEAVES:
            return None
        parts.reverse()
        return ";".join(parts)

    # -- output ---------------------------------------------------------- #

    def collapsed(self) -> Dict[str, int]:
        """``{"root;...;leaf": samples}`` snapshot."""
        with self._lock:
            return dict(self._counts)

    def render_collapsed(self) -> str:
        """Flamegraph-compatible text: one ``stack count`` line each."""
        counts = self.collapsed()
        return "\n".join(
            f"{stack} {count}" for stack, count in sorted(counts.items())
        ) + ("\n" if counts else "")

    def write_collapsed(self, path: str) -> int:
        """Write collapsed stacks to ``path``; returns the line count."""
        text = self.render_collapsed()
        with open(path, "w") as fh:
            fh.write(text)
        return len(self.collapsed())

    def stats(self) -> Dict[str, Any]:
        wall = self._wall_seconds
        if self._started_at is not None:
            wall += time.perf_counter() - self._started_at
        with self._lock:
            samples = self._samples
            stacks = len(self._counts)
            work = self._work_seconds
        return {
            "samples": samples,
            "distinct_stacks": stacks,
            "interval_seconds": self.interval,
            "wall_seconds": wall,
            "sampling_seconds": work,
            "overhead_fraction": (work / wall) if wall > 0 else 0.0,
            "max_threads_seen": self._threads_seen,
        }
