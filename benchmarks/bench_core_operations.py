"""Micro-benchmarks of the substrate operations behind the algorithms.

Not a paper figure — these pin the cost of the primitives (minimum
covering circle, circleScan, index queries) so substrate regressions are
visible independently of the figure-level numbers.
"""

import random

import pytest

from repro.core.circlescan import circle_scan
from repro.core.query import compile_query
from repro.datasets.queries import generate_queries
from repro.datasets.synthetic import make_la_like
from repro.geometry.mcc import minimum_covering_circle
from repro.index.rstar import RStarTree

from _common import SCALE


@pytest.fixture(scope="module")
def city():
    return make_la_like(scale=SCALE)


@pytest.fixture(scope="module")
def ctx(city):
    (query,) = generate_queries(city, m=6, count=1, seed=4)
    context = compile_query(city, query)
    context.cover_radii  # warm the per-query caches
    return context


def test_minimum_covering_circle_1k_points(benchmark):
    rng = random.Random(0)
    pts = [(rng.uniform(0, 1000), rng.uniform(0, 1000)) for _ in range(1000)]
    circle = benchmark(minimum_covering_circle, pts)
    assert circle.r > 0


def test_rstar_bulk_load_10k(benchmark):
    rng = random.Random(1)
    records = [
        (i, rng.uniform(0, 1e4), rng.uniform(0, 1e4)) for i in range(10_000)
    ]
    tree = benchmark(RStarTree.bulk_load, records, 100)
    assert len(tree) == 10_000


def test_rstar_range_query(benchmark, city):
    tree = city.brtree()

    def query():
        return sum(1 for _ in tree.range_circle(20_000, 20_000, 3_000))

    benchmark(query)


def test_circle_scan_mid_diameter(benchmark, ctx):
    # Find a diameter at which the scan succeeds: the coverage radius is
    # necessary but not sufficient (the group must also fit the circle),
    # so double until the scan hits.
    pole = int(ctx.cover_radii.argmin())
    diameter = float(ctx.cover_radii[pole]) * 1.5 + 1e-9
    while circle_scan(ctx, pole, diameter) is None:
        diameter *= 2.0

    result = benchmark(circle_scan, ctx, pole, diameter)
    assert result is not None


def test_query_context_compilation(benchmark, city):
    (query,) = generate_queries(city, m=6, count=1, seed=9)

    benchmark(compile_query, city, query)
