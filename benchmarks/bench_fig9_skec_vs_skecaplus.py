"""Figure 9: SKEC vs SKECa+ (LA, m in {2, 4, 6}).

Paper shape: near-identical accuracy (ε = 0.01 is tiny) but SKEC is
dramatically slower, increasingly so with m — the reason the paper
abandons the exact SKECq computation.
"""

import math

from repro.experiments.figures import fig9_skec_vs_skecaplus

from _common import QUERIES, SCALE, run_figure


def test_fig9_skec_vs_skecaplus(benchmark):
    runtime, ratio = run_figure(
        benchmark,
        fig9_skec_vs_skecaplus,
        scale=SCALE,
        ms=(2, 4, 6),
        queries_per_set=QUERIES,
        timeout=60.0,
    )

    # Accuracy: both are within the 2/sqrt(3) family guarantee and close
    # to each other.
    for a, b in zip(ratio.series["SKEC"], ratio.series["SKECa+"]):
        if not (math.isnan(a) or math.isnan(b)):
            assert abs(a - b) < 0.02
            assert a <= 2 / math.sqrt(3) + 1e-9

    # Runtime: the exact circle computation is the slower one at the
    # largest m (the paper's headline for this figure).
    skec_rt = runtime.series["SKEC"]
    plus_rt = runtime.series["SKECa+"]
    assert skec_rt[-1] >= plus_rt[-1] * 0.8
