"""Ablation benches for the design choices DESIGN.md calls out.

* **EXACT's space reduction** — the point of §5 is that the SKECa+ bound
  shrinks the exhaustive search space; compare EXACT against the
  unreduced exhaustive baselines (VirbR, brute force) on one workload.
* **GKG's nearest-holder strategy** — batched per-keyword KD-trees vs the
  paper's bitmap-pruned bR*-tree descent.
"""

import pytest

from repro.baselines.bruteforce import brute_force_optimal
from repro.baselines.virbr import virbr
from repro.core.exact import exact
from repro.core.gkg import gkg
from repro.core.query import compile_query
from repro.datasets.queries import generate_queries
from repro.datasets.synthetic import make_la_like

from _common import SCALE


@pytest.fixture(scope="module")
def contexts():
    city = make_la_like(scale=SCALE)
    queries = generate_queries(city, m=5, count=3, seed=6)
    ctxs = []
    for q in queries:
        ctx = compile_query(city, q)
        ctx.cover_radii  # warm caches so the ablation isolates the search
        ctxs.append(ctx)
    return ctxs


class TestExactSpaceReduction:
    def test_exact_with_skeca_bound(self, benchmark, contexts):
        results = benchmark(lambda: [exact(c) for c in contexts])
        assert all(g.diameter >= 0 for g in results)

    def test_virbr_tree_enumeration(self, benchmark, contexts):
        results = benchmark(lambda: [virbr(c) for c in contexts])
        assert all(g.diameter >= 0 for g in results)

    def test_bruteforce_unreduced(self, benchmark, contexts):
        results = benchmark(lambda: [brute_force_optimal(c) for c in contexts])
        assert all(g.diameter >= 0 for g in results)

    def test_all_agree(self, contexts):
        for ctx in contexts:
            a = exact(ctx).diameter
            b = virbr(ctx).diameter
            assert abs(a - b) < 1e-6


class TestGkgStrategies:
    def test_gkg_kdtree(self, benchmark, contexts):
        results = benchmark(lambda: [gkg(c, method="kdtree") for c in contexts])
        assert all(len(g) >= 1 for g in results)

    def test_gkg_brtree(self, benchmark, contexts):
        results = benchmark(lambda: [gkg(c, method="brtree") for c in contexts])
        assert all(len(g) >= 1 for g in results)
