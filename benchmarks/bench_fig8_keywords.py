"""Figure 8: varying the number of query keywords m (NY, LA, TW).

Paper shape: GKG fastest and least accurate; SKECa+ nearly optimal;
EXACT faster than VirbR (by an order of magnitude for m >= 4 at the
paper's scale); ASGK / ASGKa dominated.
"""

import math

from repro.experiments.figures import fig8_vary_keywords

from _common import QUERIES, SCALE, TIMEOUT, run_figure


def test_fig8_vary_keywords(benchmark):
    figures = run_figure(
        benchmark,
        fig8_vary_keywords,
        dataset_names=("NY", "LA", "TW"),
        scale=SCALE,
        ms=(2, 4, 6, 8, 10),
        queries_per_set=QUERIES,
        timeout=TIMEOUT,
    )

    for fig in figures:
        if "ratio" not in fig.figure_id:
            continue
        # Exact methods report ratio 1 wherever they finished.
        for algo in ("EXACT", "VirbR", "ASGK"):
            for r in fig.series.get(algo, []):
                if not math.isnan(r):
                    assert abs(r - 1.0) < 1e-6, (fig.figure_id, algo, r)
        # SKECa+ within its guarantee; GKG within 2.
        for r in fig.series["SKECa+"]:
            if not math.isnan(r):
                assert r <= 2 / math.sqrt(3) + 0.01 + 1e-9
        for r in fig.series["GKG"]:
            if not math.isnan(r):
                assert r <= 2.0 + 1e-9
