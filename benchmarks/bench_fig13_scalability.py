"""Figure 13: scalability on growing TW-like datasets (1x .. 5x).

Paper shape (1M–5M tweets): GKG and SKECa+ scale gracefully; EXACT
scales well; VirbR degrades by orders of magnitude; SKECa+ stays nearly
optimal throughout.  Our sizes follow the same 1:5 progression at reduced
absolute scale.
"""

import math

from repro.experiments.figures import fig13_scalability

from _common import QUERIES, SCALE, TIMEOUT, run_figure


def test_fig13_scalability(benchmark):
    base = SCALE / 2
    runtime, ratio = run_figure(
        benchmark,
        fig13_scalability,
        scales=(base, 2 * base, 3 * base, 4 * base, 5 * base),
        queries_per_set=QUERIES,
        timeout=TIMEOUT,
    )

    # Sizes follow the 1:5 progression.
    sizes = runtime.x_values
    assert sizes == sorted(sizes)
    assert sizes[-1] >= 4.5 * sizes[0]

    # SKECa+ remains nearly optimal at every size.
    for r in ratio.series["SKECa+"]:
        if not math.isnan(r):
            assert r <= 2 / math.sqrt(3) + 0.01 + 1e-9

    # GKG stays cheap: under 10x its smallest-size cost at 5x data.
    gkg = [v for v in runtime.series["GKG"] if not math.isnan(v)]
    assert gkg[-1] <= max(10 * gkg[0], 0.05)
