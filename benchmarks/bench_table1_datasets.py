"""Table 1: dataset properties (objects, unique words, total words).

Paper values (full crawls):  NY 485,059 / 116,546 / 1,143,013;
LA 724,952 / 161,489 / 1,833,486; TW 1,000,100 / 487,552 / 5,170,495.
The synthetic presets reproduce the unique/total-word ratios at reduced
scale (see DESIGN.md §3).
"""

from repro.experiments.figures import table1_datasets

from _common import SCALE, run_figure


def test_table1_dataset_properties(benchmark):
    text, stats = run_figure(benchmark, table1_datasets, scale=SCALE)
    by_name = {s.name: s for s in stats}

    # Paper-shape assertions: TW has the longest texts and the biggest
    # vocabulary relative to its size; LA is larger than NY.
    assert by_name["TW-like"].words_per_object > by_name["NY-like"].words_per_object
    assert by_name["TW-like"].unique_ratio > by_name["NY-like"].unique_ratio
    assert by_name["LA-like"].n_objects > by_name["NY-like"].n_objects
