"""Figure 11: varying the timeout threshold (LA, 30% diameter bound).

Paper shape: EXACT solves most queries within the smallest threshold and
always beats VirbR on both success rate and common-success runtime;
both success rates rise with the threshold.
"""

from repro.experiments.figures import fig11_vary_timeout

from _common import QUERIES, SCALE, run_figure


def test_fig11_vary_timeout(benchmark):
    runtime, success = run_figure(
        benchmark,
        fig11_vary_timeout,
        scale=SCALE,
        queries_per_set=QUERIES + 3,
        timeouts=(0.25, 0.5, 1.0, 2.0, 4.0),
    )

    for algo in ("EXACT", "VirbR"):
        values = success.series[algo]
        # Success rate is monotone in the threshold.
        for lo, hi in zip(values, values[1:]):
            assert hi >= lo - 1e-9
    # EXACT's success rate dominates VirbR's at every threshold.
    for e, v in zip(success.series["EXACT"], success.series["VirbR"]):
        assert e >= v - 1e-9
