"""Figure 7: tuning ε — runtime and accuracy of SKECa vs SKECa+ (LA).

Paper shape: accuracy degrades as ε grows for both (identical ratios);
runtimes drop with larger ε; SKECa+ is preferred and ε = 0.01 balances
accuracy/efficiency.
"""

import math

from repro.experiments.figures import fig7_vary_epsilon

from _common import QUERIES, SCALE, run_figure


def test_fig7_epsilon_study(benchmark):
    runtime, ratio = run_figure(
        benchmark,
        fig7_vary_epsilon,
        scale=SCALE,
        queries_per_set=QUERIES,
    )

    # Shape: ratios are >= 1 and within the per-epsilon guarantee; the two
    # algorithms achieve the same accuracy (within binary-search noise).
    # (Monotone degradation with epsilon is a statistical trend over large
    # query sets, not a per-sample invariant — only the bound is asserted.)
    for algo in ("SKECa", "SKECa+"):
        for eps, r in zip(ratio.x_values, ratio.series[algo]):
            if not math.isnan(r):
                assert 1.0 - 1e-9 <= r <= 2 / math.sqrt(3) + eps + 1e-9
    paired = list(zip(ratio.series["SKECa"], ratio.series["SKECa+"]))
    for a, b in paired:
        if not (math.isnan(a) or math.isnan(b)):
            assert abs(a - b) < 0.05

    # Shape: SKECa+ gets faster as epsilon grows (fewer binary steps).
    rt = runtime.series["SKECa+"]
    assert rt[-1] <= rt[0] * 1.5 + 0.01
