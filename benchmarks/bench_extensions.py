"""Benches for the beyond-paper extensions (not paper figures).

* top-k mCK: cost of k sequential diversified answers vs one answer;
* distributed mCK: makespan vs centralized on the same workload, plus the
  communication bill.
"""

import pytest

from repro.core.engine import MCKEngine
from repro.datasets.queries import generate_queries
from repro.datasets.synthetic import make_la_like
from repro.distributed import DistributedMCKEngine
from repro.extensions import top_k_mck

from _common import SCALE


@pytest.fixture(scope="module")
def city():
    return make_la_like(scale=SCALE)


@pytest.fixture(scope="module")
def queries(city):
    return generate_queries(city, m=4, count=3, seed=13)


class TestTopK:
    def test_top1(self, benchmark, city, queries):
        groups = benchmark(
            lambda: [top_k_mck(city, q.keywords, k=1) for q in queries]
        )
        assert all(len(g) == 1 for g in groups)

    def test_top3_disjoint(self, benchmark, city, queries):
        groups = benchmark(
            lambda: [top_k_mck(city, q.keywords, k=3) for q in queries]
        )
        for per_query in groups:
            diameters = [g.diameter for g in per_query]
            assert diameters == sorted(diameters)


class TestDistributed:
    def test_centralized_exact(self, benchmark, city, queries):
        engine = MCKEngine(city)
        benchmark(
            lambda: [engine.query(q.keywords, algorithm="EXACT") for q in queries]
        )

    def test_distributed_9_workers(self, benchmark, city, queries):
        engine = DistributedMCKEngine(city, n_workers=9)
        results = benchmark(
            lambda: [engine.query(q.keywords) for q in queries]
        )
        central = MCKEngine(city)
        for q, r in zip(queries, results):
            reference = central.query(q.keywords, algorithm="EXACT")
            assert abs(r.group.diameter - reference.diameter) < 1e-9
        makespan = sum(r.makespan_seconds for r in results)
        total = sum(r.total_compute_seconds for r in results)
        print(
            f"\n  distributed: makespan {makespan * 1e3:.1f} ms, "
            f"cluster-seconds {total * 1e3:.1f} ms, "
            f"bytes {sum(r.bytes_shipped for r in results)}"
        )
