"""Figure 10: varying the optimal-group diameter bound (LA, TW).

Paper shape: GKG's runtime is flat in the bound; SKECa+ slows as the
bound grows (larger sweeping areas); both stay near-optimal.  EXACT beats
VirbR on common successes and keeps a higher success rate; success rates
drop for both as the bound grows.
"""

import math

from repro.experiments.figures import fig10_vary_diameter

from _common import QUERIES, SCALE, TIMEOUT, run_figure


def test_fig10_vary_diameter_bound(benchmark):
    figures = run_figure(
        benchmark,
        fig10_vary_diameter,
        dataset_names=("LA", "TW"),
        scale=SCALE,
        queries_per_set=QUERIES,
        bounds=(0.10, 0.15, 0.20, 0.25, 0.30),
        timeout=TIMEOUT,
    )

    by_id = {f.figure_id: f for f in figures}
    for name in ("LA", "TW"):
        ratio = by_id[f"Fig10-approx-ratio-{name}"]
        for algo, values in ratio.series.items():
            for r in values:
                if not math.isnan(r):
                    assert r <= 2.0 + 1e-9, (name, algo, r)

        success = by_id[f"Fig10-success-{name}"]
        for algo, values in success.series.items():
            assert all(0.0 <= v <= 1.0 for v in values)
        # EXACT's success rate dominates VirbR's on every bound.
        for e, v in zip(success.series["EXACT"], success.series["VirbR"]):
            assert e >= v - 1e-9
