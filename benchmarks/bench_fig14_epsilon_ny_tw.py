"""Figure 14 (Appendix F): the ε study repeated on NY and TW.

Paper shape: same as Figure 7 on LA — runtimes drop and accuracy degrades
as ε grows; ε = 0.01 balances both on every dataset.
"""

import math

from repro.experiments.figures import fig14_vary_epsilon_ny_tw

from _common import QUERIES, SCALE, run_figure


def test_fig14_epsilon_ny_tw(benchmark):
    figures = run_figure(
        benchmark,
        fig14_vary_epsilon_ny_tw,
        scale=SCALE,
        queries_per_set=QUERIES,
    )

    ids = [f.figure_id for f in figures]
    assert any("NY" in i for i in ids) and any("TW" in i for i in ids)

    for fig in figures:
        if not fig.figure_id.startswith("Fig14b"):
            continue
        for algo in ("SKECa", "SKECa+"):
            # Per-epsilon guarantee only; monotone degradation is a
            # statistical trend, not a per-sample invariant.
            for eps, r in zip(fig.x_values, fig.series[algo]):
                if not math.isnan(r):
                    assert 1.0 - 1e-9 <= r <= 2 / math.sqrt(3) + eps + 1e-9
